"""The device fleet: lane custody over simulated CloudSystems.

A *lane* is one independent :class:`~repro.virt.system.CloudSystem` on
the E1 topology (separate work queues, shared engine) with a resident
:class:`~repro.core.devtlb_attack.DsaDevTlbAttack`.  Lanes are
expensive (system construction plus threshold calibration runs tens of
milliseconds of host time), so sessions *share* them: custody flows
through a FIFO :class:`~repro.service.loop.VirtualLock`, the holder
runs whole probe rounds, and the lane's calibrated threshold is shared
by every session it serves — a session never pays for calibration the
lane already has (its ``CALIBRATING`` state is a cheap health check of
the lane's :class:`~repro.core.calibration.ThresholdMonitor`).

Revocation and containment: the ``service_device_revoke`` fault fires
here (this module owns the site) at lane hand-out.  A revoked lane is
quarantined — never handed out again — and a replacement is built from
a fresh child seed, so a poisoned lane cannot take down the fleet; the
refused session sees a typed :class:`~repro.errors.LaneRevokedError`
and retries on another lane inside its budget.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import CalibrationPolicy, ThresholdMonitor
from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.errors import LaneRevokedError, ServiceError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultSite
from repro.invariants.service import ServiceStateChecker
from repro.service.loop import DeviceTimeLoop, VirtualLock
from repro.virt.system import AttackTopology, CloudSystem


class RoundResult:
    """Aggregates of one probe round on a lane."""

    __slots__ = ("cycles", "probes", "evictions", "max_latency_cycles")

    def __init__(
        self, cycles: int, probes: int, evictions: int,
        max_latency_cycles: int,
    ) -> None:
        self.cycles = cycles
        self.probes = probes
        self.evictions = evictions
        self.max_latency_cycles = max_latency_cycles


class DeviceLane:
    """One calibrated attack system plus its custody lock."""

    def __init__(
        self,
        lane_id: int,
        seed: int,
        loop: DeviceTimeLoop,
        calibration_samples: int,
        policy: CalibrationPolicy,
        fault_plan: "object | None" = None,
    ) -> None:
        self.lane_id = lane_id
        self.seed = seed
        self.lock = VirtualLock(loop)
        self.revoked = False
        self.rounds_served = 0
        self.cycles_charged = 0
        self.recalibrations = 0
        self._policy = policy
        self._calibration_samples = calibration_samples
        self.system = CloudSystem(seed=seed, fault_plan=fault_plan)
        handles = self.system.setup_topology(
            AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE
        )
        self.attack = DsaDevTlbAttack(
            handles.attacker, wq_id=handles.attacker_wq
        )
        result = self.attack.calibrate(
            samples=calibration_samples, policy=policy
        )
        self.monitor = ThresholdMonitor(result.threshold)

    @property
    def threshold(self) -> int:
        return self.attack.threshold

    def ensure_calibrated(self) -> None:
        """Recalibrate if the drift monitor says the threshold decayed."""
        if self.monitor.drifting:
            result = self.attack.calibrate(
                samples=self._calibration_samples, policy=self._policy
            )
            self.monitor.reset(result.threshold)
            self.recalibrations += 1

    def run_round(self, probes: int, idle_us: float) -> RoundResult:
        """One prime + idle/probe round, synchronously, on device time.

        Consumes the lane system's own timeline; the caller charges the
        returned ``cycles`` to the service clock (and the tenant's
        budget) afterwards.
        """
        if self.revoked:
            raise LaneRevokedError(lane_id=self.lane_id)
        clock = self.system.clock
        start = clock.now
        self.attack.prime()
        evictions = 0
        max_latency = 0
        for _ in range(max(1, probes)):
            self.system.timeline.idle_for_us(idle_us)
            outcome = self.attack.probe()
            self.monitor.observe(outcome.latency_cycles)
            max_latency = max(max_latency, outcome.latency_cycles)
            if outcome.evicted:
                evictions += 1
        cycles = clock.now - start
        self.rounds_served += 1
        self.cycles_charged += cycles
        return RoundResult(
            cycles=cycles,
            probes=max(1, probes),
            evictions=evictions,
            max_latency_cycles=max_latency,
        )


class DeviceFleet:
    """Hands lanes to sessions; quarantines and rebuilds revoked ones."""

    def __init__(
        self,
        loop: DeviceTimeLoop,
        checker: ServiceStateChecker,
        *,
        lanes: int,
        seed: int,
        calibration_samples: int,
        policy: CalibrationPolicy,
        injector: FaultInjector | None = None,
        lane_fault_plan: "object | None" = None,
    ) -> None:
        self._loop = loop
        self._checker = checker
        self._injector = injector
        self._policy = policy
        self._calibration_samples = calibration_samples
        self._lane_fault_plan = lane_fault_plan
        self._seed_seq = np.random.SeedSequence(seed)
        self._next_lane_id = 0
        self._rr = 0
        self.quarantined: list[DeviceLane] = []
        self.lanes: list[DeviceLane] = [
            self._build_lane() for _ in range(lanes)
        ]

    def _build_lane(self) -> DeviceLane:
        (child,) = self._seed_seq.spawn(1)
        # A stable scalar seed derived from the service seed sequence,
        # unique per lane ever built (replacements included).
        seed = int(child.generate_state(1, dtype=np.uint32)[0])
        lane = DeviceLane(
            lane_id=self._next_lane_id,
            seed=seed,
            loop=self._loop,
            calibration_samples=self._calibration_samples,
            policy=self._policy,
            fault_plan=self._lane_fault_plan,
        )
        self._next_lane_id += 1
        return lane

    @property
    def lane_count(self) -> int:
        return len(self.lanes)

    def total_waiting(self) -> int:
        """Sessions parked on lane locks across the fleet."""
        return sum(lane.lock.waiting for lane in self.lanes)

    def _revoke(self, lane: DeviceLane) -> None:
        lane.revoked = True
        self.quarantined.append(lane)
        index = self.lanes.index(lane)
        self.lanes[index] = self._build_lane()
        self._checker.note_lane_rebuilt(lane.lane_id, self.lanes[index].lane_id)

    async def acquire(self, session_id: str) -> DeviceLane:
        """Queue for the least-loaded lane; returns it locked.

        The ``service_device_revoke`` opportunity is evaluated at
        hand-out: a firing revokes the chosen lane (quarantine +
        rebuild) and refuses this acquisition with the typed error the
        session's retry budget absorbs.
        """
        if not self.lanes:
            raise ServiceError("device fleet has no lanes")
        # Deterministic round-robin spread, skewed to shorter queues.
        best = min(
            range(len(self.lanes)),
            key=lambda i: (self.lanes[i].lock.waiting, (i - self._rr) % len(self.lanes)),
        )
        self._rr = (self._rr + 1) % len(self.lanes)
        lane = self.lanes[best]
        if self._injector is not None:
            event = self._injector.fire(
                FaultSite.SERVICE_DEVICE_REVOKE,
                timestamp=self._loop.now,
                engine_id=lane.lane_id,
            )
            if event is not None:
                self._revoke(lane)
                self._injector.acknowledge(
                    event, "lane-quarantined-and-rebuilt"
                )
                raise LaneRevokedError(lane_id=lane.lane_id)
        await lane.lock.acquire()
        if lane.revoked:
            # Revoked while this session was parked in the queue.
            lane.lock.release()
            raise LaneRevokedError(lane_id=lane.lane_id)
        self._checker.note_lane_acquired(session_id, lane.lane_id)
        return lane

    def release(self, lane: DeviceLane, session_id: str) -> None:
        self._checker.note_lane_released(session_id, lane.lane_id)
        lane.lock.release()

    def injectors(self) -> "list[FaultInjector]":
        """Every lane-level injector (for the unacknowledged-fault audit)."""
        found = []
        for lane in (*self.lanes, *self.quarantined):
            if lane.system.fault_injector is not None:
                found.append(lane.system.fault_injector)
        return found
