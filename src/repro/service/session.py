"""One attack session: an async state machine with bounded budgets.

A session is the service's unit of work: a tenant's request to run a
DevTLB prime+probe observation of ``probe_rounds`` rounds on some lane
of the device fleet.  Its lifecycle is

    ADMITTED → CALIBRATING → ACTIVE → DRAINING → CLOSED

where DRAINING is entered only on graceful drain (the session stops at
a round boundary and its remaining work is checkpointed) and CLOSED is
reached from any live state (completion, deadline, shed, kill,
quarantine).  Every transition is narrated to the
``ServiceStateChecker``, which enforces the legality table.

Budgets, not hope, bound every failure mode:

* **deadline** — ``spec.deadline_cycles`` of device time from
  admission; a stalled round (the ``service_session_stall`` fault
  fires here, in this module, per ``SITE_OWNERS``) is detected at the
  next boundary instead of wedging a lane;
* **retries** — lane revocations and transient attack errors retry
  under the :class:`~repro.core.calibration.CalibrationPolicy` budget
  (``max_attempts`` attempts, backoff growing by ``sample_growth``),
  the same bounded-retry machinery calibration has used since PR 1;
* **containment** — expected failures are :class:`~repro.errors
  .ReproError` and close the session as ``failed``; anything else
  escapes to the supervisor, which quarantines the session without
  taking down the fleet.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, TYPE_CHECKING

from repro.errors import (
    CalibrationError,
    CompletionTimeoutError,
    LaneRevokedError,
    QueueFullError,
    SessionDeadlineExceeded,
    TranslationFault,
)
from repro.faults.plan import FaultSite

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.service.app import AttackService

# Lifecycle states (narrated to the ServiceStateChecker).
STATE_OFFERED = "offered"
STATE_ADMITTED = "admitted"
STATE_CALIBRATING = "calibrating"
STATE_ACTIVE = "active"
STATE_DRAINING = "draining"
STATE_CLOSED = "closed"

# Terminal exit paths (the accounting alphabet).
EXIT_COMPLETED = "completed"
EXIT_REJECTED = "rejected"
EXIT_SHED = "shed"
EXIT_FAILED = "failed"
EXIT_QUARANTINED = "quarantined"
EXIT_CHECKPOINTED = "checkpointed"

#: Stall duration applied when a ``service_session_stall`` spec carries
#: no ``magnitude_cycles`` of its own.
DEFAULT_STALL_CYCLES = 1_000_000

#: Transient attack-layer errors a session retries inside its budget
#: (anything else typed closes the session as failed immediately).
_RETRYABLE = (
    LaneRevokedError,
    CalibrationError,
    CompletionTimeoutError,
    QueueFullError,
    TranslationFault,
)


@dataclass(frozen=True)
class SessionSpec:
    """The immutable description of one offered session.

    ``rounds_done`` is zero for fresh offers and carries completed
    progress for sessions resumed from a drain checkpoint — the spec is
    the checkpoint wire format.
    """

    session_id: str
    tenant: str
    priority: int
    arrival_cycles: int
    probe_rounds: int = 4
    probes_per_round: int = 8
    idle_us: float = 10.0
    deadline_cycles: int = 80_000_000
    rounds_done: int = 0

    def to_json(self) -> dict[str, Any]:
        return {
            "session_id": self.session_id,
            "tenant": self.tenant,
            "priority": self.priority,
            "arrival_cycles": self.arrival_cycles,
            "probe_rounds": self.probe_rounds,
            "probes_per_round": self.probes_per_round,
            "idle_us": self.idle_us,
            "deadline_cycles": self.deadline_cycles,
            "rounds_done": self.rounds_done,
        }

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "SessionSpec":
        return cls(
            session_id=raw["session_id"],
            tenant=raw["tenant"],
            priority=raw["priority"],
            arrival_cycles=raw["arrival_cycles"],
            probe_rounds=raw["probe_rounds"],
            probes_per_round=raw["probes_per_round"],
            idle_us=raw["idle_us"],
            deadline_cycles=raw["deadline_cycles"],
            rounds_done=raw["rounds_done"],
        )


@dataclass
class SessionOutcome:
    """The terminal record of one session (fed to the accounting)."""

    spec: SessionSpec
    exit_path: str
    reason: str = ""
    latency_cycles: int = 0
    rounds_done: int = 0
    evictions: int = 0
    attempts: int = 0
    lane_visits: int = 0
    device_cycles: int = 0

    @property
    def resume_spec(self) -> SessionSpec:
        """The spec to re-offer when this outcome is ``checkpointed``."""
        return replace(self.spec, rounds_done=self.rounds_done)


class AttackSession:
    """Drives one :class:`SessionSpec` through its lifecycle."""

    def __init__(self, spec: SessionSpec, service: "AttackService") -> None:
        self.spec = spec
        self._svc = service
        self.state = STATE_ADMITTED
        self.admitted_at = service.loop.now
        self.device_cycles = 0
        #: Set by the service before a deliberate cancel so the
        #: supervisor can attribute the cancellation (shed/kill/drain).
        self.cancel_reason = ""
        # (rounds_done, evictions, lane_visits, calibrated): progress
        # that survives a retryable mid-attempt failure.
        self._progress = (spec.rounds_done, 0, 0, False)

    @property
    def rounds_done(self) -> int:
        """Rounds completed so far (valid even after a cancel)."""
        return self._progress[0]

    # ------------------------------------------------------------------
    def _set_state(self, state: str) -> None:
        self.state = state
        self._svc.checker.note_state(self.spec.session_id, state)

    def _close(
        self,
        exit_path: str,
        reason: str,
        rounds_done: int,
        evictions: int,
        attempts: int,
        lane_visits: int,
    ) -> SessionOutcome:
        self._set_state(STATE_CLOSED)
        return SessionOutcome(
            spec=self.spec,
            exit_path=exit_path,
            reason=reason,
            latency_cycles=self._svc.loop.now - self.admitted_at,
            rounds_done=rounds_done,
            evictions=evictions,
            attempts=attempts,
            lane_visits=lane_visits,
            device_cycles=self.device_cycles,
        )

    def _check_deadline(self) -> None:
        elapsed = self._svc.loop.now - self.admitted_at
        if elapsed > self.spec.deadline_cycles:
            raise SessionDeadlineExceeded(
                session_id=self.spec.session_id,
                deadline_cycles=self.spec.deadline_cycles,
                elapsed_cycles=elapsed,
            )

    async def _stall_opportunity(self) -> None:
        """The ``service_session_stall`` injection point (round boundary)."""
        injector = self._svc.injector
        if injector is None:
            return
        event = injector.fire(
            FaultSite.SERVICE_SESSION_STALL, timestamp=self._svc.loop.now
        )
        if event is None:
            return
        stall = event.magnitude_cycles or DEFAULT_STALL_CYCLES
        # Handled = the stall is absorbed into device time where the
        # deadline budget (checked at this same boundary) can see it.
        # Acknowledged *before* parking so a chaos kill landing inside
        # the stall cannot strand the event unacknowledged.
        injector.acknowledge(event, "stall-absorbed-into-deadline-budget")
        await self._svc.loop.sleep_cycles(stall)

    # ------------------------------------------------------------------
    async def run(self) -> SessionOutcome:
        """The state machine; returns the terminal outcome.

        Raises nothing typed — :class:`~repro.errors.ReproError`
        failures are converted into ``failed`` outcomes here.  Anything
        untyped escapes to the supervisor's quarantine path.
        """
        svc = self._svc
        spec = self.spec
        policy = svc.config.retry_policy
        rounds_done = spec.rounds_done
        evictions = 0
        attempts = 0
        lane_visits = 0
        calibrated = False
        while True:
            try:
                outcome = await self._attempt(
                    rounds_done, evictions, lane_visits, attempts, calibrated
                )
            except SessionDeadlineExceeded:
                return self._close(
                    EXIT_FAILED, "deadline", rounds_done, evictions,
                    attempts, lane_visits,
                )
            except _RETRYABLE as err:
                attempts += 1
                if attempts >= policy.max_attempts:
                    return self._close(
                        EXIT_FAILED,
                        f"retries-exhausted:{type(err).__name__}",
                        rounds_done, evictions, attempts, lane_visits,
                    )
                backoff = int(
                    policy.min_separation_cycles
                    * policy.sample_growth ** attempts
                )
                await svc.loop.sleep_cycles(backoff)
                rounds_done = self._progress[0]
                evictions = self._progress[1]
                lane_visits = self._progress[2]
                calibrated = self._progress[3]
                continue
            outcome.attempts = attempts
            return outcome

    async def _attempt(
        self,
        rounds_done: int,
        evictions: int,
        lane_visits: int,
        attempts: int,
        calibrated: bool,
    ) -> SessionOutcome:
        """One bounded attempt: acquire a lane, run rounds, release."""
        svc = self._svc
        spec = self.spec
        # Progress survives a retryable failure mid-attempt (a revoked
        # lane does not erase completed rounds).
        self._progress = (rounds_done, evictions, lane_visits, calibrated)
        lane = await svc.fleet.acquire(spec.session_id)
        lane_visits += 1
        self._progress = (rounds_done, evictions, lane_visits, calibrated)
        try:
            self._check_deadline()
            if not calibrated:
                self._set_state(STATE_CALIBRATING)
                lane.ensure_calibrated()
                calibrated = True
                self._progress = (
                    rounds_done, evictions, lane_visits, calibrated
                )
            self._set_state(STATE_ACTIVE)
            while rounds_done < spec.probe_rounds:
                if svc.drain_requested:
                    self._set_state(STATE_DRAINING)
                    return self._close(
                        EXIT_CHECKPOINTED, "drain", rounds_done,
                        evictions, attempts, lane_visits,
                    )
                await self._stall_opportunity()
                self._check_deadline()
                result = lane.run_round(spec.probes_per_round, spec.idle_us)
                self.device_cycles += result.cycles
                evictions += result.evictions
                rounds_done += 1
                self._progress = (
                    rounds_done, evictions, lane_visits, calibrated
                )
                # Charge the round's device time to the service clock,
                # then pace the next round at the controller's cadence
                # (stretched under overload: degrade, don't fail).
                await svc.loop.sleep_cycles(result.cycles)
                self._check_deadline()
                if rounds_done < spec.probe_rounds:
                    gap = (
                        svc.config.inter_round_gap_cycles
                        * svc.controller.cadence_multiplier()
                    )
                    await svc.loop.sleep_cycles(gap)
        finally:
            svc.fleet.release(lane, spec.session_id)
        return self._close(
            EXIT_COMPLETED, "", rounds_done, evictions, attempts,
            lane_visits,
        )
