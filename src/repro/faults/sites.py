"""The authoritative map of fault sites to their owning model modules.

Each :class:`~repro.faults.plan.FaultSite` is *owned* by exactly the
modules allowed to consult the injector at that hook point and apply the
effect.  Two consumers rely on this map being truthful:

* :meth:`~repro.faults.injector.FaultInjector.register_site` — runtime
  attachment registers every site it hooks and fails loudly on a
  duplicate or unknown site id, so a plan can never silently double-hook
  (or mis-spell) a site.
* the ``SIM001`` static-analysis rule (:mod:`repro.lint`) — a module
  that fires a site it does not own, or mutates fault-hookable device
  state directly, is a chaos-soundness bug caught before merge.

Adding a fault site therefore means touching exactly three places: the
:class:`FaultSite` enum, the owning component's hook call, and this map.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from repro.errors import ConfigurationError
from repro.faults.plan import FaultSite

#: site -> dotted modules allowed to ``fire()`` it and apply its effect.
SITE_OWNERS: Mapping[FaultSite, tuple[str, ...]] = MappingProxyType(
    {
        FaultSite.SUBMISSION_DROP: ("repro.dsa.portal",),
        FaultSite.SUBMISSION_DELAY: ("repro.dsa.portal",),
        FaultSite.COMPLETION_ERROR: ("repro.dsa.engine",),
        FaultSite.ENGINE_STALL: ("repro.dsa.engine",),
        FaultSite.DEVTLB_INVALIDATE: ("repro.dsa.engine",),
        FaultSite.IOTLB_INVALIDATE: ("repro.dsa.engine",),
        FaultSite.WQ_DRAIN: ("repro.dsa.device",),
        FaultSite.PRS_DROP: ("repro.ats.prs",),
        FaultSite.PREEMPTION: ("repro.virt.scheduler",),
        FaultSite.POOL_WORKER_CRASH: ("repro.experiments.pool",),
        FaultSite.POOL_WORKER_STALL: ("repro.experiments.pool",),
        FaultSite.POOL_RESULT_CORRUPT: ("repro.experiments.pool",),
        FaultSite.SERVICE_SESSION_STALL: ("repro.service.session",),
        FaultSite.SERVICE_ADMISSION_FLAP: ("repro.service.admission",),
        FaultSite.SERVICE_DEVICE_REVOKE: ("repro.service.devices",),
    }
)

#: Device-state mutators that *are* fault effects: calling one outside
#: the listed modules bypasses the injector (and the fault log).  The
#: owning data structures themselves are allowed (they define the
#: method); the engine applies TLB invalidations as fault effects.
STATE_MUTATOR_OWNERS: Mapping[str, tuple[str, ...]] = MappingProxyType(
    {
        "invalidate_all": (
            "repro.dsa.engine",
            "repro.ats.devtlb",
            "repro.ats.iotlb",
            "repro.ats.agent",
        ),
    }
)

#: Sites a :meth:`FaultInjector.attach_device` hook-up registers.
DEVICE_SITES: tuple[FaultSite, ...] = (
    FaultSite.SUBMISSION_DROP,
    FaultSite.SUBMISSION_DELAY,
    FaultSite.COMPLETION_ERROR,
    FaultSite.ENGINE_STALL,
    FaultSite.DEVTLB_INVALIDATE,
    FaultSite.IOTLB_INVALIDATE,
    FaultSite.WQ_DRAIN,
    FaultSite.PRS_DROP,
)

#: Sites a :meth:`FaultInjector.attach_timeline` hook-up registers.
TIMELINE_SITES: tuple[FaultSite, ...] = (FaultSite.PREEMPTION,)

#: Executor-layer sites the persistent worker pool registers on each
#: per-worker injector (:mod:`repro.experiments.pool`).  These target
#: the *execution substrate* — the worker process, its heartbeat, its
#: result stream — not the simulated hardware, so no device/timeline
#: attachment registers them.
POOL_SITES: tuple[FaultSite, ...] = (
    FaultSite.POOL_WORKER_CRASH,
    FaultSite.POOL_WORKER_STALL,
    FaultSite.POOL_RESULT_CORRUPT,
)

#: Control-plane sites the always-on session service registers on its
#: own injector (:mod:`repro.service`).  Like :data:`POOL_SITES` they
#: target the orchestration substrate — admission, session scheduling,
#: lane custody — not the simulated hardware, so no device/timeline
#: attachment registers them; :meth:`AttackService` claims each site
#: for the owning service module at startup.
SERVICE_SITES: tuple[FaultSite, ...] = (
    FaultSite.SERVICE_SESSION_STALL,
    FaultSite.SERVICE_ADMISSION_FLAP,
    FaultSite.SERVICE_DEVICE_REVOKE,
)


def coerce_site(site: "FaultSite | str") -> FaultSite:
    """*site* as a :class:`FaultSite`, failing loudly on unknown ids.

    Accepts the enum member itself or its string value
    (``"submission_drop"``); anything else raises
    :class:`~repro.errors.ConfigurationError` naming the valid ids —
    never a silent no-op on a typo'd site name.
    """
    if isinstance(site, FaultSite):
        return site
    try:
        return FaultSite(site)
    except ValueError:
        valid = ", ".join(member.value for member in FaultSite)
        raise ConfigurationError(
            f"unknown fault site id {site!r}; valid sites: {valid}"
        ) from None
