"""Seeded, composable fault injection for the DSA model.

The reproduction's experiments run on a cooperative simulator; real
clouds are not cooperative.  This package provides the chaos layer: a
:class:`FaultPlan` names *what* to break (dropped portal writes, engine
stalls, spurious TLB invalidations, mid-flight queue drains, unresolved
page requests, scheduler preemption) and *when* (per-opportunity
probability or a simulated-time period), and a :class:`FaultInjector`
evaluates the plan deterministically at hook points inside the model.

Everything is seeded: the same plan attached to two identically-seeded
systems yields a byte-identical fault log (:meth:`FaultInjector.log_bytes`)
and identical experiment output, so chaos scenarios are regression
tests, not dice rolls.  See ``docs/robustness.md`` for the fault model
and a walkthrough.
"""

from repro.faults.injector import FaultEvent, FaultInjector
from repro.faults.plan import COMPLETION_ERROR_KINDS, FaultPlan, FaultSite, FaultSpec

__all__ = [
    "COMPLETION_ERROR_KINDS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultSite",
    "FaultSpec",
]
