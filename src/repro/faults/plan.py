"""Fault plans: *what* to break, *where*, and *how often*.

A :class:`FaultPlan` is a seed plus an ordered tuple of
:class:`FaultSpec` entries.  Each spec targets one :class:`FaultSite`
(a named hook point inside the model) and fires either probabilistically
(an independent Bernoulli draw per opportunity) or periodically (every
``period_us`` of simulated time).  Plans are immutable values: the same
plan attached to two identical systems produces byte-identical fault
logs and identical experiment output, which is what makes chaos runs
regressable.

The plan layer deliberately knows nothing about the DSA model — it only
names sites.  The components that own each site consult the
:class:`~repro.faults.injector.FaultInjector` at the matching hook point
and apply the effect themselves (drop the submission, corrupt the
completion record, invalidate the TLB, ...).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace


class FaultSite(enum.Enum):
    """The hook points where faults can be injected.

    ==========================  =====================================================
    ``SUBMISSION_DROP``         an ``enqcmd``/``movdir64b`` portal write is lost:
                                software believes the descriptor was accepted but it
                                never reaches the queue (detected only by a missing
                                completion record)
    ``SUBMISSION_DELAY``        a portal write is stalled for ``magnitude_cycles``
                                before reaching the device (hypervisor intercept,
                                bus contention)
    ``COMPLETION_ERROR``        a descriptor that would have succeeded completes
                                with an error status instead (``kind`` selects
                                ``page_fault`` or ``invalid_flags``)
    ``ENGINE_STALL``            the executing engine loses ``magnitude_cycles``
                                (micro-architectural stall, thermal throttle)
    ``DEVTLB_INVALIDATE``       a spurious global DevTLB invalidation (as an ATS
                                invalidate-all would cause)
    ``IOTLB_INVALIDATE``        a spurious global IOTLB invalidation at the
                                translation agent
    ``WQ_DRAIN``                the targeted work queue is drained mid-flight:
                                undispatched descriptors abort (the idxd
                                WQ-disable path), then the queue keeps operating
    ``PRS_DROP``                a device page request goes unresolved even though
                                the OS handler could have served it
    ``PREEMPTION``              the idling actor is preempted for
                                ``magnitude_cycles`` and resumes late
    ``POOL_WORKER_CRASH``       the pool worker executing the trial is
                                SIGKILLed before the trial runs (chaos for the
                                supervised executor's respawn/requeue path)
    ``POOL_WORKER_STALL``       the pool worker stops heartbeating and hangs
                                before the trial (``magnitude_cycles`` µs·10⁶,
                                capped) until the parent's hang watchdog kills it
    ``POOL_RESULT_CORRUPT``     the worker's checksummed shared-memory result
                                frame for the trial is garbled in flight, so the
                                parent must detect it via CRC and heal
    ``SERVICE_SESSION_STALL``   an attack session wedges for ``magnitude_cycles``
                                of device time mid-round (lost wakeup, hung
                                guest); the session's deadline budget must
                                detect it rather than wedging its lane
    ``SERVICE_ADMISSION_FLAP``  the admission controller spuriously refuses an
                                otherwise admissible session (control-plane
                                flakiness); surfaces as a typed
                                ``AdmissionRejected(reason="admission-flap")``
    ``SERVICE_DEVICE_REVOKE``   a device lane is revoked while held (hypervisor
                                reclaim); the fleet quarantines and rebuilds
                                the lane, the holding session retries elsewhere
    ==========================  =====================================================
    """

    SUBMISSION_DROP = "submission_drop"
    SUBMISSION_DELAY = "submission_delay"
    COMPLETION_ERROR = "completion_error"
    ENGINE_STALL = "engine_stall"
    DEVTLB_INVALIDATE = "devtlb_invalidate"
    IOTLB_INVALIDATE = "iotlb_invalidate"
    WQ_DRAIN = "wq_drain"
    PRS_DROP = "prs_drop"
    PREEMPTION = "preemption"
    POOL_WORKER_CRASH = "pool_worker_crash"
    POOL_WORKER_STALL = "pool_worker_stall"
    POOL_RESULT_CORRUPT = "pool_result_corrupt"
    SERVICE_SESSION_STALL = "service_session_stall"
    SERVICE_ADMISSION_FLAP = "service_admission_flap"
    SERVICE_DEVICE_REVOKE = "service_device_revoke"


#: ``kind`` values accepted by ``COMPLETION_ERROR`` specs.
COMPLETION_ERROR_KINDS = ("page_fault", "invalid_flags")


@dataclass(frozen=True)
class FaultSpec:
    """One fault source: a site, a trigger, and optional scoping filters.

    Exactly one trigger must be armed: ``probability`` (Bernoulli per
    opportunity) or ``period_us`` (fire whenever simulated time crosses
    the next period boundary).  ``start_us``/``stop_us`` bound the window
    of simulated time in which the spec is live.

    The scoping filters (``pasid``, ``wq_id``, ``engine_id``) restrict
    the spec to opportunities whose context matches; ``None`` matches
    everything.  ``magnitude_cycles`` parameterizes sites that consume a
    duration (delays, stalls, preemption bursts); ``kind`` selects the
    error flavor for ``COMPLETION_ERROR``.
    """

    site: FaultSite
    probability: float = 0.0
    period_us: float | None = None
    start_us: float = 0.0
    stop_us: float | None = None
    magnitude_cycles: int = 0
    kind: str = ""
    pasid: int | None = None
    wq_id: int | None = None
    engine_id: int | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {self.probability}")
        if self.period_us is not None and self.period_us <= 0:
            raise ValueError(f"period_us must be positive, got {self.period_us}")
        if self.period_us is None and self.probability == 0.0:
            raise ValueError(
                f"{self.site.value}: arm a trigger (probability > 0 or period_us)"
            )
        if self.period_us is not None and self.probability > 0.0:
            raise ValueError(
                f"{self.site.value}: probability and period_us are mutually exclusive"
            )
        if self.start_us < 0:
            raise ValueError("start_us cannot be negative")
        if self.stop_us is not None and self.stop_us <= self.start_us:
            raise ValueError("stop_us must be after start_us")
        if self.magnitude_cycles < 0:
            raise ValueError("magnitude_cycles cannot be negative")
        if self.site is FaultSite.COMPLETION_ERROR:
            kind = self.kind or COMPLETION_ERROR_KINDS[0]
            if kind not in COMPLETION_ERROR_KINDS:
                raise ValueError(
                    f"completion-error kind must be one of {COMPLETION_ERROR_KINDS}, "
                    f"got {self.kind!r}"
                )
            object.__setattr__(self, "kind", kind)
        elif self.kind:
            raise ValueError(f"{self.site.value} takes no kind")

    @property
    def periodic(self) -> bool:
        """Whether this spec fires on a simulated-time period."""
        return self.period_us is not None


@dataclass(frozen=True)
class FaultPlan:
    """A seed plus the fault specs to run against one system.

    The plan is a pure value: build it once, attach it (via
    :meth:`build_injector` or ``CloudSystem(fault_plan=...)``) to as many
    identically-seeded systems as needed — every attachment replays the
    exact same fault sequence.
    """

    seed: int = 0
    specs: tuple[FaultSpec, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def with_spec(self, spec: FaultSpec) -> "FaultPlan":
        """A new plan with *spec* appended."""
        return replace(self, specs=self.specs + (spec,))

    def with_site(self, site: FaultSite, **kwargs) -> "FaultPlan":
        """A new plan with ``FaultSpec(site, **kwargs)`` appended."""
        return self.with_spec(FaultSpec(site=site, **kwargs))

    def sites(self) -> tuple[FaultSite, ...]:
        """The distinct sites this plan can hit, in spec order."""
        seen: list[FaultSite] = []
        for spec in self.specs:
            if spec.site not in seen:
                seen.append(spec.site)
        return tuple(seen)

    def build_injector(self, max_log_events: int | None = 100_000):
        """Construct a fresh :class:`~repro.faults.injector.FaultInjector`."""
        from repro.faults.injector import FaultInjector

        return FaultInjector(self, max_log_events=max_log_events)

    def describe(self) -> str:
        """Human-readable one-spec-per-line summary."""
        lines = [f"FaultPlan(seed={self.seed}, specs={len(self.specs)})"]
        for index, spec in enumerate(self.specs):
            trigger = (
                f"every {spec.period_us} us"
                if spec.periodic
                else f"p={spec.probability}"
            )
            scope = ", ".join(
                f"{name}={value}"
                for name, value in (
                    ("pasid", spec.pasid),
                    ("wq", spec.wq_id),
                    ("engine", spec.engine_id),
                )
                if value is not None
            )
            lines.append(
                f"  [{index}] {spec.site.value} {trigger}"
                + (f" ({scope})" if scope else "")
            )
        return "\n".join(lines)
