"""The runtime side of fault injection: firing decisions and the log.

Model components that own a fault site call :meth:`FaultInjector.fire`
at their hook point with the current timestamp and whatever context they
have (PASID, queue, engine).  The injector evaluates the plan's specs
for that site in order and returns at most one :class:`FaultEvent` — the
component then applies the effect itself.

Determinism contract
--------------------
Every spec owns a private :class:`numpy.random.Generator` spawned from
the plan seed via :class:`numpy.random.SeedSequence`, so firing
decisions never perturb (and are never perturbed by) the system RNG.
Because the simulation itself is deterministic, the sequence of ``fire``
calls — and therefore the event log — is a pure function of
``(plan, system seed)``: :meth:`FaultInjector.log_bytes` is
byte-identical across runs, which the chaos suite asserts.
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan, FaultSite, FaultSpec
from repro.faults.sites import DEVICE_SITES, TIMELINE_SITES, coerce_site
from repro.hw.units import us_to_cycles


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, as recorded in the log.

    ``context`` is a sorted tuple of ``(name, value)`` pairs taken from
    the hook call (``pasid``, ``wq_id``, ``engine_id``, ``address``), so
    chaos assertions can pinpoint the victim of each fault.
    """

    seq: int
    site: FaultSite
    timestamp: int
    spec_index: int
    magnitude_cycles: int = 0
    kind: str = ""
    context: tuple[tuple[str, int], ...] = ()

    def to_json(self) -> str:
        """Stable single-line JSON encoding (the log's wire format)."""
        return json.dumps(
            {
                "seq": self.seq,
                "site": self.site.value,
                "t": self.timestamp,
                "spec": self.spec_index,
                "magnitude": self.magnitude_cycles,
                "kind": self.kind,
                "ctx": dict(self.context),
            },
            sort_keys=True,
            separators=(",", ":"),
        )


class FaultInjector:
    """Evaluates a :class:`~repro.faults.plan.FaultPlan` at runtime.

    Parameters
    ----------
    plan:
        The immutable fault plan.
    max_log_events:
        Cap on retained events (oldest dropped first, counted in
        ``events_dropped``) so million-submission chaos runs stay
        bounded; ``None`` retains everything.
    """

    def __init__(self, plan: FaultPlan, max_log_events: int | None = 100_000) -> None:
        self.plan = plan
        root = np.random.SeedSequence(plan.seed)
        children = root.spawn(max(len(plan.specs), 1))
        self._rngs = [np.random.default_rng(child) for child in children]
        self._next_fire: list[int | None] = [None] * len(plan.specs)
        self._events: deque[FaultEvent] = deque(maxlen=max_log_events)
        self._seq = 0
        self.events_dropped = 0
        self.fired_by_site: dict[FaultSite, int] = {}
        self.handled_by_site: dict[FaultSite, int] = {}
        self.handled = 0
        self._last_action: dict[FaultSite, str] = {}
        self.opportunities = 0
        self._site_owners: dict[FaultSite, str] = {}

    # ------------------------------------------------------------------
    # Site registry
    # ------------------------------------------------------------------
    def register_site(self, site: FaultSite | str, owner: str) -> FaultSite:
        """Claim *site* for *owner* (an attachment point's label).

        Each site may be hooked at most once per injector: attaching the
        same injector to two devices would double-evaluate every device
        spec, silently doubling effective fault rates.  Registering an
        already-claimed site therefore raises
        :class:`~repro.errors.ConfigurationError` naming both owners, as
        does an unknown site id (via
        :func:`~repro.faults.sites.coerce_site`).
        """
        resolved = coerce_site(site)
        previous = self._site_owners.get(resolved)
        if previous is not None:
            raise ConfigurationError(
                f"fault site {resolved.value!r} already hooked by"
                f" {previous}; refusing duplicate hook-up by {owner}"
                " (one injector per device/timeline — build a fresh"
                " FaultInjector instead)"
            )
        self._site_owners[resolved] = owner
        return resolved

    @property
    def registered_sites(self) -> dict[FaultSite, str]:
        """Hooked sites and the attachment labels that claimed them."""
        return dict(self._site_owners)

    # ------------------------------------------------------------------
    # Firing
    # ------------------------------------------------------------------
    def fire(
        self,
        site: FaultSite,
        timestamp: int,
        pasid: int | None = None,
        wq_id: int | None = None,
        engine_id: int | None = None,
        address: int | None = None,
    ) -> FaultEvent | None:
        """One injection opportunity at *site*; returns the fault, if any.

        Specs for the site are evaluated in plan order; the first one
        that triggers wins (at most one fault per opportunity).
        """
        self.opportunities += 1
        context = {"pasid": pasid, "wq_id": wq_id, "engine_id": engine_id}
        for index, spec in enumerate(self.plan.specs):
            if spec.site is not site:
                continue
            if not self._scope_matches(spec, context):
                continue
            if not self._window_open(spec, timestamp):
                continue
            if spec.periodic:
                if not self._periodic_due(index, spec, timestamp):
                    continue
            elif self._rngs[index].random() >= spec.probability:
                continue
            return self._record(index, spec, timestamp, context, address)
        return None

    @staticmethod
    def _scope_matches(spec: FaultSpec, context: dict[str, int | None]) -> bool:
        for name in ("pasid", "wq_id", "engine_id"):
            wanted = getattr(spec, name if name != "wq_id" else "wq_id")
            if wanted is not None and context.get(name) != wanted:
                return False
        return True

    @staticmethod
    def _window_open(spec: FaultSpec, timestamp: int) -> bool:
        if timestamp < us_to_cycles(spec.start_us):
            return False
        if spec.stop_us is not None and timestamp >= us_to_cycles(spec.stop_us):
            return False
        return True

    def _periodic_due(self, index: int, spec: FaultSpec, timestamp: int) -> bool:
        period = us_to_cycles(spec.period_us)
        due = self._next_fire[index]
        if due is None:
            due = us_to_cycles(spec.start_us) + period
        if timestamp < due:
            self._next_fire[index] = due
            return False
        while due <= timestamp:
            due += period
        self._next_fire[index] = due
        return True

    def _record(
        self,
        index: int,
        spec: FaultSpec,
        timestamp: int,
        context: dict[str, int | None],
        address: int | None,
    ) -> FaultEvent:
        ctx = {name: value for name, value in context.items() if value is not None}
        if address is not None:
            ctx["address"] = address
        event = FaultEvent(
            seq=self._seq,
            site=spec.site,
            timestamp=timestamp,
            spec_index=index,
            magnitude_cycles=spec.magnitude_cycles,
            kind=spec.kind,
            context=tuple(sorted(ctx.items())),
        )
        self._seq += 1
        if self._events.maxlen is not None and len(self._events) == self._events.maxlen:
            self.events_dropped += 1
        self._events.append(event)
        self.fired_by_site[spec.site] = self.fired_by_site.get(spec.site, 0) + 1
        return event

    def acknowledge(self, event: FaultEvent, action: str = "") -> None:
        """Record that *event*'s effect was applied and accounted.

        Every component that consumes a :meth:`fire` result must call
        this once the effect landed (slot aborts counted, stall cycles
        charged, the typed error raised).  The guarded-trial audit
        compares ``fired_by_site`` against ``handled_by_site``: a fault
        that fired but was never acknowledged — and tripped no invariant
        — fails the trial as silently absorbed
        (:class:`~repro.errors.UnhandledFaultError`).  *action* is a
        short label kept for diagnostics on the last event per site.
        """
        self.handled += 1
        self.handled_by_site[event.site] = (
            self.handled_by_site.get(event.site, 0) + 1
        )
        self._last_action[event.site] = action

    # ------------------------------------------------------------------
    # The log
    # ------------------------------------------------------------------
    @property
    def events(self) -> tuple[FaultEvent, ...]:
        """Retained fault events, oldest first."""
        return tuple(self._events)

    @property
    def total_fired(self) -> int:
        """Faults injected across all sites (including rotated-out events)."""
        return self._seq

    def log_lines(self) -> list[str]:
        """The retained log as one JSON line per event."""
        return [event.to_json() for event in self._events]

    def log_bytes(self) -> bytes:
        """The retained log serialized for byte-identical comparison."""
        return ("\n".join(self.log_lines()) + "\n").encode() if self._events else b""

    # ------------------------------------------------------------------
    # Attachment (duck-typed: no imports of the model packages)
    # ------------------------------------------------------------------
    def attach_device(self, device) -> None:
        """Hook a :class:`~repro.dsa.device.DsaDevice` and its engines/PRS.

        Registers every device-owned site first, so attaching one
        injector to two devices fails loudly before any state is touched.
        """
        owner = f"attach_device({type(device).__name__})"
        for site in DEVICE_SITES:
            self.register_site(site, owner)
        device.fault_injector = self
        for engine in device.engines.values():
            engine.fault_injector = self
        device.prs.fault_injector = self

    def attach_timeline(self, timeline) -> None:
        """Hook a :class:`~repro.virt.scheduler.Timeline` (preemption site)."""
        owner = f"attach_timeline({type(timeline).__name__})"
        for site in TIMELINE_SITES:
            self.register_site(site, owner)
        timeline.fault_injector = self

    def attach_system(self, system) -> None:
        """Hook an entire :class:`~repro.virt.system.CloudSystem`."""
        self.attach_device(system.device)
        self.attach_timeline(system.timeline)
        system.fault_injector = self
