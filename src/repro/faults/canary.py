"""Seeded canary bugs — the fuzzer's own regression oracle.

A fuzzer whose oracles never fire proves nothing: a broken generator, a
detached monitor, or a shrinker that destroys the failure all look
exactly like a clean model.  The canaries are two small, realistic bugs
planted in the model behind the ``REPRO_FUZZ_CANARY`` environment
variable; ``tests/fuzz`` asserts the campaign finds *and shrinks* both
within a fixed trial budget, which pins the whole
generate → execute → detect → shrink → report pipeline end to end.

The two bugs (chosen so each trips a *different* invariant checker):

``wq-credit``
    A work queue that rejects a batch descriptor while full still
    charges the occupancy register one credit — the classic
    accounting-on-the-error-path leak.  Caught by the ``wq-credits``
    ledger audit.
``devtlb-evict``
    The DevTLB eviction check runs one slot too late, letting a
    sub-entry exceed its configured associativity.  Caught by the
    ``devtlb`` census audit.

Arming: set ``REPRO_FUZZ_CANARY`` to a canary name, a comma-separated
list of names, or ``all``/``1`` for every canary.  The flag is read at
the buggy code path (not cached at import), so tests can arm and disarm
canaries per test via ``monkeypatch.setenv``.
"""

from __future__ import annotations

import os

#: Environment variable that arms the canary bugs.
CANARY_ENV = "REPRO_FUZZ_CANARY"

#: WQ credit leak on a rejected batch (planted in ``repro.dsa.wq``).
CANARY_WQ_CREDIT = "wq-credit"

#: DevTLB eviction off-by-one (planted in ``repro.ats.devtlb``).
CANARY_DEVTLB_EVICT = "devtlb-evict"

#: Every known canary name, in documentation order.
ALL_CANARIES: "tuple[str, ...]" = (CANARY_WQ_CREDIT, CANARY_DEVTLB_EVICT)


def canary_active(name: str) -> bool:
    """Whether the canary *name* is armed via ``REPRO_FUZZ_CANARY``."""
    raw = os.environ.get(CANARY_ENV, "")
    if not raw:
        return False
    tokens = {token.strip().lower() for token in raw.split(",") if token.strip()}
    if tokens & {"1", "all"}:
        return True
    return name in tokens


__all__ = [
    "ALL_CANARIES",
    "CANARY_DEVTLB_EVICT",
    "CANARY_ENV",
    "CANARY_WQ_CREDIT",
    "canary_active",
]
