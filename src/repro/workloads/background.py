"""Background tenant activity.

A realistic cloud host never gives an attacker a silent DSA: other
tenants submit their own work.  :class:`BackgroundTenant` generates that
interference mechanistically — Poisson-arrival bursts of memcpy traffic
from an unrelated process — so robustness experiments can measure how
the attacks degrade as co-tenant load grows, rather than assuming an
error rate.

For the DevTLB primitive, background submissions on the shared engine
evict the attacker's sub-entry exactly like victim activity does (false
positives the attacker must filter); for the SWQ primitive they consume
armed slots (false positives) and occasionally block the victim's own
submissions (false negatives).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsa.descriptor import make_memcpy
from repro.hw.units import us_to_cycles
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline


@dataclass(frozen=True)
class BackgroundProfile:
    """Load shape of one background tenant.

    ``burst_rate_hz`` bursts arrive per second (Poisson); each burst is
    ``burst_length`` submissions of ``transfer_bytes`` spaced
    ``intra_burst_us`` apart.
    """

    burst_rate_hz: float = 50.0
    burst_length: int = 4
    transfer_bytes: int = 16_384
    intra_burst_us: float = 30.0

    def __post_init__(self) -> None:
        if self.burst_rate_hz <= 0:
            raise ValueError("burst_rate_hz must be positive")
        if self.burst_length < 1:
            raise ValueError("burst_length must be at least 1")
        if self.transfer_bytes < 1:
            raise ValueError("transfer_bytes must be positive")


class BackgroundTenant:
    """An unrelated process generating DSA load."""

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int,
        profile: BackgroundProfile | None = None,
        *,
        rng: np.random.Generator,
    ) -> None:
        self.process = process
        self.portal = process.portal(wq_id)
        self.profile = profile or BackgroundProfile()
        self.rng = rng
        size = max(self.profile.transfer_bytes, 4096)
        self._src = process.buffer(2 * size)
        self._dst = process.buffer(2 * size)
        self._comp = process.comp_record()
        self.submissions = 0
        self.rejected = 0

    def _submit_once(self) -> None:
        descriptor = make_memcpy(
            self.process.pasid,
            self._src,
            self._dst,
            self.profile.transfer_bytes,
            self._comp,
        )
        if self.portal.enqcmd(descriptor):
            self.rejected += 1
        else:
            self.submissions += 1

    def schedule(self, timeline: Timeline, start_time: int, duration_us: float) -> int:
        """Schedule *duration_us* of background load; return burst count."""
        profile = self.profile
        mean_gap_us = 1_000_000.0 / profile.burst_rate_hz
        t = float(self.rng.exponential(mean_gap_us))
        bursts = 0
        while t < duration_us:
            for k in range(profile.burst_length):
                when = start_time + us_to_cycles(t + k * profile.intra_burst_us)
                timeline.schedule_at(when, self._submit_once)
            bursts += 1
            t += float(self.rng.exponential(mean_gap_us))
        return bursts
