"""The VPP/memif packet path.

In the paper's cloud-native scenario (Fig. 8), the victim VM runs the
Vector Packet Processor with a shared-memory interface (memif) as its only
network path, and DSA accelerates the packet copies across that interface.
Every packet therefore produces one DSA memcpy of roughly the packet size
— which is what makes network activity observable through the DevTLB.

:class:`MemifInterface` performs those copies; :class:`VppVictim` replays
a traffic trace (a list of :class:`PacketEvent`) onto a timeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsa.descriptor import make_memcpy
from repro.hw.units import us_to_cycles
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline

#: memif copies whole ring slots; packets are padded to this granularity.
MEMIF_SLOT_BYTES = 2048

#: Size of the packet buffer rings the interface pre-maps.
RING_BYTES = 4 << 20


@dataclass(frozen=True)
class PacketEvent:
    """One packet crossing the interface."""

    time_us: float
    size_bytes: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")
        if self.time_us < 0:
            raise ValueError("packet time cannot be negative")


class MemifInterface:
    """The shared-memory interface whose copies run on DSA."""

    def __init__(self, process: GuestProcess, wq_id: int = 0) -> None:
        self.process = process
        self.portal = process.portal(wq_id)
        self._rx_ring = process.buffer(RING_BYTES)
        self._tx_ring = process.buffer(RING_BYTES)
        self._comp = process.comp_record()
        self._cursor = 0
        self.packets_transferred = 0
        self.bytes_transferred = 0
        self.drops = 0

    def transfer_packet(self, size_bytes: int) -> None:
        """Copy one packet across the interface via DSA.

        A full queue drops the packet (memif rings apply backpressure in
        reality; a drop keeps the victim non-blocking and is invisible to
        the attacker either way).
        """
        slots = -(-size_bytes // MEMIF_SLOT_BYTES)
        copy_bytes = slots * MEMIF_SLOT_BYTES
        offset = self._cursor % (RING_BYTES - copy_bytes)
        self._cursor += copy_bytes
        descriptor = make_memcpy(
            self.process.pasid,
            self._rx_ring + offset,
            self._tx_ring + offset,
            copy_bytes,
            self._comp,
        )
        if self.portal.enqcmd(descriptor):
            self.drops += 1
            return
        self.packets_transferred += 1
        self.bytes_transferred += copy_bytes


class VppVictim:
    """Replays a packet trace through the memif interface."""

    def __init__(self, process: GuestProcess, wq_id: int = 0) -> None:
        self.interface = MemifInterface(process, wq_id=wq_id)

    def schedule_trace(
        self, timeline: Timeline, packets: list[PacketEvent], start_time: int
    ) -> int:
        """Schedule every packet of *packets* relative to *start_time*.

        Returns the number of scheduled packet events.
        """
        interface = self.interface
        for packet in packets:
            when = start_time + us_to_cycles(packet.time_us)
            size = packet.size_bytes
            timeline.schedule_at(when, lambda size=size: interface.transfer_packet(size))
        return len(packets)
