"""SSH keystroke sessions under DTO.

When a user types over SSH, each keystroke makes the client emit one
small packet immediately (interactive mode sends per keypress), and the
OpenSSH code paths invoke ``mem*`` routines on the connection buffers.
With DTO enabled, the buffer operations above ``DTO_MIN_BYTES`` land on
the DSA — so every keystroke produces a tight cluster of DSA submissions
whose *timing* is the secret the attack recovers (Section VI-C).

Inter-keystroke delays follow a log-normal distribution (the standard
model from the SSH timing-attack literature), parameterized per typist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.units import us_to_cycles
from repro.virt.scheduler import Timeline
from repro.workloads.dto import DtoRuntime

#: Buffer sizes OpenSSH's channel/packet layer touches per keypress; the
#: ones >= DTO_MIN_BYTES are what DTO offloads.
KEYSTROKE_BUFFER_SIZES = (16_384, 9_216)

#: Log-normal inter-key delay parameters (median ~160 ms, heavy tail).
DEFAULT_LOG_MEAN = np.log(0.160)
DEFAULT_LOG_SIGMA = 0.45


@dataclass(frozen=True)
class KeystrokeEvent:
    """Ground truth for one keypress."""

    index: int
    character: str
    time_us: float


class SshKeystrokeSession:
    """A victim typing over SSH with DTO-accelerated packet handling.

    Parameters
    ----------
    dto:
        The victim's DTO runtime (owns the portal).
    rng:
        Generator for typing cadence.
    log_mean, log_sigma:
        Log-normal parameters of the inter-key delay in seconds.
    """

    def __init__(
        self,
        dto: DtoRuntime,
        rng: np.random.Generator,
        log_mean: float = DEFAULT_LOG_MEAN,
        log_sigma: float = DEFAULT_LOG_SIGMA,
    ) -> None:
        self.dto = dto
        self.rng = rng
        self.log_mean = log_mean
        self.log_sigma = log_sigma
        process = dto.process
        self._buffers = [process.buffer(size * 2) for size in KEYSTROKE_BUFFER_SIZES]

    def keystroke_times(self, text: str, start_us: float = 0.0) -> list[KeystrokeEvent]:
        """Draw the ground-truth timing of typing *text*."""
        events = []
        t = start_us
        for index, character in enumerate(text):
            delay_s = float(self.rng.lognormal(self.log_mean, self.log_sigma))
            t += delay_s * 1_000_000.0
            events.append(KeystrokeEvent(index=index, character=character, time_us=t))
        return events

    def schedule_typing(
        self, timeline: Timeline, text: str, start_time: int
    ) -> list[KeystrokeEvent]:
        """Schedule the DSA activity of typing *text*; return ground truth.

        Each keystroke triggers the OpenSSH buffer operations: one DTO
        memcpy per buffer in :data:`KEYSTROKE_BUFFER_SIZES` (the packet
        path touches the channel buffer and the cipher staging buffer).
        """
        events = self.keystroke_times(text)
        dto = self.dto
        for event in events:
            when = start_time + us_to_cycles(event.time_us)
            for buffer, size in zip(self._buffers, KEYSTROKE_BUFFER_SIZES):
                timeline.schedule_at(
                    when,
                    lambda buffer=buffer, size=size: dto.memcpy(
                        buffer + size, buffer, size
                    ),
                )
        return events
