"""LLM inference workloads (Table II).

Cloud LLM serving moves tensors constantly — activations and KV-cache
blocks on every token, weight shards at load time (and per expert-swap
for MoE models).  With DTO in place those moves become DSA submissions,
and their cadence is a fingerprint of the architecture: token rate falls
with parameter count, per-token submission count follows layer depth,
transfer sizes follow the hidden dimension, and backends differ in shape
(CPU-only streams steadily; CPU-GPU hybrids front-load a big weight
transfer then stay light; MoE models add irregular expert-swap bursts).

The zoo reproduces Table II: TinyStories 15M/42M/110M (llama2.c,
CPU-only), Meta LLaMA 2 7B, Gemma 3 1B/4B (single GPU), and Qwen3
1.7B/4B (dense and MoE).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.hw.units import us_to_cycles
from repro.virt.scheduler import Timeline
from repro.workloads.dto import DtoRuntime


class LlmBackend(enum.Enum):
    """Inference runtime type."""

    CPU = "cpu"  # llama2.c style: everything on host memory
    GPU = "gpu"  # ollama style: weights pushed to the GPU once
    MOE_GPU = "moe-gpu"  # GPU with expert swapping


@dataclass(frozen=True)
class LlmModel:
    """One Table II model."""

    name: str
    parameters_m: int  # millions of parameters
    layers: int
    hidden: int
    backend: LlmBackend
    tokens_per_second: float

    @property
    def activation_bytes(self) -> int:
        """Per-layer activation/KV transfer size (fp32 tiles)."""
        return self.hidden * 32

    @property
    def weight_shard_bytes(self) -> int:
        """Size of one weight shard moved at load / expert swap."""
        return self.hidden * self.hidden


#: Table II, with architecture parameters from the public model cards.
LLM_ZOO: tuple[LlmModel, ...] = (
    LlmModel("tinystories-15m", 15, 6, 288, LlmBackend.CPU, 190.0),
    LlmModel("tinystories-42m", 42, 8, 512, LlmBackend.CPU, 120.0),
    LlmModel("tinystories-110m", 110, 12, 768, LlmBackend.CPU, 60.0),
    LlmModel("llama2-7b", 7000, 32, 4096, LlmBackend.CPU, 4.5),
    LlmModel("gemma3-1b", 1000, 26, 1152, LlmBackend.GPU, 28.0),
    LlmModel("gemma3-4b", 4000, 34, 2560, LlmBackend.GPU, 12.0),
    LlmModel("qwen3-1.7b", 1700, 28, 2048, LlmBackend.GPU, 19.0),
    LlmModel("qwen3-4b-moe", 4000, 36, 2560, LlmBackend.MOE_GPU, 9.0),
)


def model_by_name(name: str) -> LlmModel:
    """Look up a zoo model."""
    for model in LLM_ZOO:
        if model.name == name:
            return model
    raise KeyError(f"unknown model {name!r}; zoo has {[m.name for m in LLM_ZOO]}")


class LlmInferenceWorkload:
    """Schedules the DSA activity of one model generating tokens."""

    def __init__(
        self, dto: DtoRuntime, model: LlmModel, rng: np.random.Generator
    ) -> None:
        self.dto = dto
        self.model = model
        self.rng = rng
        process = dto.process
        pool_bytes = max(model.weight_shard_bytes * 2, 8 << 20)
        self._pool = process.buffer(pool_bytes)
        self._pool_bytes = pool_bytes
        self.tokens_scheduled = 0

    def schedule_inference(
        self, timeline: Timeline, start_time: int, duration_us: float
    ) -> int:
        """Schedule *duration_us* of token generation; return token count."""
        model = self.model
        rng = self.rng
        if model.backend in (LlmBackend.GPU, LlmBackend.MOE_GPU):
            self._schedule_weight_load(timeline, start_time)

        token_period_us = 1_000_000.0 / model.tokens_per_second
        t = rng.uniform(0.3, 1.0) * token_period_us
        tokens = 0
        while t < duration_us:
            self._schedule_token(
                timeline, start_time + us_to_cycles(t), token_period_us
            )
            tokens += 1
            t += token_period_us * rng.uniform(0.88, 1.12)
            if model.backend is LlmBackend.MOE_GPU and tokens % 12 == 0:
                self._schedule_expert_swap(timeline, start_time + us_to_cycles(t))
        self.tokens_scheduled += tokens
        return tokens

    # ------------------------------------------------------------------
    # Activity shapes
    # ------------------------------------------------------------------
    def _schedule_token(
        self, timeline: Timeline, when: int, token_period_us: float
    ) -> None:
        """One token: activation/KV copies paced layer by layer.

        CPU backends stream the host-resident layer stack, producing one
        copy per few layers spread across most of the token period; GPU
        backends only sync boundary activations in a short leading burst.
        The copies-per-token count and their pacing are what make layer
        depth visible in the side-channel trace.
        """
        model = self.model
        if model.backend is LlmBackend.CPU:
            copies = max(model.layers // 3, 2)
            spread_us = token_period_us * 0.6
        else:
            copies = max(model.layers // 8, 2)
            spread_us = token_period_us * 0.25
        size = model.activation_bytes
        for i in range(copies):
            offset = (i * 2 * size) % (self._pool_bytes - 2 * size)
            timeline.schedule_at(
                when + us_to_cycles(spread_us * i / copies),
                lambda offset=offset, size=size: self.dto.memcpy(
                    self._pool + offset + size, self._pool + offset, size
                ),
            )

    def _schedule_weight_load(self, timeline: Timeline, start_time: int) -> None:
        """The initial weight push to the GPU: a dense burst of shards."""
        model = self.model
        shard = min(model.weight_shard_bytes, self._pool_bytes // 2 - 1)
        shards = min(model.layers, 24)
        for i in range(shards):
            timeline.schedule_at(
                start_time + us_to_cycles(150.0 * i),
                lambda shard=shard: self.dto.memcpy(
                    self._pool + shard, self._pool, shard
                ),
            )

    def _schedule_expert_swap(self, timeline: Timeline, when: int) -> None:
        """MoE expert page-in: a mid-sized burst at irregular intervals."""
        shard = min(self.model.weight_shard_bytes // 4, self._pool_bytes // 2 - 1)
        for i in range(4):
            timeline.schedule_at(
                when + us_to_cycles(120.0 * i),
                lambda shard=shard: self.dto.memcpy(
                    self._pool + shard, self._pool, shard
                ),
            )
