"""VM checkpointing / live-migration and memory-deduplication workloads.

The paper's introduction motivates DSA with exactly these datacenter
jobs: "storage, networking, deduplication, VM migration, and
checkpointing workloads".  This module implements two of them on the
device model — they exercise the opcodes the attacks never touch
(COMPARE, CREATE_DELTA, APPLY_DELTA, CRC) and serve as realistic victims
whose side-channel signatures differ sharply from packet workloads.

* :class:`CheckpointMigrator` — dirty-page-based incremental VM
  checkpointing: CRC-scan pages, ship full copies on the first round and
  delta records afterwards.
* :class:`MemoryDeduplicator` — KSM-style same-page merging driven by
  DSA COMPARE.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import Descriptor, make_memcpy
from repro.dsa.opcodes import Opcode
from repro.hw.units import PAGE_SIZE
from repro.virt.process import GuestProcess


@dataclass
class MigrationStats:
    """What a checkpoint round moved."""

    rounds: int = 0
    pages_scanned: int = 0
    pages_shipped_full: int = 0
    pages_shipped_delta: int = 0
    delta_bytes: int = 0
    full_bytes: int = 0

    @property
    def bytes_saved(self) -> int:
        """Bytes the delta encoding avoided shipping."""
        return self.pages_shipped_delta * PAGE_SIZE - self.delta_bytes


class CheckpointMigrator:
    """Incremental checkpointing of a guest memory region via DSA.

    The first :meth:`checkpoint` ships every page (memcpy into the
    checkpoint buffer).  Later rounds compare each page against the
    checkpoint (COMPARE), and ship only a delta record (CREATE_DELTA)
    for pages that changed — the DSA patching workflow from the device
    documentation.
    """

    def __init__(self, process: GuestProcess, region_va: int, pages: int, wq_id: int = 0) -> None:
        if pages < 1:
            raise ValueError("a migration region needs at least one page")
        self.process = process
        self.portal = process.portal(wq_id)
        self.region_va = region_va
        self.pages = pages
        self._checkpoint = process.buffer(pages * PAGE_SIZE)
        self._delta_buffer = process.buffer(2 * PAGE_SIZE)
        self._comp = process.comp_record()
        self._first_round_done = False
        self.stats = MigrationStats()

    def _submit(self, descriptor: Descriptor):
        return self.portal.submit_wait(descriptor)

    def checkpoint(self) -> int:
        """Run one checkpoint round; return pages shipped (full or delta)."""
        shipped = 0
        self.stats.rounds += 1
        for index in range(self.pages):
            src = self.region_va + index * PAGE_SIZE
            dst = self._checkpoint + index * PAGE_SIZE
            self.stats.pages_scanned += 1
            if not self._first_round_done:
                shipped += self._ship_full(src, dst)
                continue
            compare = self._submit(
                Descriptor(
                    opcode=Opcode.COMPARE,
                    pasid=self.process.pasid,
                    src=src,
                    dst=dst,  # src2 alias
                    size=PAGE_SIZE,
                    completion_addr=self._comp,
                )
            )
            if compare.record.result == 0:
                continue  # clean page
            shipped += self._ship_delta(src, dst)
        self._first_round_done = True
        return shipped

    def _ship_full(self, src: int, dst: int) -> int:
        result = self._submit(
            make_memcpy(self.process.pasid, src, dst, PAGE_SIZE, self._comp)
        )
        if result.record.status is not CompletionStatus.SUCCESS:
            raise RuntimeError(f"checkpoint copy failed: {result.record.status}")
        self.stats.pages_shipped_full += 1
        self.stats.full_bytes += PAGE_SIZE
        return 1

    def _ship_delta(self, src: int, dst: int) -> int:
        create = self._submit(
            Descriptor(
                opcode=Opcode.CREATE_DELTA,
                pasid=self.process.pasid,
                src=dst,  # old content (checkpoint)
                dst=src,  # src2 alias: new content
                dst2=self._delta_buffer,
                size=PAGE_SIZE,
                completion_addr=self._comp,
            )
        )
        delta_size = int(create.record.result)
        if delta_size >= PAGE_SIZE:
            return self._ship_full(src, dst)  # delta larger than the page
        apply = self._submit(
            Descriptor(
                opcode=Opcode.APPLY_DELTA,
                pasid=self.process.pasid,
                src=self._delta_buffer,
                dst=dst,
                size=delta_size,
                completion_addr=self._comp,
            )
        )
        if apply.record.status is not CompletionStatus.SUCCESS:
            raise RuntimeError("delta application failed")
        self.stats.pages_shipped_delta += 1
        self.stats.delta_bytes += delta_size
        return 1

    def verify(self) -> bool:
        """Checkpoint equals the live region (reads through the model)."""
        live = self.process.read(self.region_va, self.pages * PAGE_SIZE)
        saved = self.process.read(self._checkpoint, self.pages * PAGE_SIZE)
        return live == saved


@dataclass
class DedupStats:
    """Deduplication outcome."""

    comparisons: int = 0
    merged_pages: int = 0

    @property
    def bytes_reclaimed(self) -> int:
        """Memory the merge reclaimed."""
        return self.merged_pages * PAGE_SIZE


class MemoryDeduplicator:
    """KSM-style same-page merging using DSA COMPARE.

    Pages are bucketed by a cheap CRC (CRCGEN descriptor), then byte-wise
    confirmed with COMPARE before being recorded as merged.  The model
    tracks merge bookkeeping; actual page-table aliasing is out of scope.
    """

    def __init__(self, process: GuestProcess, wq_id: int = 0) -> None:
        self.process = process
        self.portal = process.portal(wq_id)
        self._comp = process.comp_record()
        self.stats = DedupStats()
        self.merged: list[tuple[int, int]] = []

    def _crc(self, va: int) -> int:
        result = self.portal.submit_wait(
            Descriptor(
                opcode=Opcode.CRCGEN,
                pasid=self.process.pasid,
                src=va,
                size=PAGE_SIZE,
                completion_addr=self._comp,
            )
        )
        return int(result.record.result)

    def _identical(self, a: int, b: int) -> bool:
        self.stats.comparisons += 1
        result = self.portal.submit_wait(
            Descriptor(
                opcode=Opcode.COMPARE,
                pasid=self.process.pasid,
                src=a,
                dst=b,
                size=PAGE_SIZE,
                completion_addr=self._comp,
            )
        )
        return result.record.result == 0

    def deduplicate(self, page_vas: list[int]) -> int:
        """Scan *page_vas* and merge identical pages; return merge count."""
        buckets: dict[int, list[int]] = {}
        for va in page_vas:
            buckets.setdefault(self._crc(va), []).append(va)
        merges = 0
        for candidates in buckets.values():
            keeper = candidates[0]
            for other in candidates[1:]:
                if self._identical(keeper, other):
                    self.merged.append((keeper, other))
                    self.stats.merged_pages += 1
                    merges += 1
        return merges
