"""Synthetic per-website traffic signatures.

The paper fingerprints the Alexa top-100 websites loaded in headless
Chrome through a VPP/memif path.  Without network access, we substitute a
generative traffic model: every site gets a *deterministic signature* —
how many request waves a page load issues, when they fire, how many
objects each wave fetches, and the object size distribution — and every
*visit* draws jittered packet events from that signature.  Different
visits to one site therefore look alike but never identical, and sites
whose parameters land close together genuinely confuse the classifier
(the paper sees the same for e.g. canva.com vs. notion.com).

The signature parameters are drawn from ranges measured in published page
-load studies (a few hundred KB to a few MB across 10-100 objects over
0.5-1 s), which is the level of fidelity the attack actually senses:
per-slot DSA activity counts.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

import numpy as np

from repro.workloads.vpp import PacketEvent

#: MTU-sized payload of a full packet.
MTU_BYTES = 1500

#: Canonical top-100 site list (Alexa-style), fixed for reproducibility.
TOP_100_SITES = [
    "google.com", "youtube.com", "facebook.com", "baidu.com", "wikipedia.org",
    "reddit.com", "yahoo.com", "amazon.com", "twitter.com", "instagram.com",
    "linkedin.com", "netflix.com", "office.com", "twitch.tv", "ebay.com",
    "bing.com", "live.com", "microsoft.com", "pinterest.com", "wordpress.com",
    "apple.com", "adobe.com", "tumblr.com", "imgur.com", "stackoverflow.com",
    "github.com", "whatsapp.com", "canva.com", "notion.com", "quora.com",
    "paypal.com", "salesforce.com", "dropbox.com", "spotify.com", "soundcloud.com",
    "vimeo.com", "flickr.com", "medium.com", "nytimes.com", "cnn.com",
    "bbc.com", "theguardian.com", "forbes.com", "bloomberg.com", "reuters.com",
    "walmart.com", "target.com", "bestbuy.com", "etsy.com", "aliexpress.com",
    "taobao.com", "jd.com", "tmall.com", "qq.com", "sohu.com",
    "sina.com.cn", "weibo.com", "163.com", "zoom.us", "slack.com",
    "atlassian.com", "trello.com", "figma.com", "airbnb.com", "booking.com",
    "expedia.com", "tripadvisor.com", "uber.com", "lyft.com", "doordash.com",
    "grubhub.com", "instacart.com", "zillow.com", "redfin.com", "indeed.com",
    "glassdoor.com", "monster.com", "coursera.org", "udemy.com", "edx.org",
    "khanacademy.org", "duolingo.com", "openai.com", "anthropic.com", "kaggle.com",
    "arxiv.org", "nature.com", "sciencedirect.com", "ieee.org", "acm.org",
    "espn.com", "nba.com", "fifa.com", "steamcommunity.com", "epicgames.com",
    "roblox.com", "minecraft.net", "discord.com", "telegram.org", "signal.org",
]


@dataclass(frozen=True)
class RequestWave:
    """One burst of object fetches during a page load."""

    start_us: float
    objects: int
    mean_object_bytes: float
    spread_us: float


@dataclass(frozen=True)
class WebsiteProfile:
    """The deterministic signature of one site."""

    name: str
    waves: tuple[RequestWave, ...]
    keepalive_period_us: float
    total_duration_us: float = 1_000_000.0
    visit_time_jitter: float = 0.08
    visit_size_jitter: float = 0.20
    object_drop_probability: float = 0.06

    @classmethod
    def from_name(cls, name: str) -> "WebsiteProfile":
        """Derive the signature deterministically from the domain name."""
        digest = hashlib.sha256(name.encode()).digest()
        rng = np.random.default_rng(int.from_bytes(digest[:8], "little"))
        wave_count = int(rng.integers(2, 6))
        waves = []
        cursor = float(rng.uniform(5_000, 60_000))
        for _ in range(wave_count):
            waves.append(
                RequestWave(
                    start_us=cursor,
                    objects=int(rng.integers(4, 45)),
                    mean_object_bytes=float(rng.uniform(3_000, 90_000)),
                    spread_us=float(rng.uniform(8_000, 90_000)),
                )
            )
            cursor += float(rng.uniform(60_000, 280_000))
        return cls(
            name=name,
            waves=tuple(waves),
            keepalive_period_us=float(rng.uniform(90_000, 400_000)),
        )

    def generate_visit(self, rng: np.random.Generator) -> list[PacketEvent]:
        """One page load: jittered packet events drawn from the signature."""
        events: list[PacketEvent] = []
        for wave in self.waves:
            wave_start = wave.start_us * (
                1.0 + rng.normal(0.0, self.visit_time_jitter)
            )
            for _ in range(wave.objects):
                if rng.random() < self.object_drop_probability:
                    continue  # cached or deferred object
                size = max(
                    400.0,
                    wave.mean_object_bytes
                    * (1.0 + rng.normal(0.0, self.visit_size_jitter)),
                )
                offset = rng.uniform(0.0, wave.spread_us)
                self._emit_object(events, wave_start + offset, size, rng)
        # Keep-alive / telemetry packets through the whole trace.
        t = rng.uniform(0.0, self.keepalive_period_us)
        while t < self.total_duration_us:
            events.append(PacketEvent(time_us=t, size_bytes=MTU_BYTES))
            t += self.keepalive_period_us * rng.uniform(0.8, 1.2)
        events.sort(key=lambda e: e.time_us)
        return [e for e in events if e.time_us < self.total_duration_us]

    @staticmethod
    def _emit_object(
        events: list[PacketEvent],
        start_us: float,
        size_bytes: float,
        rng: np.random.Generator,
    ) -> None:
        """Split one HTTP object into MTU packets pacing at link speed."""
        remaining = int(size_bytes)
        t = max(start_us, 0.0)
        while remaining > 0:
            payload = min(remaining, MTU_BYTES)
            events.append(PacketEvent(time_us=t, size_bytes=payload))
            remaining -= payload
            t += float(rng.uniform(8.0, 30.0))  # ~0.5-1.5 Gbit/s pacing


def top_sites(count: int = 100) -> list[WebsiteProfile]:
    """The first *count* profiles of the canonical top-100 list."""
    if not 1 <= count <= len(TOP_100_SITES):
        raise ValueError(f"count must be in [1, {len(TOP_100_SITES)}], got {count}")
    return [WebsiteProfile.from_name(name) for name in TOP_100_SITES[:count]]
