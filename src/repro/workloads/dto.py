"""DSA Transparent Offload (DTO).

Intel's DTO library uses the runtime linker to intercept the standard
memory functions of *unmodified* applications and offload calls above a
size threshold (``DTO_MIN_BYTES``) to DSA; smaller calls stay on the CPU.
The paper's keystroke and LLM attacks observe exactly these offloaded
calls, and its Fig. 12 filter drops events below the DTO byte threshold.

:class:`DtoRuntime` is that shim for one victim process: ``memcpy`` /
``memset`` / ``memcmp`` route to the process's DSA portal when large
enough.  Submissions are asynchronous with bounded retry on a full queue
(the behavior that makes victims visible to the SWQ primitive without
hanging them).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsa.descriptor import Descriptor, make_memcmp, make_memcpy
from repro.dsa.opcodes import Opcode
from repro.virt.process import GuestProcess

#: Default offload threshold (bytes); calls below it run on the CPU.
DTO_MIN_BYTES = 8192

#: Cycles per byte for the CPU fallback path (~60 GB/s single-core copy).
CPU_CYCLES_PER_BYTE = 1.0 / 30.0

#: Fixed CPU cost of a small mem* call.
CPU_CALL_CYCLES = 120


@dataclass
class DtoStats:
    """What the shim did."""

    offloaded_calls: int = 0
    offloaded_bytes: int = 0
    cpu_calls: int = 0
    cpu_bytes: int = 0
    dropped_submissions: int = 0
    offload_timestamps: list[int] = field(default_factory=list)


class DtoRuntime:
    """The transparent-offload shim of one victim process.

    Parameters
    ----------
    process:
        The victim (must have opened *wq_id*).
    wq_id:
        The work queue DTO submits through.
    min_bytes:
        Offload threshold; the real library reads it from
        ``DTO_MIN_BYTES`` in the environment.
    retries:
        How many times a full-queue submission is retried before the
        shim falls back to the CPU path.
    """

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int = 0,
        min_bytes: int = DTO_MIN_BYTES,
        retries: int = 2,
        retry_backoff_cycles: int = 1500,
    ) -> None:
        if min_bytes < 1:
            raise ValueError("min_bytes must be positive")
        self.process = process
        self.portal = process.portal(wq_id)
        self.min_bytes = min_bytes
        self.retries = retries
        self.retry_backoff_cycles = retry_backoff_cycles
        self.stats = DtoStats()
        self._comp = process.comp_record()

    # ------------------------------------------------------------------
    # Intercepted entry points
    # ------------------------------------------------------------------
    def memcpy(self, dst: int, src: int, size: int) -> None:
        """``memcpy`` — offloaded to a MEMMOVE descriptor when large."""
        offloaded = size >= self.min_bytes and (
            self._offload(
                make_memcpy(self.process.pasid, src, dst, size, self._comp), size
            )
            is not None
        )
        if not offloaded:
            self._cpu_fallback(size)
            self.process.space.write(dst, self.process.space.read(src, size))

    def memset(self, dst: int, value: int, size: int) -> None:
        """``memset`` — offloaded to a FILL descriptor when large."""
        offloaded = False
        if size >= self.min_bytes:
            descriptor = Descriptor(
                opcode=Opcode.FILL,
                pasid=self.process.pasid,
                src=value & 0xFF,
                dst=dst,
                size=size,
                completion_addr=self._comp,
            )
            offloaded = self._offload(descriptor, size) is not None
        if not offloaded:
            self._cpu_fallback(size)
            self.process.space.write(dst, bytes([value & 0xFF]) * size)

    def memcmp(self, a: int, b: int, size: int) -> int:
        """``memcmp`` — offloaded to a COMPVAL descriptor when large.

        Returns 0 on equality, 1 otherwise (sign is not modeled).
        """
        if size >= self.min_bytes:
            descriptor = make_memcmp(self.process.pasid, a, b, size, self._comp)
            ticket = self._offload(descriptor, size, wait=True)
            if ticket is not None and ticket.record is not None:
                return int(ticket.record.result)
        self._cpu_fallback(size)
        return 0 if self.process.read(a, size) == self.process.read(b, size) else 1

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _offload(self, descriptor: Descriptor, size: int, wait: bool = False):
        clock = self.portal.clock
        ticket = None
        for attempt in range(self.retries + 1):
            if not self.portal.enqcmd(descriptor):
                ticket = self.portal.last_ticket
                break
            if attempt < self.retries:
                clock.advance(self.retry_backoff_cycles)
                self.portal.device.advance_to(clock.now)
        if ticket is None:
            # All retries hit a full queue; the caller degrades to CPU.
            self.stats.dropped_submissions += 1
            return None
        self.stats.offloaded_calls += 1
        self.stats.offloaded_bytes += size
        self.stats.offload_timestamps.append(clock.now)
        if wait:
            self.portal.wait(ticket)
        return ticket

    def _cpu_fallback(self, size: int) -> None:
        self.stats.cpu_calls += 1
        self.stats.cpu_bytes += size
        self.portal.clock.advance(CPU_CALL_CYCLES + int(size * CPU_CYCLES_PER_BYTE))
