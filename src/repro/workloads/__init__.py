"""Victim workloads.

Everything the paper attacks, rebuilt on the DSA model:

* :mod:`repro.workloads.dto` — the DSA Transparent Offload runtime that
  intercepts ``mem*`` calls and offloads large ones to DSA.
* :mod:`repro.workloads.vpp` — the VPP/memif packet path (DPDK side).
* :mod:`repro.workloads.websites` — per-site network traffic signatures
  for the top-100 website fingerprinting study.
* :mod:`repro.workloads.ssh` — SSH keystroke sessions whose packet
  handling goes through DTO.
* :mod:`repro.workloads.llm` — LLM inference weight-movement models
  (Table II) for the LLM fingerprinting study.
"""

from repro.workloads.background import BackgroundProfile, BackgroundTenant
from repro.workloads.dto import DTO_MIN_BYTES, DtoRuntime
from repro.workloads.llm import LLM_ZOO, LlmBackend, LlmModel, LlmInferenceWorkload
from repro.workloads.migration import CheckpointMigrator, MemoryDeduplicator
from repro.workloads.ssh import KeystrokeEvent, SshKeystrokeSession
from repro.workloads.vpp import MemifInterface, PacketEvent, VppVictim
from repro.workloads.websites import WebsiteProfile, top_sites

__all__ = [
    "BackgroundProfile",
    "BackgroundTenant",
    "CheckpointMigrator",
    "DTO_MIN_BYTES",
    "DtoRuntime",
    "MemoryDeduplicator",
    "KeystrokeEvent",
    "LLM_ZOO",
    "LlmBackend",
    "LlmInferenceWorkload",
    "LlmModel",
    "MemifInterface",
    "PacketEvent",
    "SshKeystrokeSession",
    "VppVictim",
    "WebsiteProfile",
    "top_sites",
]
