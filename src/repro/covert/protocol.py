"""The time-slicing transmission protocol.

The sender has no backchannel, so both sides agree offline on the bit
window and the preamble length.  The sender transmits a preamble of
consecutive '1' bits; the receiver scans for it, aligns its window
boundaries to the observed edge, and then samples one bit per window.

The sender's submissions carry *scheduling jitter*: the sending VM has no
cycle-accurate timer lock with the receiver, so each bit lands around its
window center with a Gaussian error (``sender_jitter_us``).  This is the
dominant error source — a bit that slips across a boundary is missed in
its own window and pollutes a neighbor, exactly the failure mode that
makes the paper's error rate climb with raw capacity (Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dsa.descriptor import Descriptor
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.hw.units import us_to_cycles
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline


@dataclass(frozen=True)
class CovertConfig:
    """Channel parameters shared by sender and receiver."""

    bit_window_us: float = 42.5
    preamble_ones: int = 12
    sender_jitter_us: float = 11.0
    #: Leading preamble bits sent as multi-pulse bursts (used by the SWQ
    #: channel for origin detection; 0 = all preamble bits are singles).
    preamble_burst_bits: int = 0
    #: Timing jitter of the preamble bits.  The sender can afford to
    #: spin-wait for the short preamble (tight timing) even though its
    #: payload pacing drifts; a loose preamble would poison the
    #: receiver's window-origin lock far beyond its own duration.
    preamble_jitter_us: float = 4.0

    def __post_init__(self) -> None:
        if self.bit_window_us <= 0:
            raise ValueError("bit_window_us must be positive")
        if self.preamble_ones < 1:
            raise ValueError("the preamble needs at least one bit")
        if self.sender_jitter_us < 0:
            raise ValueError("sender_jitter_us cannot be negative")
        if self.preamble_jitter_us < 0:
            raise ValueError("preamble_jitter_us cannot be negative")
        if self.preamble_burst_bits < 0:
            raise ValueError("preamble_burst_bits cannot be negative")
        if self.preamble_burst_bits > self.preamble_ones:
            raise ValueError(
                f"preamble_burst_bits ({self.preamble_burst_bits}) cannot exceed "
                f"preamble_ones ({self.preamble_ones})"
            )

    @property
    def raw_bps(self) -> float:
        """Raw signalling rate implied by the bit window."""
        return 1_000_000.0 / self.bit_window_us


class CovertSender:
    """The sending side (runs in the victim/sender VM).

    Encoding: bit 1 = submit one cheap descriptor near the window center;
    bit 0 = stay idle.  For the DevTLB channel the submission is a noop
    with a completion record (its ``comp`` write evicts the receiver's
    sub-entry); for the SWQ channel a record-less noop suffices (it only
    needs to consume the armed queue slot).
    """

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int,
        config: CovertConfig,
        rng: np.random.Generator,
        evict_devtlb: bool = True,
    ) -> None:
        self.process = process
        self.portal = process.portal(wq_id)
        self.config = config
        self.rng = rng
        self._comp = process.comp_record()
        self._evict_devtlb = evict_devtlb
        self.bits_scheduled = 0

    def _descriptor(self) -> Descriptor:
        if self._evict_devtlb:
            return Descriptor(
                opcode=Opcode.NOOP,
                pasid=self.process.pasid,
                completion_addr=self._comp,
            )
        return Descriptor(
            opcode=Opcode.NOOP, pasid=self.process.pasid, flags=DescriptorFlags.NONE
        )

    def schedule_message(
        self,
        timeline: Timeline,
        payload: np.ndarray,
        start_time: int,
        preamble_pulses: int = 1,
    ) -> np.ndarray:
        """Schedule preamble + *payload* onto *timeline*.

        Bit ``i`` is centered at ``start_time + (i + 0.5) * window`` plus
        jitter.  *preamble_pulses* > 1 spreads that many submissions
        across each preamble window (the SWQ receiver's sensing has
        blind spots, so single preamble pulses could be missed and slip
        the receiver's window origin).  Payload bits are always single
        submissions.  Returns the full bit sequence (preamble + payload).
        """
        window = us_to_cycles(self.config.bit_window_us)
        bits = np.concatenate(
            [np.ones(self.config.preamble_ones, dtype=np.int8), payload.astype(np.int8)]
        )
        descriptor = self._descriptor()
        portal = self.portal
        burst_bits = min(self.config.preamble_burst_bits, self.config.preamble_ones)
        for index, bit in enumerate(bits):
            if not bit:
                continue
            jitter_us = (
                self.config.preamble_jitter_us
                if index < self.config.preamble_ones
                else self.config.sender_jitter_us
            )
            jitter = self.rng.normal(0.0, us_to_cycles(jitter_us))
            if index < burst_bits and preamble_pulses > 1:
                # Compress the burst into the window's first ~0.6: the
                # receiver localizes its window origin from the first
                # caught pulse, and a tight spread bounds that error
                # inside the half-window ambiguity basin.
                offsets = [
                    0.7 * (p + 1) / (preamble_pulses + 1)
                    for p in range(preamble_pulses)
                ]
            else:
                offsets = [0.5]
            for offset in offsets:
                when = start_time + int((index + offset) * window + jitter)
                timeline.schedule_at(
                    max(when, start_time), lambda: portal.enqcmd(descriptor)
                )
            self.bits_scheduled += 1
        return bits
