"""Adaptive covert-channel rate selection.

Fig. 9 is a manual sweep; a deployed channel tunes itself.  The sender
and receiver agree on a short probe payload; the attacker pair walks the
rate ladder, measures the true capacity at each rung, and settles on the
best — the automated version of reading the Fig. 9 peak off the plot.

Capacity is unimodal in the bit window (longer windows waste time,
shorter ones drown in jitter), so a golden-section-style ladder descent
converges in a handful of probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.covert.channel import CovertChannelResult
from repro.covert.framing import FRAME_BITS


@dataclass(frozen=True)
class RateProbe:
    """One ladder measurement."""

    bit_window_us: float
    true_bps: float
    error_rate: float


@dataclass(frozen=True)
class AdaptiveResult:
    """The chosen operating point plus the probe history."""

    best: RateProbe
    probes: tuple[RateProbe, ...]

    @property
    def probes_spent(self) -> int:
        """How many trial transmissions the search used."""
        return len(self.probes)


#: A channel evaluation callback: bit window (us) -> channel result.
ChannelProbe = Callable[[float], CovertChannelResult]


def find_best_rate(
    probe: ChannelProbe,
    window_ladder: tuple[float, ...] = (150.0, 100.0, 65.0, 42.5, 30.0, 22.0),
    stop_after_drops: int = 2,
) -> AdaptiveResult:
    """Walk *window_ladder* from slow to fast; stop when capacity sags.

    The ladder is descended (raw rate ascends); once true capacity has
    dropped for *stop_after_drops* consecutive rungs, the search stops —
    the error knee has been passed.
    """
    if not window_ladder:
        raise ValueError("the window ladder cannot be empty")
    if stop_after_drops < 1:
        raise ValueError("stop_after_drops must be at least 1")
    history: list[RateProbe] = []
    best: RateProbe | None = None
    drops = 0
    for window in window_ladder:
        result = probe(window)
        point = RateProbe(
            bit_window_us=window,
            true_bps=result.true_bps,
            error_rate=result.error_rate,
        )
        history.append(point)
        if best is None or point.true_bps > best.true_bps:
            best = point
            drops = 0
        else:
            drops += 1
            if drops >= stop_after_drops:
                break
    assert best is not None
    return AdaptiveResult(best=best, probes=tuple(history))


def choose_redundancy(
    error_rate: float,
    target_frame_rate: float = 0.9,
    max_redundancy: int = 8,
) -> int:
    """Pick the frame repetition count for a measured bit *error_rate*.

    With no backchannel the sender must over-provision up front: assuming
    independent bit errors, a single frame survives with probability
    ``(1 - e) ** FRAME_BITS``, and one of ``r`` repeated copies survives
    with ``1 - (1 - p_ok) ** r``.  Returns the smallest ``r`` meeting
    *target_frame_rate*, capped at *max_redundancy* (the majority-vote
    fallback picks up some of the shortfall beyond the cap).
    """
    if not 0.0 <= error_rate <= 1.0:
        raise ValueError(f"error_rate must be in [0, 1], got {error_rate}")
    if not 0.0 < target_frame_rate < 1.0:
        raise ValueError(
            f"target_frame_rate must be in (0, 1), got {target_frame_rate}"
        )
    if max_redundancy < 1:
        raise ValueError(f"max_redundancy must be >= 1, got {max_redundancy}")
    p_ok = (1.0 - error_rate) ** FRAME_BITS
    if p_ok <= 0.0:
        return max_redundancy
    for redundancy in range(1, max_redundancy + 1):
        if 1.0 - (1.0 - p_ok) ** redundancy >= target_frame_rate:
            return redundancy
    return max_redundancy
