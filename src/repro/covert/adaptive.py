"""Adaptive covert-channel rate selection.

Fig. 9 is a manual sweep; a deployed channel tunes itself.  The sender
and receiver agree on a short probe payload; the attacker pair walks the
rate ladder, measures the true capacity at each rung, and settles on the
best — the automated version of reading the Fig. 9 peak off the plot.

Capacity is unimodal in the bit window (longer windows waste time,
shorter ones drown in jitter), so a golden-section-style ladder descent
converges in a handful of probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.covert.channel import CovertChannelResult


@dataclass(frozen=True)
class RateProbe:
    """One ladder measurement."""

    bit_window_us: float
    true_bps: float
    error_rate: float


@dataclass(frozen=True)
class AdaptiveResult:
    """The chosen operating point plus the probe history."""

    best: RateProbe
    probes: tuple[RateProbe, ...]

    @property
    def probes_spent(self) -> int:
        """How many trial transmissions the search used."""
        return len(self.probes)


#: A channel evaluation callback: bit window (us) -> channel result.
ChannelProbe = Callable[[float], CovertChannelResult]


def find_best_rate(
    probe: ChannelProbe,
    window_ladder: tuple[float, ...] = (150.0, 100.0, 65.0, 42.5, 30.0, 22.0),
    stop_after_drops: int = 2,
) -> AdaptiveResult:
    """Walk *window_ladder* from slow to fast; stop when capacity sags.

    The ladder is descended (raw rate ascends); once true capacity has
    dropped for *stop_after_drops* consecutive rungs, the search stops —
    the error knee has been passed.
    """
    if not window_ladder:
        raise ValueError("the window ladder cannot be empty")
    if stop_after_drops < 1:
        raise ValueError("stop_after_drops must be at least 1")
    history: list[RateProbe] = []
    best: RateProbe | None = None
    drops = 0
    for window in window_ladder:
        result = probe(window)
        point = RateProbe(
            bit_window_us=window,
            true_bps=result.true_bps,
            error_rate=result.error_rate,
        )
        history.append(point)
        if best is None or point.true_bps > best.true_bps:
            best = point
            drops = 0
        else:
            drops += 1
            if drops >= stop_after_drops:
                break
    assert best is not None
    return AdaptiveResult(best=best, probes=tuple(history))
