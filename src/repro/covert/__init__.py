"""The cross-VM covert channel (Section VI-A, Fig. 9).

Sender and receiver live in different VMs with no legitimate channel.
Both primitives carry the same asynchronous time-slicing protocol: a
preamble of consecutive '1' bits synchronizes the two sides, then each
bit window encodes 1 as "submit a descriptor" (DevTLB eviction / SWQ slot
consumption) and 0 as silence.
"""

from repro.covert.adaptive import choose_redundancy, find_best_rate
from repro.covert.channel import (
    CovertChannelResult,
    run_devtlb_covert_channel,
    run_devtlb_framed_message,
    run_swq_covert_channel,
)
from repro.covert.framing import (
    DecodeReport,
    Frame,
    decode_frames,
    frame_message,
    goodput_bps,
)
from repro.covert.metrics import (
    binary_entropy,
    bit_error_rate,
    random_bits,
    true_capacity,
)
from repro.covert.protocol import CovertConfig, CovertSender

__all__ = [
    "CovertChannelResult",
    "CovertConfig",
    "CovertSender",
    "DecodeReport",
    "Frame",
    "choose_redundancy",
    "decode_frames",
    "find_best_rate",
    "frame_message",
    "goodput_bps",
    "binary_entropy",
    "bit_error_rate",
    "random_bits",
    "run_devtlb_covert_channel",
    "run_devtlb_framed_message",
    "run_swq_covert_channel",
    "true_capacity",
]
