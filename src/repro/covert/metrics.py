"""Covert-channel quality metrics.

The paper reports **raw capacity** (signalled bits per second), the **bit
error rate**, and the **true capacity** — the Shannon capacity of the
equivalent binary symmetric channel,
``C = raw * (1 - H2(p))`` with ``H2`` the binary entropy of the error
probability.  Fig. 9 plots true capacity and error rate against a raw
capacity sweep.
"""

from __future__ import annotations

import numpy as np


def binary_entropy(p: float) -> float:
    """``H2(p)`` in bits; 0 at p in {0, 1}, 1 at p = 0.5."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must be in [0, 1], got {p}")
    if p in (0.0, 1.0):
        return 0.0
    return float(-p * np.log2(p) - (1 - p) * np.log2(1 - p))


def bit_error_rate(sent: np.ndarray, received: np.ndarray) -> float:
    """Fraction of differing bits (arrays must be equal length)."""
    sent = np.asarray(sent, dtype=np.int8)
    received = np.asarray(received, dtype=np.int8)
    if sent.shape != received.shape:
        raise ValueError(
            f"bit arrays differ in shape: {sent.shape} vs {received.shape}"
        )
    if sent.size == 0:
        raise ValueError("cannot compute BER of zero bits")
    return float((sent != received).mean())


def true_capacity(raw_bps: float, error_rate: float) -> float:
    """Shannon capacity of the binary symmetric channel in bits/second.

    An error rate above 0.5 is clamped (the receiver would invert), which
    keeps the metric monotone in channel quality.
    """
    if raw_bps < 0:
        raise ValueError("raw capacity must be non-negative")
    p = min(max(error_rate, 0.0), 1.0)
    if p > 0.5:
        p = 1.0 - p
    return raw_bps * (1.0 - binary_entropy(p))


def random_bits(rng: np.random.Generator, count: int) -> np.ndarray:
    """A random payload (the evaluation transmits random bits)."""
    if count < 1:
        raise ValueError("payload must contain at least one bit")
    return rng.integers(0, 2, size=count).astype(np.int8)
