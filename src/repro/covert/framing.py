"""Reliable message framing on top of the raw bit channels.

The Fig. 9 channels move raw bits; a practical exfiltration tool needs to
know *which* bits survived.  This module adds the classic fix: split the
message into fixed-size frames, each carrying a 4-bit sequence number and
a CRC-8, so the receiver can validate frames independently and report
goodput (accepted payload bits per second) instead of raw capacity.

This mirrors how covert-channel artifacts ship data in practice and makes
the library usable end-to-end: ``send_message`` / ``decode_frames`` move
real bytes across the VM boundary with integrity checking.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: CRC-8 (poly 0x07, init 0) over the header+payload bits.
CRC_POLYNOMIAL = 0x07

#: Payload bits per frame.
FRAME_PAYLOAD_BITS = 32

#: Header: 4-bit sequence number.
FRAME_HEADER_BITS = 4

#: Full frame: header + payload + CRC-8.
FRAME_BITS = FRAME_HEADER_BITS + FRAME_PAYLOAD_BITS + 8


def crc8(bits: np.ndarray) -> int:
    """CRC-8 of a bit array (MSB-first)."""
    register = 0
    for bit in np.asarray(bits, dtype=np.int8):
        register ^= int(bit) << 7
        register <<= 1
        if register & 0x100:
            register ^= (CRC_POLYNOMIAL << 1) | 0x100
        register &= 0xFF
    return register


def bytes_to_bits(data: bytes) -> np.ndarray:
    """MSB-first bit expansion."""
    if not data:
        raise ValueError("cannot frame an empty message")
    return np.unpackbits(np.frombuffer(data, dtype=np.uint8)).astype(np.int8)


def bits_to_bytes(bits: np.ndarray) -> bytes:
    """Inverse of :func:`bytes_to_bits` (trailing partial byte dropped)."""
    usable = len(bits) - len(bits) % 8
    if usable <= 0:
        return b""
    return np.packbits(np.asarray(bits[:usable], dtype=np.uint8)).tobytes()


@dataclass(frozen=True)
class Frame:
    """One framed payload chunk."""

    sequence: int
    payload: np.ndarray  # FRAME_PAYLOAD_BITS bits

    def encode(self) -> np.ndarray:
        """Header + payload + CRC as a bit array."""
        header = np.array(
            [(self.sequence >> shift) & 1 for shift in range(FRAME_HEADER_BITS - 1, -1, -1)],
            dtype=np.int8,
        )
        body = np.concatenate([header, self.payload.astype(np.int8)])
        crc = crc8(body)
        crc_bits = np.array(
            [(crc >> shift) & 1 for shift in range(7, -1, -1)], dtype=np.int8
        )
        return np.concatenate([body, crc_bits])

    @classmethod
    def decode(cls, bits: np.ndarray) -> "Frame | None":
        """Parse one frame; ``None`` when the CRC rejects it."""
        bits = np.asarray(bits, dtype=np.int8)
        if bits.size != FRAME_BITS:
            raise ValueError(f"a frame is {FRAME_BITS} bits, got {bits.size}")
        body = bits[: FRAME_HEADER_BITS + FRAME_PAYLOAD_BITS]
        crc_bits = bits[FRAME_HEADER_BITS + FRAME_PAYLOAD_BITS :]
        crc = 0
        for bit in crc_bits:
            crc = (crc << 1) | int(bit)
        if crc8(body) != crc:
            return None
        sequence = 0
        for bit in body[:FRAME_HEADER_BITS]:
            sequence = (sequence << 1) | int(bit)
        return cls(sequence=sequence, payload=body[FRAME_HEADER_BITS:].copy())


def frame_message(data: bytes, redundancy: int = 1) -> np.ndarray:
    """Frame *data* into a transmit-ready bit stream.

    With *redundancy* > 1 each encoded frame is repeated that many times
    consecutively — the sender's only loss-tolerance tool, since the
    channel has **no backchannel** and retransmission-on-NAK is
    impossible.  The receiver takes the first CRC-valid copy, or falls
    back to a bitwise majority vote across copies.
    """
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    bits = bytes_to_bits(data)
    pad = (-len(bits)) % FRAME_PAYLOAD_BITS
    bits = np.concatenate([bits, np.zeros(pad, dtype=np.int8)])
    frames = []
    for index in range(0, len(bits), FRAME_PAYLOAD_BITS):
        encoded = Frame(
            sequence=(index // FRAME_PAYLOAD_BITS) & 0xF,
            payload=bits[index : index + FRAME_PAYLOAD_BITS],
        ).encode()
        frames.extend([encoded] * redundancy)
    return np.concatenate(frames)


@dataclass(frozen=True)
class DecodeReport:
    """Outcome of decoding a received bit stream.

    ``frames_accepted`` counts every frame that produced valid payload,
    including the ``frames_recovered`` subset that needed the
    majority-vote fallback (no single copy survived intact).
    """

    data: bytes
    frames_total: int
    frames_accepted: int
    frames_rejected: int
    frames_recovered: int = 0

    @property
    def frame_acceptance_rate(self) -> float:
        """Fraction of frames whose CRC validated."""
        return self.frames_accepted / self.frames_total if self.frames_total else 0.0


def decode_frames(bits: np.ndarray, redundancy: int = 1) -> DecodeReport:
    """Decode a received stream back into bytes.

    *redundancy* must match the sender's :func:`frame_message` setting.
    Per logical frame, the first copy whose CRC validates (with the
    expected sequence number) wins; failing that, a bitwise majority
    vote across all copies is CRC-checked (counted in
    ``frames_recovered``).  Rejected frames are replaced with zero bits,
    so the output length is stable.
    """
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    bits = np.asarray(bits, dtype=np.int8)
    total = len(bits) // (FRAME_BITS * redundancy)
    accepted = 0
    recovered = 0
    payload_chunks = []
    for index in range(total):
        base = index * redundancy * FRAME_BITS
        copies = [
            bits[base + c * FRAME_BITS : base + (c + 1) * FRAME_BITS]
            for c in range(redundancy)
        ]
        frame = None
        for copy in copies:
            candidate = Frame.decode(copy)
            if candidate is not None and candidate.sequence == index & 0xF:
                frame = candidate
                break
        if frame is None and redundancy > 1:
            votes = np.stack(copies).sum(axis=0)
            majority = (votes * 2 >= redundancy).astype(np.int8)
            candidate = Frame.decode(majority)
            if candidate is not None and candidate.sequence == index & 0xF:
                frame = candidate
                recovered += 1
        if frame is not None:
            payload_chunks.append(frame.payload)
            accepted += 1
        else:
            payload_chunks.append(np.zeros(FRAME_PAYLOAD_BITS, dtype=np.int8))
    payload = (
        np.concatenate(payload_chunks) if payload_chunks else np.zeros(0, dtype=np.int8)
    )
    return DecodeReport(
        data=bits_to_bytes(payload),
        frames_total=total,
        frames_accepted=accepted,
        frames_rejected=total - accepted,
        frames_recovered=recovered,
    )


def goodput_bps(report: DecodeReport, raw_bps: float, redundancy: int = 1) -> float:
    """Accepted payload bits per second given the channel's raw rate."""
    if raw_bps < 0:
        raise ValueError("raw_bps must be non-negative")
    if redundancy < 1:
        raise ValueError(f"redundancy must be >= 1, got {redundancy}")
    efficiency = FRAME_PAYLOAD_BITS / (FRAME_BITS * redundancy)
    return raw_bps * efficiency * report.frame_acceptance_rate
