"""End-to-end covert channels over the two primitives.

Receivers synchronize on the preamble and then sample one bit per window.
Everything here runs on the shared :class:`~repro.virt.scheduler.Timeline`,
so bit errors are *emergent* — a jittered sender submission really does
land in the wrong window and really does evict/occupy the wrong slot —
rather than drawn from an error model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.covert.framing import DecodeReport, decode_frames, frame_message
from repro.covert.metrics import bit_error_rate, random_bits, true_capacity
from repro.covert.protocol import CovertConfig, CovertSender
from repro.errors import ConfigurationError
from repro.hw.units import DEFAULT_TSC_HZ, us_to_cycles
from repro.virt.scheduler import Timeline
from repro.virt.system import AttackTopology, CloudSystem


@dataclass(frozen=True)
class CovertChannelResult:
    """Outcome of one covert transmission."""

    sent: np.ndarray
    received: np.ndarray
    raw_bps: float
    error_rate: float
    true_bps: float

    @property
    def bits(self) -> int:
        """Payload length."""
        return int(self.sent.size)


class DevTlbCovertReceiver:
    """Receiver for the ``DSA_DevTLB`` channel."""

    def __init__(self, attack: DsaDevTlbAttack, config: CovertConfig) -> None:
        self.attack = attack
        self.config = config

    def synchronize(
        self, timeline: Timeline, max_windows: int = 400, min_hits: int | None = None
    ) -> int:
        """Scan for the preamble; return the estimated message start time.

        Probes at a quarter-window period, then refines the phase estimate
        by averaging over every preamble hit (reducing the single-bit
        jitter error by roughly the square root of the preamble length).
        *min_hits* overrides how many preamble hits are demanded before a
        lock is accepted (default: all but two of the preamble bits) —
        lower it when submission loss is expected to thin the preamble.
        """
        if min_hits is None:
            min_hits = max(self.config.preamble_ones - 2, 2)
        elif min_hits < 2:
            raise ConfigurationError(f"min_hits must be >= 2, got {min_hits}")
        window = us_to_cycles(self.config.bit_window_us)
        scan = max(window // 6, 1)
        clock = timeline.clock
        # Scanning runs for hundreds of probes, so a rare hit-latency
        # noise spike could fake a preamble edge and shift the whole lock
        # by a window.  A raised threshold rejects spikes (a true miss
        # costs an ATS round trip, far above any spike on a hit).
        sync_threshold = self.attack.threshold + 150
        self.attack.prime()
        deadline = clock.now + max_windows * window
        while clock.now < deadline:
            first_hit = None
            while clock.now < deadline:
                timeline.idle_until(clock.now + scan)
                if self.attack.probe().latency_cycles >= sync_threshold:
                    first_hit = clock.now
                    break
            if first_hit is None:
                break

            # Collect the remaining preamble hits to refine the phase.
            centers = [first_hit - scan // 2]
            preamble_end_guess = first_hit + (self.config.preamble_ones - 0.5) * window
            while clock.now < preamble_end_guess - scan:
                timeline.idle_until(clock.now + scan)
                if self.attack.probe().latency_cycles >= sync_threshold:
                    centers.append(clock.now - scan // 2)

            # A lone noise spike is not a preamble: demand hits in most
            # of the expected windows before accepting the lock.
            if len(centers) >= min_hits:
                return self._align_to_preamble(
                    np.asarray(centers, dtype=np.float64), window
                )
        raise ConfigurationError("no preamble detected during synchronization")

    @staticmethod
    def _align_to_preamble(centers: np.ndarray, window: int) -> int:
        """Fit window phase *and* origin to the observed preamble hits.

        Phase: two median passes over the per-hit start estimates (the
        median is immune to single hits whose window index got
        mis-assigned by jitter near half a window).

        Origin: a stray noise spike before the preamble would anchor the
        whole fit one window early, so the origin is re-anchored to the
        start of the longest (single-gap-tolerant) run of hit windows —
        which is the preamble itself, since spikes are isolated.
        """
        first = centers[0]
        estimate = float(
            np.median(centers - (np.round((centers - first) / window) + 0.5) * window)
        )
        for _ in range(2):
            k = np.round((centers - estimate) / window - 0.5)
            estimate = float(np.median(centers - (k + 0.5) * window))

        indices = np.round((centers - estimate) / window - 0.5).astype(int)
        hit_windows = sorted(set(indices.tolist()))
        best_start = hit_windows[0]
        best_length = 1
        run_start = hit_windows[0]
        run_length = 1
        for previous, current in zip(hit_windows, hit_windows[1:]):
            if current - previous <= 2:  # tolerate one slipped bit
                run_length += current - previous
            else:
                run_start = current
                run_length = 1
            if run_length > best_length:
                best_length = run_length
                best_start = run_start
        return int(estimate + best_start * window)

    def receive(self, timeline: Timeline, start_time: int, nbits: int) -> np.ndarray:
        """Sample *nbits* payload bits, one probe per window boundary."""
        window = us_to_cycles(self.config.bit_window_us)
        payload_start = start_time + self.config.preamble_ones * window
        # Re-prime at the payload boundary (discard the reading).
        timeline.idle_until(payload_start)
        self.attack.probe()
        bits = np.zeros(nbits, dtype=np.int8)
        for i in range(nbits):
            timeline.idle_until(payload_start + (i + 1) * window)
            bits[i] = int(self.attack.probe().evicted)
        return bits


class SwqCovertReceiver:
    """Receiver for the ``DSA_SWQ`` channel (timer-free decoding).

    Each bit window is one congest-idle-probe round.  The anchor is sized
    to ~80 % of the window so the drain completes before the next window
    starts; the congest and drain phases are the channel's blind spots,
    which, together with the coarse sender/receiver alignment that a
    timer-free channel affords, dominates its error rate.
    """

    #: Fraction of the bit window covered by the anchor's execution.
    ANCHOR_FILL = 0.82
    #: Idle span as a fraction of the window (probe fires at its end) —
    #: must end before the anchor completes.  The idle span is also the
    #: sensing coverage: sender pulses outside it are missed, which is
    #: the SWQ channel's dominant error source (its bit error rate is
    #: ~3x the DevTLB channel's in the paper).
    IDLE_SPAN = 0.5

    def __init__(
        self,
        attack: DsaSwqAttack,
        config: CovertConfig,
        idle_span: float | None = None,
    ) -> None:
        self.attack = attack
        self.config = config
        window = us_to_cycles(config.bit_window_us)
        # Estimated cost of the congest burst (enqcmds at ~700 cycles).
        self._congest_cycles = (attack.wq_size - 1) * 730
        self._idle_cycles = int(window * (idle_span or self.IDLE_SPAN))
        # Start each round so the sensing span [congest_end, probe] is
        # centered on the sender's bit center (+0.5 w).
        sensing_mid = self._congest_cycles + self._idle_cycles // 2
        self._round_lead = int(0.5 * window) - sensing_mid

    @staticmethod
    def anchor_bytes_for_window(window_us: float, fill: float = ANCHOR_FILL) -> int:
        """Anchor transfer size whose execution spans ``fill * window``."""
        cycles = us_to_cycles(window_us) * fill
        bytes_per_cycle = 15.0  # two streams at 1/30 cycle/byte each
        return max(int(cycles * bytes_per_cycle), 4096)

    def synchronize(self, timeline: Timeline, max_windows: int = 400) -> int:
        """Two-stage lock onto the SWQ preamble; return the message start.

        **Stage 1 (origin):** free-running wide rounds until a detection
        follows a quiet round.  The leading preamble bits are multi-pulse
        bursts, so the first round overlapping the preamble is guaranteed
        to detect — the quiet-to-detecting edge pins bit 0's window to
        within half a sensing span.

        **Stage 2 (phase):** during the single-pulse tail of the
        preamble, *narrow* rounds (short anchor, short idle) localize
        each detected pulse to a small span; a two-pass median fit over
        those detections refines the window phase.
        """
        window = us_to_cycles(self.config.bit_window_us)
        clock = timeline.clock
        deadline = clock.now + max_windows * window
        narrow_idle = int(window * 0.30)
        narrow_anchor = SwqCovertReceiver.anchor_bytes_for_window(
            self.config.bit_window_us, fill=0.40
        )

        # Stage 1: coarse origin.  Narrow rounds localize the first
        # caught burst pulse to a ~0.3-window span; the burst pulses sit
        # in the window's first ~0.6, so "sensing mid minus 0.35 window"
        # estimates the window start within the half-window ambiguity
        # basin the stage-2 fit needs.
        quiet_rounds = 0
        coarse: int | None = None
        while clock.now < deadline:
            round_start = clock.now
            result = self.attack.run_round(
                idle_cycles=narrow_idle, timeline=timeline, anchor_bytes=narrow_anchor
            )
            if result.victim_detected and quiet_rounds >= 1:
                mid = (round_start + self._congest_cycles + result.probe_time) / 2
                coarse = int(mid - 0.35 * window)
                break
            quiet_rounds = 0 if result.victim_detected else quiet_rounds + 1
        if coarse is None:
            raise ConfigurationError("no preamble detected during synchronization")

        # Stage 2: narrow rounds across the single-pulse preamble tail.
        refine_deadline = coarse + int((self.config.preamble_ones - 0.5) * window)
        mids: list[float] = []
        while clock.now < refine_deadline:
            round_start = clock.now
            result = self.attack.run_round(
                idle_cycles=narrow_idle, timeline=timeline, anchor_bytes=narrow_anchor
            )
            if result.victim_detected:
                mids.append(
                    (round_start + self._congest_cycles + result.probe_time) / 2
                )
        if not mids:
            return coarse

        centers = np.asarray(mids, dtype=np.float64)
        estimate = float(coarse)
        for _ in range(2):
            k = np.round((centers - estimate) / window - 0.5)
            estimate = float(np.median(centers - (k + 0.5) * window))
        # The coarse origin is accurate to well under half a window, so a
        # fit that wandered further slipped a window index: clamp.
        limit = 0.55 * window
        estimate = min(max(estimate, coarse - limit), coarse + limit)
        return int(estimate)

    def receive(self, timeline: Timeline, start_time: int, nbits: int) -> np.ndarray:
        """Sample *nbits* payload bits, one round per window."""
        window = us_to_cycles(self.config.bit_window_us)
        payload_start = start_time + self.config.preamble_ones * window
        timeline.idle_until(payload_start)
        bits = np.zeros(nbits, dtype=np.int8)
        for i in range(nbits):
            boundary = payload_start + i * window
            timeline.idle_until(boundary + self._round_lead)
            result = self.attack.run_round(
                idle_cycles=self._idle_cycles, timeline=timeline
            )
            bits[i] = int(result.victim_detected)
        return bits


def _result(
    sent: np.ndarray, received: np.ndarray, config: CovertConfig
) -> CovertChannelResult:
    error = bit_error_rate(sent, received)
    raw = config.raw_bps
    return CovertChannelResult(
        sent=sent,
        received=received,
        raw_bps=raw,
        error_rate=error,
        true_bps=true_capacity(raw, error),
    )


def _devtlb_channel_parts(
    config: CovertConfig,
    seed: int,
    system: CloudSystem | None,
    probe_timeout_cycles: int | None,
) -> tuple[CloudSystem, CovertSender, DevTlbCovertReceiver]:
    """Build the system/sender/receiver triple for the DevTLB channel."""
    if system is None:
        system = CloudSystem(seed=seed)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    attack = DsaDevTlbAttack(
        handles.attacker,
        wq_id=handles.attacker_wq,
        probe_timeout_cycles=probe_timeout_cycles,
    )
    attack.calibrate(samples=60)
    sender = CovertSender(
        handles.victim, handles.victim_wq, config, system.rng, evict_devtlb=True
    )
    receiver = DevTlbCovertReceiver(attack, config)
    return system, sender, receiver


def run_devtlb_covert_channel(
    payload_bits: int = 512,
    config: CovertConfig | None = None,
    seed: int = 2026,
    system: CloudSystem | None = None,
    probe_timeout_cycles: int | None = None,
) -> CovertChannelResult:
    """Transmit a random payload over the DevTLB channel and score it.

    *probe_timeout_cycles* bounds each receiver probe's completion poll;
    set it (to roughly a third of the bit window) when the run injects
    submission loss, so a dropped probe is retried inside its own window.
    """
    config = config or CovertConfig()
    system, sender, receiver = _devtlb_channel_parts(
        config, seed, system, probe_timeout_cycles
    )
    payload = random_bits(system.rng, payload_bits)
    start = system.clock.now + us_to_cycles(5 * config.bit_window_us)
    sender.schedule_message(system.timeline, payload, start)
    estimated_start = receiver.synchronize(system.timeline)
    received = receiver.receive(system.timeline, estimated_start, payload_bits)
    return _result(payload, received, config)


def run_devtlb_framed_message(
    data: bytes,
    config: CovertConfig | None = None,
    seed: int = 2026,
    system: CloudSystem | None = None,
    redundancy: int = 1,
    probe_timeout_cycles: int | None = None,
) -> tuple[DecodeReport, CovertChannelResult]:
    """Move real bytes across the DevTLB channel with loss-tolerant framing.

    *data* is framed (sequence number + CRC-8 per frame, repeated
    *redundancy* times — see :func:`~repro.covert.framing.frame_message`),
    transmitted, and decoded.  Returns the decode report and the raw
    channel result; ``report.data[:len(data)]`` recovers the message when
    every frame survived.
    """
    config = config or CovertConfig()
    system, sender, receiver = _devtlb_channel_parts(
        config, seed, system, probe_timeout_cycles
    )
    payload = frame_message(data, redundancy=redundancy)
    start = system.clock.now + us_to_cycles(5 * config.bit_window_us)
    sender.schedule_message(system.timeline, payload, start)
    estimated_start = receiver.synchronize(system.timeline)
    received = receiver.receive(system.timeline, estimated_start, len(payload))
    report = decode_frames(received, redundancy=redundancy)
    return report, _result(payload, received, config)


def run_swq_covert_channel(
    payload_bits: int = 256,
    config: CovertConfig | None = None,
    seed: int = 2026,
    system: CloudSystem | None = None,
    wq_size: int = 16,
) -> CovertChannelResult:
    """Transmit a random payload over the SWQ channel and score it."""
    config = config or CovertConfig(
        bit_window_us=110.0,
        sender_jitter_us=27.5,
        preamble_ones=16,
        preamble_burst_bits=4,
    )
    if system is None:
        system = CloudSystem(seed=seed)
    handles = system.setup_topology(
        AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=wq_size
    )
    anchor_bytes = SwqCovertReceiver.anchor_bytes_for_window(config.bit_window_us)
    attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=anchor_bytes)
    sender = CovertSender(
        handles.victim, handles.victim_wq, config, system.rng, evict_devtlb=False
    )
    receiver = SwqCovertReceiver(attack, config)

    payload = random_bits(system.rng, payload_bits)
    start = system.clock.now + us_to_cycles(3 * config.bit_window_us)
    sender.schedule_message(system.timeline, payload, start, preamble_pulses=4)
    estimated_start = receiver.synchronize(system.timeline)
    received = receiver.receive(system.timeline, estimated_start, payload_bits)
    return _result(payload, received, config)


#: Convenience: seconds per cycle for external reporting.
CYCLES_PER_SECOND = DEFAULT_TSC_HZ
