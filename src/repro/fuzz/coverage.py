"""Lightweight branch-ish coverage for the device model.

Model components expose an optional ``coverage_probe`` attribute (a
``(site, token)`` callback, ``None`` by default so the model pays one
attribute check per probe when no fuzzer is attached).  The map counts
per-case hits per ``(site, token)`` pair, buckets the counts AFL-style
(1, 2, 3, 4–7, 8–15, …), and treats each ``(site, token, bucket)``
triple as one feature.  A case that produces a feature never seen before
in the campaign earns a corpus slot — that is the entire guidance
signal.

State signatures (:meth:`CoverageMap.note_state`) fold coarse device
state — queue-occupancy quartiles, busy engines, DevTLB occupancy —
into the same feature space, so reaching a new *state* counts like
reaching a new *branch*.

Serialization is sorted and JSON-stable: two campaigns with the same
seed persist byte-identical coverage.
"""

from __future__ import annotations

from typing import Any


def bucket(count: int) -> int:
    """AFL-style hit-count bucket: exact to 3, then power-of-two bands."""
    if count <= 3:
        return count
    return count.bit_length() + 2


class CoverageMap:
    """The campaign-global seen-feature set plus per-case counters."""

    def __init__(self) -> None:
        self._seen: "set[tuple[str, str, int]]" = set()
        self._case: "dict[tuple[str, str], int]" = {}
        self.cases = 0

    # -- probing --------------------------------------------------------
    def probe(self, site: str, token: str) -> None:
        """One hit at *site*/*token* (the model-side callback)."""
        key = (site, token)
        self._case[key] = self._case.get(key, 0) + 1

    def note_state(self, signature: str) -> None:
        """Fold a device-state signature into the feature space."""
        self.probe("state", signature)

    def install(self, *objects: Any) -> None:
        """Point every *object*'s ``coverage_probe`` at this map."""
        for obj in objects:
            obj.coverage_probe = self.probe

    # -- case lifecycle -------------------------------------------------
    def begin_case(self) -> None:
        """Reset the per-case counters."""
        self._case = {}

    def end_case(self) -> int:
        """Fold the case into the global set; return new-feature count."""
        new = 0
        for (site, token), count in self._case.items():
            feature = (site, token, bucket(count))
            if feature not in self._seen:
                self._seen.add(feature)
                new += 1
        self._case = {}
        self.cases += 1
        return new

    @property
    def features(self) -> int:
        """Total distinct features observed so far."""
        return len(self._seen)

    def sites(self) -> "dict[str, int]":
        """Feature counts grouped by site (for the report)."""
        out: "dict[str, int]" = {}
        for site, _token, _bucket in self._seen:
            out[site] = out.get(site, 0) + 1
        return dict(sorted(out.items()))

    # -- persistence ----------------------------------------------------
    def to_json(self) -> "dict[str, Any]":
        """Sorted, JSON-stable form for ``state.json``."""
        return {
            "cases": self.cases,
            "features": sorted(
                f"{site}|{token}|{level}" for site, token, level in self._seen
            ),
        }

    @classmethod
    def from_json(cls, raw: "dict[str, Any]") -> "CoverageMap":
        """Rebuild a map persisted by :meth:`to_json`."""
        cov = cls()
        cov.cases = int(raw.get("cases", 0))
        for entry in raw.get("features", []):
            site, token, level = entry.rsplit("|", 2)
            cov._seen.add((site, token, int(level)))
        return cov
