"""Case execution and the fuzzer's oracles.

One case = a fresh :class:`~repro.virt.system.CloudSystem` configured
from the campaign topology, a strict-mode
:class:`~repro.invariants.monitor.InvariantMonitor`, and the case's
operation list applied through per-process portals.  Three oracles judge
the run:

* **Invariant oracle** — any :class:`~repro.errors.InvariantViolation`
  (ledger drift, duplicate completion, DevTLB census breach, ...) is a
  finding.
* **Conformance oracle** — typed :class:`~repro.errors.ReproError`
  subclasses are *handled* pipeline outcomes (queue full, poll timeout,
  invalid descriptor, translation fault); any **other** exception
  escaping the model is a finding — the structured-exception catalog
  (docs/errors) promised it could not happen.
* **Fault-contract oracle** — when a fault plan is armed, every injected
  fault must be acknowledged by the component that owns its site
  (the chaos suite's handled-or-detected contract); an unacknowledged
  fault is a finding.

Results carry a stable ``signature`` (kind + detail) used by the
campaign for dedup and by the shrinker as its preservation predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any, Callable, Sequence

from repro.dsa.batch import write_batch_list
from repro.dsa.descriptor import (
    COMPLETION_ALIGN,
    BatchDescriptor,
    Descriptor,
    make_noop,
)
from repro.dsa.opcodes import Opcode
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.errors import InvariantViolation, ReproError
from repro.faults.plan import FaultPlan, FaultSite
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.gen import BUFFER_BYTES, wq_owner
from repro.hw.units import PAGE_SIZE
from repro.invariants.monitor import InvariantMonitor
from repro.virt.system import CloudSystem

#: Poll bound for every wait (same contract as the soak harness).
WAIT_TIMEOUT_CYCLES = 5_000_000

#: Raw descriptors decode 32-bit sizes; transfers are clamped here so a
#: wild size costs bounded simulation work while still overrunning every
#: mapped buffer.
RAW_SIZE_LIMIT = 1 << 18

#: Sites armed by ``FuzzConfig.fault_rate`` (each with the same
#: per-opportunity probability; magnitudes for the duration sites).
FAULT_SITES: "tuple[FaultSite, ...]" = (
    FaultSite.SUBMISSION_DROP,
    FaultSite.SUBMISSION_DELAY,
    FaultSite.COMPLETION_ERROR,
    FaultSite.ENGINE_STALL,
    FaultSite.DEVTLB_INVALIDATE,
    FaultSite.IOTLB_INVALIDATE,
    FaultSite.WQ_DRAIN,
    FaultSite.PRS_DROP,
)
_MAGNITUDE_SITES = (FaultSite.SUBMISSION_DELAY, FaultSite.ENGINE_STALL)
_FAULT_MAGNITUDE_CYCLES = 20_000


@dataclass(frozen=True)
class Finding:
    """One oracle failure."""

    kind: str  # "invariant" | "exception" | "fault-gap"
    detail: str  # invariant name / exception type / fault site
    message: str

    @property
    def signature(self) -> str:
        """Dedup/shrink identity: same kind and detail = same bug."""
        return f"{self.kind}:{self.detail}"


@dataclass(frozen=True)
class CaseResult:
    """What executing one case observed."""

    finding: "Finding | None"
    ops_executed: int
    submissions: int
    handled_errors: int
    new_features: int = 0

    @property
    def ok(self) -> bool:
        return self.finding is None


def build_fault_plan(seed: int, rate: float) -> "FaultPlan | None":
    """The campaign's fault plan: every site at probability *rate*."""
    if rate <= 0:
        return None
    plan = FaultPlan(seed=seed)
    for site in FAULT_SITES:
        magnitude = _FAULT_MAGNITUDE_CYCLES if site in _MAGNITUDE_SITES else 0
        plan = plan.with_site(
            site, probability=rate, magnitude_cycles=magnitude
        )
    return plan


# ----------------------------------------------------------------------
# The workbench
# ----------------------------------------------------------------------
class FuzzBench:
    """Per-process buffers, portals, and submission bookkeeping."""

    def __init__(
        self,
        system: CloudSystem,
        topology: "dict[str, Any]",
        processes: int,
    ) -> None:
        self.system = system
        self.procs = []
        self.portals = []
        self.comp_slot = 0
        wqs = topology["wqs"]
        for index in range(processes):
            vm = system.create_vm(f"fuzz-vm-{index}")
            proc = vm.spawn_process(f"fuzz-{index}")
            for wq in wqs:
                if wq["mode"] == "shared" or wq_owner(wq, processes) == index:
                    self.portals.append(
                        system.open_portal(proc, int(wq["wq_id"]))
                    )
            self.procs.append(proc)
        self.src = [proc.buffer(BUFFER_BYTES) for proc in self.procs]
        self.dst = [proc.buffer(BUFFER_BYTES) for proc in self.procs]
        self.comp = [proc.buffer(PAGE_SIZE) for proc in self.procs]
        self.lists = [proc.buffer(PAGE_SIZE) for proc in self.procs]
        self.pending: "list[tuple[int, int, Any]]" = []

    def comp_addr(self, index: int, mode: str = "ok") -> int:
        """A completion-record address in *mode* (see ``COMP_MODES``)."""
        if mode == "misaligned":
            # Deliberately not 32-byte aligned: validate() must reject.
            return self.comp[index] + 8
        if mode == "aliased":
            # Slot 0 is reserved so every aliased descriptor collides.
            return self.comp[index]
        self.comp_slot = (self.comp_slot + 1) % (PAGE_SIZE // COMPLETION_ALIGN)
        if self.comp_slot == 0:
            self.comp_slot = 1
        return self.comp[index] + COMPLETION_ALIGN * self.comp_slot

    def descriptor(self, op: "dict[str, Any]") -> Descriptor:
        """Build the (possibly invalid) descriptor an op describes."""
        index = op["proc"]
        proc = self.procs[index]
        opcode = op.get("opcode", "noop")
        size = int(op.get("size", 0))
        src = self.src[index] + int(op.get("src_off", 0))
        dst = self.dst[index] + int(op.get("dst_off", 0))
        comp = self.comp_addr(index, str(op.get("comp", "ok")))
        if opcode == "drain":
            return Descriptor(
                opcode=Opcode.DRAIN, pasid=proc.pasid, completion_addr=comp
            )
        if opcode == "memmove":
            return Descriptor(
                opcode=Opcode.MEMMOVE,
                pasid=proc.pasid,
                src=src,
                dst=dst,
                size=size,
                completion_addr=comp,
            )
        if opcode == "fill":
            return Descriptor(
                opcode=Opcode.FILL,
                pasid=proc.pasid,
                src=0xA5,
                dst=dst,
                size=size,
                completion_addr=comp,
            )
        if opcode == "compare":
            return Descriptor(
                opcode=Opcode.COMPARE,
                pasid=proc.pasid,
                src=src,
                dst=dst,
                size=size,
                completion_addr=comp,
            )
        return make_noop(proc.pasid, comp)

    def batch(self, op: "dict[str, Any]") -> BatchDescriptor:
        """Build a batch, stamping children per ``child_pasid`` mode."""
        index = op["proc"]
        proc = self.procs[index]
        count = int(op["children"])
        mode = str(op.get("child_pasid", "own"))
        if mode == "zero":
            child_pasid = 0
        elif mode == "other":
            if len(self.procs) > 1:
                child_pasid = self.procs[(index + 1) % len(self.procs)].pasid
            else:
                child_pasid = proc.pasid + 1
        else:
            child_pasid = proc.pasid
        children = []
        for child in range(count):
            if bool(op.get("nested")) and child == 0:
                # A batch-of-batches child: the engine must refuse it
                # with an INVALID_DESCRIPTOR record, never recurse.
                children.append(
                    Descriptor(
                        opcode=Opcode.BATCH,
                        pasid=child_pasid,
                        src=self.lists[index],
                        size=64,
                        completion_addr=self.comp_addr(index),
                    )
                )
            else:
                children.append(make_noop(child_pasid, self.comp_addr(index)))
        if children:
            write_batch_list(proc.space, self.lists[index], children)
        return BatchDescriptor(
            pasid=proc.pasid,
            desc_list_addr=self.lists[index],
            count=count,
            completion_addr=self.comp_addr(index, str(op.get("comp", "ok"))),
        )

    def raw_descriptor(self, op: "dict[str, Any]") -> Descriptor:
        """Decode raw bytes (most raise typed decode errors)."""
        descriptor = Descriptor.decode(bytes.fromhex(op["data"]))
        if descriptor.size > RAW_SIZE_LIMIT:
            descriptor = replace(descriptor, size=descriptor.size % RAW_SIZE_LIMIT)
        return descriptor


def _state_signature(device: Any) -> str:
    """Coarse device-state token folded into coverage after each op."""
    wq_bits = "".join(
        str(min(3, (4 * queue.occupancy) // queue.config.size))
        for queue in device.queue_space.queues()
    )
    busy = sum(1 for engine in device.engines.values() if engine.busy)
    return f"wq{wq_bits}e{busy}d{min(9, device.devtlb.occupancy)}"


def _fault_gaps(injector: Any) -> "dict[str, int]":
    """Site → count of fired faults with no acknowledgement."""
    gaps: "dict[str, int]" = {}
    for site, fired in injector.fired_by_site.items():
        handled = injector.handled_by_site.get(site, 0)
        if fired > handled:
            gaps[site.value] = fired - handled
    return gaps


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def execute_case(
    ops: "Sequence[dict[str, Any]]",
    topology: "dict[str, Any]",
    seed: int,
    processes: int,
    mode: str = "strict",
    coverage: "CoverageMap | None" = None,
    fault_plan: "FaultPlan | None" = None,
    repro_hint: str = "",
) -> CaseResult:
    """Run one case on a fresh system and judge it with the oracles.

    The system seed is the campaign seed for every case — the only
    varying input is *ops*, so a finding replays from its op list alone.
    """
    system = CloudSystem(seed=seed, invariants="off", fault_plan=fault_plan)
    monitor = InvariantMonitor(mode=mode, seed=seed, repro_hint=repro_hint)
    monitor.attach_system(system)
    device = system.device
    for group_id, engine_ids in enumerate(topology["groups"]):
        device.configure_group(group_id, engine_ids)
    for wq in topology["wqs"]:
        device.configure_wq(
            WorkQueueConfig(
                wq_id=int(wq["wq_id"]),
                size=int(wq["size"]),
                mode=WqMode(wq["mode"]),
                priority=int(wq["priority"]),
                group_id=int(wq["group"]),
            )
        )
    bench = FuzzBench(system, topology, processes)
    if coverage is not None:
        coverage.begin_case()
        coverage.install(
            device.devtlb,
            device.agent,
            device.prs,
            *device.engines.values(),
            *device.queue_space.queues(),
            *bench.portals,
        )

    executed = 0
    submissions = 0
    handled = 0
    finding: "Finding | None" = None

    def submit_pending(op: "dict[str, Any]", descriptor: Any) -> None:
        nonlocal submissions
        portal = bench.procs[op["proc"]].portal(int(op["wq"]))
        ticket = portal.submit(descriptor)
        submissions += 1
        bench.pending.append((op["proc"], int(op["wq"]), ticket))

    def apply(op: "dict[str, Any]") -> None:
        nonlocal submissions
        kind = op["kind"]
        if kind == "advance":
            system.clock.advance(int(op["cycles"]))
            device.advance_to(system.clock.now)
        elif kind == "drain":
            device.disable_wq(int(op["wq"]))
        elif kind == "wait":
            if bench.pending:
                proc, wq_id, ticket = bench.pending.pop(0)
                bench.procs[proc].portal(wq_id).wait(
                    ticket, timeout_cycles=WAIT_TIMEOUT_CYCLES
                )
        elif kind == "burst":
            # Anchor descriptors: a full-buffer memmove executes slower
            # than the submission interval, so a burst actually fills
            # the queue (a noop would retire before the next submit).
            index = op["proc"]
            for _ in range(int(op["count"])):
                submit_pending(
                    op,
                    Descriptor(
                        opcode=Opcode.MEMMOVE,
                        pasid=bench.procs[index].pasid,
                        src=bench.src[index],
                        dst=bench.dst[index],
                        size=BUFFER_BYTES,
                        completion_addr=bench.comp_addr(index),
                    ),
                )
        elif kind == "submit":
            submit_pending(op, bench.descriptor(op))
        elif kind == "batch":
            submit_pending(op, bench.batch(op))
        elif kind == "raw":
            submit_pending(op, bench.raw_descriptor(op))
        else:  # submit_wait
            portal = bench.procs[op["proc"]].portal(int(op["wq"]))
            descriptor = bench.descriptor(op)
            submissions += 1
            portal.submit_wait(descriptor, timeout_cycles=WAIT_TIMEOUT_CYCLES)

    def contained(step: "Callable[[], None]") -> None:
        """Typed errors are handled outcomes; violations propagate."""
        nonlocal handled
        try:
            step()
        except InvariantViolation:
            raise
        except ReproError:
            handled += 1

    try:
        for op in ops:
            contained(lambda: apply(op))
            executed += 1
            if coverage is not None:
                coverage.note_state(_state_signature(device))
        # Settle: drain async tickets, then run the final full audit.
        while bench.pending:
            proc, wq_id, ticket = bench.pending.pop(0)
            contained(
                lambda: bench.procs[proc].portal(wq_id).wait(
                    ticket, timeout_cycles=WAIT_TIMEOUT_CYCLES
                )
            )
        monitor.check_all()
    except InvariantViolation as exc:
        finding = Finding(
            kind="invariant", detail=exc.invariant, message=str(exc)
        )
    except Exception as exc:  # repro-lint: ignore[EXC001]
        # Conformance oracle: the error catalog promises every model
        # failure is a typed ReproError; anything else escaping IS the
        # finding, so the broad catch here is the oracle itself.
        finding = Finding(
            kind="exception", detail=type(exc).__name__, message=str(exc)
        )

    if finding is None and device.fault_injector is not None:
        gaps = _fault_gaps(device.fault_injector)
        if gaps:
            site = sorted(gaps)[0]
            finding = Finding(
                kind="fault-gap",
                detail=site,
                message=f"unacknowledged injected faults: {gaps}",
            )

    new_features = coverage.end_case() if coverage is not None else 0
    return CaseResult(
        finding=finding,
        ops_executed=executed,
        submissions=submissions,
        handled_errors=handled,
        new_features=new_features,
    )
