"""Coverage-guided device-interface fuzzer for the DSA/ATS model.

A seeded fuzzing campaign over the descriptor/portal/ATS surface: the
generator (:mod:`repro.fuzz.gen`) produces valid-ish and malformed
operation streams, lightweight coverage hooks in the model
(:mod:`repro.fuzz.coverage`) steer mutation toward unexplored behavior,
and the oracles (:mod:`repro.fuzz.executor`) judge every case against
the invariant monitor, the fault handled-or-detected contract, and the
typed-exception catalog.  Findings shrink to minimal reproducers and the
whole campaign is crash-safe and resumable (:mod:`repro.fuzz.campaign`),
ending in a deterministic report (:mod:`repro.fuzz.report`).

Run via ``python -m repro.fuzz`` or ``scripts/run_fuzz_smoke.sh``; see
``docs/fuzzing.md``.
"""

from repro.fuzz.campaign import (
    EXIT_FINDINGS,
    CampaignResult,
    FuzzConfig,
    run_campaign,
)
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import CaseResult, Finding, execute_case
from repro.fuzz.gen import derive_rng, generate_case, generate_topology, mutate

__all__ = [
    "EXIT_FINDINGS",
    "CampaignResult",
    "CaseResult",
    "CoverageMap",
    "Finding",
    "FuzzConfig",
    "derive_rng",
    "execute_case",
    "generate_case",
    "generate_topology",
    "mutate",
    "run_campaign",
]
