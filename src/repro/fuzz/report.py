"""Deterministic campaign reports (Markdown and HTML).

Both renderers are pure functions of ``state.json`` — no timestamps,
hostnames, or absolute paths — so two campaigns with the same seed and
configuration write byte-identical reports, and the determinism tests
can diff them directly.  Finding repro commands use run-dir-relative
paths (``--replay findings/0000.json``, run from inside the campaign
directory).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

from repro.experiments.checkpoint import atomic_write_text
from repro.fuzz.campaign import load_state
from repro.fuzz.coverage import CoverageMap

REPORT_MD = "report.md"
REPORT_HTML = "report.html"

#: Coverage-history rows sampled into the growth table.
CURVE_POINTS = 20


def _curve_rows(
    guided: "list[int]", baseline: "list[int]"
) -> "list[tuple[int, int, str]]":
    """(iteration, guided, baseline-or-dash) rows, ~CURVE_POINTS of them."""
    total = max(len(guided), len(baseline), 1)
    step = max(1, total // CURVE_POINTS)
    rows = []
    for index in range(step - 1, total, step):
        g = guided[min(index, len(guided) - 1)] if guided else 0
        b = str(baseline[min(index, len(baseline) - 1)]) if baseline else "-"
        rows.append((index + 1, g, b))
    if rows and rows[-1][0] != total:
        g = guided[-1] if guided else 0
        b = str(baseline[-1]) if baseline else "-"
        rows.append((total, g, b))
    return rows


def _replay_command(finding: "dict[str, Any]") -> str:
    return f"PYTHONPATH=src python -m repro.fuzz --replay {finding['file']}"


def render_markdown(state: "dict[str, Any]") -> str:
    """The Markdown report for a campaign *state*."""
    config = state["config"]
    guided = CoverageMap.from_json(state["coverage"])
    baseline = CoverageMap.from_json(state["baseline_coverage"])
    corpus = state["corpus"]
    findings = state["findings"]

    lines = [
        "# Fuzz campaign report",
        "",
        f"- seed: `{config['seed']}`",
        f"- trials: {config['trials']} guided"
        + (f" + {state['baseline_iter']} baseline" if config["baseline"] else ""),
        f"- processes: {config['processes']}, monitor mode: "
        f"`{config['mode']}`, fault rate: {config['fault_rate']}",
        f"- guided coverage: **{guided.features} features** "
        f"({guided.cases} cases, corpus {len(corpus)} entries)",
    ]
    if config["baseline"]:
        delta = guided.features - baseline.features
        lines.append(
            f"- baseline coverage: {baseline.features} features "
            f"(guided {'+' if delta >= 0 else ''}{delta})"
        )
    lines += [f"- findings: **{len(findings)}**", ""]

    lines += ["## Coverage growth", ""]
    rows = _curve_rows(state["coverage_history"], state["baseline_history"])
    lines += ["| iteration | guided features | baseline features |",
              "|---:|---:|---:|"]
    for iteration, g, b in rows:
        lines.append(f"| {iteration} | {g} | {b} |")
    lines.append("")

    lines += ["## Findings", ""]
    if findings:
        lines += [
            "| id | kind | detail | ops | shrink runs | repro (from the campaign directory) |",
            "|---:|---|---|---:|---:|---|",
        ]
        for finding in findings:
            lines.append(
                f"| {finding['file'].split('/')[-1].split('.')[0]} "
                f"| {finding['kind']} | `{finding['detail']}` "
                f"| {finding['ops']} | {finding['shrink_runs']} "
                f"| `{_replay_command(finding)}` |"
            )
    else:
        lines.append("No findings — every case was handled or detected cleanly.")
    lines.append("")

    lines += ["## Corpus", ""]
    if corpus:
        total_picks = sum(entry["picks"] for entry in corpus)
        mean_ops = sum(entry["ops"] for entry in corpus) / len(corpus)
        lines += [
            f"- entries: {len(corpus)}",
            f"- mean ops per entry: {mean_ops:.1f}",
            f"- total parent picks: {total_picks}",
        ]
    else:
        lines.append("- empty (no case discovered new coverage)")
    lines += ["", "## Coverage by site", ""]
    lines += ["| site | features |", "|---|---:|"]
    for site, count in guided.sites().items():
        lines.append(f"| `{site}` | {count} |")
    lines.append("")
    return "\n".join(lines)


def _svg_curve(
    guided: "list[int]", baseline: "list[int]", width: int = 640, height: int = 200
) -> str:
    """An inline SVG polyline chart of the two coverage histories."""
    peak = max(guided + baseline + [1])
    total = max(len(guided), len(baseline), 1)

    def points(series: "list[int]") -> str:
        if not series:
            return ""
        coords = []
        for index, value in enumerate(series):
            x = 10 + (width - 20) * index / max(1, total - 1)
            y = height - 10 - (height - 20) * value / peak
            coords.append(f"{x:.1f},{y:.1f}")
        return " ".join(coords)

    parts = [
        f'<svg viewBox="0 0 {width} {height}" width="{width}" height="{height}" '
        'role="img" aria-label="coverage growth">',
        f'<rect x="0" y="0" width="{width}" height="{height}" fill="#fafafa" '
        'stroke="#ddd"/>',
    ]
    if baseline:
        parts.append(
            f'<polyline points="{points(baseline)}" fill="none" '
            'stroke="#999" stroke-width="1.5" stroke-dasharray="4 3"/>'
        )
    if guided:
        parts.append(
            f'<polyline points="{points(guided)}" fill="none" '
            'stroke="#1f77b4" stroke-width="2"/>'
        )
    parts.append(
        f'<text x="12" y="16" font-size="11" fill="#1f77b4">guided '
        f'({guided[-1] if guided else 0})</text>'
    )
    if baseline:
        parts.append(
            f'<text x="12" y="30" font-size="11" fill="#777">baseline '
            f'({baseline[-1]})</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def render_html(state: "dict[str, Any]") -> str:
    """The HTML report: the Markdown content plus the SVG curve."""
    config = state["config"]
    findings = state["findings"]
    guided = CoverageMap.from_json(state["coverage"])
    baseline = CoverageMap.from_json(state["baseline_coverage"])
    rows = []
    for finding in findings:
        rows.append(
            "<tr>"
            f"<td>{finding['file'].split('/')[-1].split('.')[0]}</td>"
            f"<td>{finding['kind']}</td><td><code>{finding['detail']}</code></td>"
            f"<td>{finding['ops']}</td>"
            f"<td><code>{_replay_command(finding)}</code></td>"
            "</tr>"
        )
    finding_table = (
        "<table><tr><th>id</th><th>kind</th><th>detail</th><th>ops</th>"
        "<th>repro</th></tr>" + "".join(rows) + "</table>"
        if rows
        else "<p>No findings.</p>"
    )
    return "\n".join(
        [
            "<!DOCTYPE html>",
            '<html lang="en"><head><meta charset="utf-8">',
            "<title>Fuzz campaign report</title>",
            "<style>body{font-family:sans-serif;margin:2em;max-width:60em}"
            "table{border-collapse:collapse}td,th{border:1px solid #ccc;"
            "padding:4px 8px;text-align:left}</style>",
            "</head><body>",
            "<h1>Fuzz campaign report</h1>",
            f"<p>seed <code>{config['seed']}</code>, "
            f"{config['trials']} guided trials, "
            f"{state['baseline_iter']} baseline trials, "
            f"fault rate {config['fault_rate']}.</p>",
            f"<p>Guided coverage <strong>{guided.features}</strong> features "
            f"(corpus {len(state['corpus'])}); baseline "
            f"{baseline.features} features; "
            f"<strong>{len(findings)}</strong> findings.</p>",
            "<h2>Coverage growth</h2>",
            _svg_curve(state["coverage_history"], state["baseline_history"]),
            "<h2>Findings</h2>",
            finding_table,
            "</body></html>",
            "",
        ]
    )


def write_report(run_dir: "str | Path") -> "tuple[Path, Path]":
    """Render both reports from ``state.json`` into *run_dir*."""
    run_dir = Path(run_dir)
    state = load_state(run_dir)
    md = atomic_write_text(run_dir / REPORT_MD, render_markdown(state))
    html = atomic_write_text(run_dir / REPORT_HTML, render_html(state))
    return md, html
