"""CLI driver: ``python -m repro.fuzz``.

Exit codes extend the experiment-runner convention
(docs/robustness.md):

====  ==========================================================
0     campaign completed with no findings (or replay did not
      reproduce)
5     checkpoint/config mismatch on ``--resume``
7     findings present (``EXIT_FINDINGS``) — also the replay
      exit code when the finding reproduces
75    interrupted by ``--stop-after`` (partial, resumable)
====  ==========================================================

Examples::

    PYTHONPATH=src python -m repro.fuzz --seed 7 --trials 200 --dir runs/fuzz7
    PYTHONPATH=src python -m repro.fuzz --dir runs/fuzz7 --resume
    cd runs/fuzz7 && PYTHONPATH=../../src python -m repro.fuzz \
        --replay findings/0000.json
"""

from __future__ import annotations

import argparse
import json
import os
from pathlib import Path
from typing import Sequence

from repro.errors import CheckpointError
from repro.faults.canary import CANARY_ENV
from repro.experiments.runner import EXIT_CONFIG_MISMATCH, EXIT_DEADLINE
from repro.fuzz.campaign import (
    EXIT_FINDINGS,
    LANE_TOPOLOGY,
    FuzzConfig,
    run_campaign,
)
from repro.fuzz.executor import build_fault_plan, execute_case
from repro.fuzz.gen import derive_rng, generate_topology
from repro.fuzz.report import write_report

_CONFIG_FIELDS = (
    "seed",
    "trials",
    "processes",
    "mode",
    "fault_rate",
    "shrink",
    "shrink_budget",
    "baseline",
)


def _replay(path: str) -> int:
    """Re-execute a persisted finding; exit 7 when it still reproduces."""
    record = json.loads(Path(path).read_text(encoding="utf-8"))
    raw = record["config"]
    config = FuzzConfig(**{key: raw[key] for key in _CONFIG_FIELDS})
    topology = generate_topology(derive_rng(config.seed, LANE_TOPOLOGY))
    # Rebuild the fuzzed model exactly: arm the canaries the campaign ran
    # with (restored afterwards so the process env stays clean).
    saved_canaries = os.environ.get(CANARY_ENV)
    canaries = record.get("canaries", "")
    if canaries:
        os.environ[CANARY_ENV] = canaries
    try:
        result = execute_case(
            record["ops"],
            topology,
            seed=config.seed,
            processes=config.processes,
            mode=config.mode,
            fault_plan=build_fault_plan(config.seed, config.fault_rate),
        )
    finally:
        if canaries:
            if saved_canaries is None:
                del os.environ[CANARY_ENV]
            else:
                os.environ[CANARY_ENV] = saved_canaries
    expected = f"{record['kind']}:{record['detail']}"
    if result.finding is not None and result.finding.signature == expected:
        print(f"reproduced {expected} with {len(record['ops'])} ops:")
        print(f"  {result.finding.message}")
        return EXIT_FINDINGS
    if result.finding is not None:
        print(
            f"different outcome: expected {expected}, "
            f"got {result.finding.signature}"
        )
        return EXIT_FINDINGS
    print(f"did not reproduce {expected} ({result.ops_executed} ops ran clean)")
    return 0


def main(argv: "Sequence[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Coverage-guided fuzzing campaign for the DSA/ATS model.",
    )
    parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    parser.add_argument(
        "--trials", type=int, default=200, help="guided trials (and baseline)"
    )
    parser.add_argument(
        "--processes", type=int, default=2, help="guest processes per case"
    )
    parser.add_argument(
        "--mode",
        default="strict",
        choices=("strict", "sampling", "sample"),
        help="invariant monitor audit cadence",
    )
    parser.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-opportunity fault injection probability",
    )
    parser.add_argument(
        "--dir",
        default="fuzz-campaign",
        help="campaign directory (corpus, findings, state, reports)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue a checkpointed campaign in --dir",
    )
    parser.add_argument(
        "--stop-after",
        type=int,
        default=None,
        help="run at most N trials this invocation, then checkpoint",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="skip the unguided comparison lane",
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="persist findings unshrunk"
    )
    parser.add_argument(
        "--replay",
        metavar="FINDING_JSON",
        help="re-execute one persisted finding instead of fuzzing",
    )
    args = parser.parse_args(argv)

    if args.replay:
        return _replay(args.replay)

    config = FuzzConfig(
        seed=args.seed,
        trials=args.trials,
        processes=args.processes,
        mode=args.mode,
        fault_rate=args.fault_rate,
        shrink=not args.no_shrink,
        baseline=not args.no_baseline,
    )
    try:
        result = run_campaign(
            config, args.dir, resume=args.resume, stop_after=args.stop_after
        )
    except CheckpointError as exc:
        print(f"checkpoint error: {exc}")
        return EXIT_CONFIG_MISMATCH

    if not result.completed:
        print(
            f"fuzz seed={config.seed}: checkpointed after --stop-after "
            f"({result.guided_trials} guided + {result.baseline_trials} "
            f"baseline trials done); resume with --resume"
        )
        return EXIT_DEADLINE

    md, html = write_report(result.run_dir)
    print(
        f"fuzz seed={config.seed}: {result.guided_trials} guided trials, "
        f"{result.guided_features} features "
        f"(baseline {result.baseline_features}), "
        f"corpus {result.corpus_size}, findings {len(result.findings)}"
    )
    print(f"report: {md} / {html}")
    for finding in result.findings:
        print(
            f"  finding {finding['kind']}:{finding['detail']} "
            f"({finding['ops']} ops) — replay: PYTHONPATH=src python -m "
            f"repro.fuzz --replay {finding['file']} (from {result.run_dir})"
        )
    return EXIT_FINDINGS if result.findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
