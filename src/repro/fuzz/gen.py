"""Structure-aware workload generation and mutation.

Cases are JSON-serializable operation lists (the same vocabulary shape
as :mod:`repro.invariants.soak`, extended with the hostile kinds the
fuzzer needs: queue-filling bursts, raw descriptor bytes, misaligned and
aliased completion records, wrong-PASID and nested batch children).
Everything draws from generators built by :func:`derive_rng`, so a case
is a pure function of ``(seed, lane, iteration)`` — the static rule
FUZ001 (docs/static-analysis.md) enforces that no other randomness
enters this package.

The boundary pools (:data:`SIZES`, :data:`OFFSETS`) are shared with the
hypothesis property tests in ``tests/dsa/test_descriptor_properties.py``
so the property strategies and the fuzzer probe the same edges.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.dsa.descriptor import DESCRIPTOR_SIZE

#: Stream label mixed into every seed so fuzz draws never collide with
#: the model's own generators (soak uses ``0x50A5``).
_FUZZ_STREAM = 0xF022

#: PASID is a 20-bit field; the generator probes both edges.
PASID_MAX = (1 << 20) - 1

#: Per-process scratch buffer size (descriptors may intentionally
#: overrun it — oversize transfers are part of the attack surface).
BUFFER_BYTES = 64 * 1024

#: Boundary transfer sizes: zero (invalid), single byte, cache line,
#: page edges, and transfers larger than the scratch buffers.
SIZES = (0, 1, 32, 63, 64, 4095, 4096, 4097, 8192, 65536, 131072)

#: Buffer offsets: aligned, unaligned, and page-spanning starts.
OFFSETS = (0, 1, 31, 4064, 4095, 4096, 8192, 61440)

#: The operation vocabulary (weights in :data:`_OP_WEIGHTS`).
OP_KINDS = (
    "submit_wait",
    "submit",
    "wait",
    "burst",
    "batch",
    "raw",
    "advance",
    "drain",
)
_OP_WEIGHTS = (0.24, 0.14, 0.10, 0.12, 0.16, 0.08, 0.10, 0.06)

#: Opcodes the structured generator emits (raw bytes cover the rest).
OPCODES = ("noop", "memmove", "fill", "compare", "drain")

#: Completion-record placement modes: rotating aligned slots, a
#: deliberately misaligned address, or one address aliased by every
#: descriptor of the process.
COMP_MODES = ("ok", "misaligned", "aliased")

#: PASID stamped into generated batch children: the submitter's own, a
#: sibling tenant's, or the invalid zero PASID.
CHILD_PASID_MODES = ("own", "other", "zero")

#: Operations per freshly generated case.
MIN_OPS = 4
MAX_OPS = 16


def derive_rng(seed: int, *lanes: int) -> np.random.Generator:
    """The only RNG constructor in ``repro.fuzz`` (FUZ001).

    Spawns an independent, reproducible stream for ``(seed, *lanes)``;
    lanes separate topology, guided iterations, and baseline iterations.
    """
    return np.random.default_rng(
        np.random.SeedSequence((_FUZZ_STREAM, seed, *lanes))
    )


# ----------------------------------------------------------------------
# Topology
# ----------------------------------------------------------------------
def generate_topology(rng: np.random.Generator) -> "dict[str, Any]":
    """A fuzz-friendly queue topology.

    WQ 0 is always a *small* shared queue and WQ 1 a small dedicated
    queue, so both submission instructions and the queue-full paths are
    reachable in a handful of operations; a third queue of random shape
    appears half the time.
    """
    engines = int(rng.integers(1, 4))
    wqs: "list[dict[str, Any]]" = [
        {
            "wq_id": 0,
            "size": int(rng.integers(2, 7)),
            "mode": "shared",
            "priority": int(rng.integers(0, 4)),
            "group": 0,
        },
        {
            "wq_id": 1,
            "size": int(rng.integers(2, 7)),
            "mode": "dedicated",
            "priority": int(rng.integers(0, 4)),
            "group": 0,
        },
    ]
    if rng.random() < 0.5:
        wqs.append(
            {
                "wq_id": 2,
                "size": int(rng.integers(2, 17)),
                "mode": "dedicated" if rng.random() < 0.5 else "shared",
                "priority": int(rng.integers(0, 4)),
                "group": 0,
            }
        )
    return {"engines": engines, "groups": [tuple(range(engines))], "wqs": wqs}


def wq_owner(wq: "dict[str, Any]", processes: int) -> int:
    """The process index that opens a dedicated queue's portal."""
    return int(wq["wq_id"]) % processes


# ----------------------------------------------------------------------
# Case generation
# ----------------------------------------------------------------------
def _pick(rng: np.random.Generator, pool: "tuple[Any, ...]") -> Any:
    return pool[int(rng.integers(0, len(pool)))]


def generate_op(
    rng: np.random.Generator, topology: "dict[str, Any]", processes: int
) -> "dict[str, Any]":
    """One random operation against *topology*."""
    wqs = topology["wqs"]
    kind = OP_KINDS[int(rng.choice(len(OP_KINDS), p=_OP_WEIGHTS))]
    wq = wqs[int(rng.integers(0, len(wqs)))]
    if wq["mode"] == "dedicated":
        proc = wq_owner(wq, processes)
    else:
        proc = int(rng.integers(0, processes))
    op: "dict[str, Any]" = {"kind": kind, "proc": proc, "wq": int(wq["wq_id"])}
    if kind in ("submit", "submit_wait"):
        op["opcode"] = str(_pick(rng, OPCODES))
        op["size"] = int(_pick(rng, SIZES))
        op["src_off"] = int(_pick(rng, OFFSETS))
        op["dst_off"] = int(_pick(rng, OFFSETS))
        op["comp"] = str(_pick(rng, COMP_MODES))
    elif kind == "burst":
        op["count"] = int(rng.integers(2, 10))
    elif kind == "batch":
        # count 0 probes BatchDescriptor.validate's rejection path.
        op["children"] = int(rng.integers(0, 7))
        op["child_pasid"] = str(
            CHILD_PASID_MODES[
                int(rng.choice(len(CHILD_PASID_MODES), p=(0.7, 0.15, 0.15)))
            ]
        )
        op["nested"] = bool(rng.random() < 0.15)
        op["comp"] = str(_pick(rng, COMP_MODES))
    elif kind == "raw":
        data = rng.integers(0, 256, size=DESCRIPTOR_SIZE, dtype=np.uint8)
        op["data"] = bytes(data).hex()
    elif kind == "advance":
        op["cycles"] = int(rng.integers(1_000, 200_000))
    return op


def generate_case(
    rng: np.random.Generator, topology: "dict[str, Any]", processes: int
) -> "list[dict[str, Any]]":
    """A fresh random case: :data:`MIN_OPS`–:data:`MAX_OPS` operations."""
    count = int(rng.integers(MIN_OPS, MAX_OPS + 1))
    return [generate_op(rng, topology, processes) for _ in range(count)]


# ----------------------------------------------------------------------
# Mutation
# ----------------------------------------------------------------------
def _tweak(
    rng: np.random.Generator,
    op: "dict[str, Any]",
    topology: "dict[str, Any]",
    processes: int,
) -> "dict[str, Any]":
    """Mutate one field of *op* (or replace it outright)."""
    op = dict(op)
    keys = sorted(k for k in op if k != "kind")
    if not keys:
        return generate_op(rng, topology, processes)
    key = keys[int(rng.integers(0, len(keys)))]
    if key == "size":
        op["size"] = int(_pick(rng, SIZES))
    elif key in ("src_off", "dst_off"):
        op[key] = int(_pick(rng, OFFSETS))
    elif key == "comp":
        op["comp"] = str(_pick(rng, COMP_MODES))
    elif key == "opcode":
        op["opcode"] = str(_pick(rng, OPCODES))
    elif key == "child_pasid":
        op["child_pasid"] = str(_pick(rng, CHILD_PASID_MODES))
    elif key == "children":
        op["children"] = int(rng.integers(0, 9))
    elif key == "count":
        op["count"] = int(rng.integers(1, 12))
    elif key == "cycles":
        op["cycles"] = int(rng.integers(1_000, 400_000))
    elif key == "nested":
        op["nested"] = not bool(op["nested"])
    elif key == "data":
        raw = bytearray(bytes.fromhex(op["data"]))
        raw[int(rng.integers(0, len(raw)))] = int(rng.integers(0, 256))
        op["data"] = bytes(raw).hex()
    elif key == "wq":
        wq = topology["wqs"][int(rng.integers(0, len(topology["wqs"])))]
        op["wq"] = int(wq["wq_id"])
    elif key == "proc":
        # May land on a process without a portal for a dedicated queue —
        # that rejection path is itself interesting surface.
        op["proc"] = int(rng.integers(0, processes))
    return op


def mutate(
    rng: np.random.Generator,
    ops: "list[dict[str, Any]]",
    topology: "dict[str, Any]",
    processes: int,
) -> "list[dict[str, Any]]":
    """Havoc-style structural edits: tweak, insert, delete, duplicate.

    The edit count (2–8) is deliberately aggressive: a lightly-edited
    mutant re-traces its parent's state-signature sequence almost
    exactly, so timid mutation discovers features slower than fresh
    generation.  Heavier havoc keeps the parent's hard-won structure
    (full queues, batch shapes) while resampling enough of the sequence
    to visit new device states.  The block-duplicate edit repeats a
    contiguous slice, and mutants may grow to 4x the generator's op
    cap — high hit-count coverage buckets are only reachable through
    such long repeated sequences, which fresh generation never emits.
    """
    out = [dict(op) for op in ops]
    for _ in range(2 + int(rng.integers(0, 7))):
        choice = float(rng.random())
        if not out or choice < 0.22:
            pos = int(rng.integers(0, len(out) + 1))
            out.insert(pos, generate_op(rng, topology, processes))
        elif choice < 0.40 and len(out) > 1:
            del out[int(rng.integers(0, len(out)))]
        elif choice < 0.52:
            index = int(rng.integers(0, len(out)))
            out.insert(index, dict(out[index]))
        elif choice < 0.64:
            start = int(rng.integers(0, len(out)))
            span = 1 + int(rng.integers(0, min(8, len(out) - start)))
            block = [dict(op) for op in out[start : start + span]]
            out[start + span : start + span] = block
        else:
            index = int(rng.integers(0, len(out)))
            out[index] = _tweak(rng, out[index], topology, processes)
    return out[: 4 * MAX_OPS]


def splice(
    rng: np.random.Generator,
    first: "list[dict[str, Any]]",
    second: "list[dict[str, Any]]",
) -> "list[dict[str, Any]]":
    """Crossover: a prefix of *first* followed by a suffix of *second*."""
    cut_a = int(rng.integers(1, len(first) + 1)) if first else 0
    cut_b = int(rng.integers(0, len(second))) if second else 0
    out = [dict(op) for op in first[:cut_a]] + [
        dict(op) for op in second[cut_b:]
    ]
    return out[: 2 * MAX_OPS] or [dict(op) for op in first] or list(second)
