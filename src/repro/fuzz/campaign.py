"""The coverage-guided campaign loop, crash-safe and resumable.

A campaign runs two lanes over the same topology:

* **guided** — energy-weighted corpus mutation steered by the coverage
  map; cases that discover new features join the corpus, findings with
  unseen signatures are shrunk (:func:`repro.invariants.shrink.ddmin`)
  and persisted.
* **baseline** — pure random generation with its own coverage map, no
  corpus; exists only so the report can show what the guidance buys.

Everything on disk goes through the PR-2 atomic-write machinery:
``manifest.json`` (config-hash validated on ``--resume``),
``state.json`` (rewritten after every iteration), immutable
``corpus/NNNN.json`` and ``findings/NNNN.json`` files written *before*
the state references them.  A campaign killed at any iteration resumes
to the byte-identical final state, because each iteration's randomness
derives only from ``(seed, lane, iteration)`` and the corpus metadata
(including pick counts) rides in the state file.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.errors import CheckpointError
from repro.faults.canary import CANARY_ENV
from repro.experiments.checkpoint import (
    STATUS_COMPLETED,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    RunManifest,
    atomic_write_json,
    config_hash,
    git_describe,
)
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.executor import Finding, build_fault_plan, execute_case
from repro.fuzz.gen import (
    derive_rng,
    generate_case,
    generate_topology,
    mutate,
    splice,
)
from repro.invariants.shrink import ddmin

#: Exit code of ``python -m repro.fuzz`` when the campaign produced
#: findings (documented beside the runner codes in docs/robustness.md).
EXIT_FINDINGS = 7

STATE_NAME = "state.json"
STATE_VERSION = 1

#: RNG lanes (mixed into :func:`repro.fuzz.gen.derive_rng`).
LANE_TOPOLOGY = 0
LANE_GUIDED = 1
LANE_BASELINE = 2

#: Peak probability of mutating a corpus parent instead of generating
#: fresh, and of splicing in a second parent when mutating.  The
#: effective mutation probability ramps linearly with corpus size (full
#: strength at :data:`CORPUS_RAMP` entries): a near-empty corpus offers
#: little worth exploiting, so early trials explore like the baseline
#: and later trials add corpus depth on top of it.
MUTATE_P = 0.65
SPLICE_P = 0.25
CORPUS_RAMP = 32


@dataclass(frozen=True)
class FuzzConfig:
    """One campaign, fully determined by its fields."""

    seed: int = 0
    trials: int = 200
    processes: int = 2
    mode: str = "strict"
    fault_rate: float = 0.0
    shrink: bool = True
    shrink_budget: int = 80
    baseline: bool = True

    def to_mapping(self) -> "dict[str, Any]":
        """The mapping hashed into the manifest's ``config_hash``."""
        return asdict(self)


@dataclass(frozen=True)
class CampaignResult:
    """Summary of a (possibly partial) campaign."""

    config: FuzzConfig
    findings: "tuple[dict[str, Any], ...]"
    guided_features: int
    baseline_features: int
    corpus_size: int
    guided_trials: int
    baseline_trials: int
    completed: bool
    run_dir: Path

    @property
    def clean(self) -> bool:
        return not self.findings


# ----------------------------------------------------------------------
# State persistence
# ----------------------------------------------------------------------
def _fresh_state(config: FuzzConfig) -> "dict[str, Any]":
    return {
        "format_version": STATE_VERSION,
        "config": config.to_mapping(),
        "guided_iter": 0,
        "baseline_iter": 0,
        "coverage": CoverageMap().to_json(),
        "baseline_coverage": CoverageMap().to_json(),
        "coverage_history": [],
        "baseline_history": [],
        "corpus": [],
        "findings": [],
        "signatures": [],
        "baseline_findings": 0,
    }


def _save_state(run_dir: Path, state: "dict[str, Any]") -> None:
    atomic_write_json(run_dir / STATE_NAME, state)


def load_state(run_dir: "str | Path") -> "dict[str, Any]":
    """Read ``state.json`` (raises :class:`CheckpointError` if absent)."""
    path = Path(run_dir) / STATE_NAME
    if not path.exists():
        raise CheckpointError(f"no campaign state at {path}")
    try:
        state = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"unreadable campaign state {path}: {exc}") from exc
    version = state.get("format_version")
    if version != STATE_VERSION:
        raise CheckpointError(f"unsupported state version {version!r} in {path}")
    return state


def _load_corpus_ops(
    run_dir: Path, entry: "dict[str, Any]"
) -> "list[dict[str, Any]]":
    path = run_dir / entry["file"]
    try:
        return json.loads(path.read_text(encoding="utf-8"))["ops"]
    except (OSError, json.JSONDecodeError, KeyError) as exc:
        raise CheckpointError(f"corrupt corpus entry {path}: {exc}") from exc


# ----------------------------------------------------------------------
# Input selection
# ----------------------------------------------------------------------
def _pick_parent(rng: np.random.Generator, corpus: "list[dict[str, Any]]") -> int:
    """Energy-weighted corpus pick: weight 1/(1+picks) favors fresh
    entries without starving old ones."""
    weights = np.array([1.0 / (1.0 + entry["picks"]) for entry in corpus])
    return int(rng.choice(len(corpus), p=weights / weights.sum()))


def _pick_input(
    rng: np.random.Generator,
    config: FuzzConfig,
    state: "dict[str, Any]",
    topology: "dict[str, Any]",
    run_dir: Path,
) -> "list[dict[str, Any]]":
    corpus = state["corpus"]
    mutate_p = MUTATE_P * min(1.0, len(corpus) / CORPUS_RAMP)
    if corpus and rng.random() < mutate_p:
        parent = _pick_parent(rng, corpus)
        ops = _load_corpus_ops(run_dir, corpus[parent])
        corpus[parent]["picks"] += 1
        if len(corpus) > 1 and rng.random() < SPLICE_P:
            other = _pick_parent(rng, corpus)
            corpus[other]["picks"] += 1
            ops = splice(rng, ops, _load_corpus_ops(run_dir, corpus[other]))
        return mutate(rng, ops, topology, config.processes)
    return generate_case(rng, topology, config.processes)


def _shrink_finding(
    config: FuzzConfig,
    topology: "dict[str, Any]",
    ops: "list[dict[str, Any]]",
    finding: Finding,
    fault_plan: Any,
) -> "tuple[list[dict[str, Any]], int]":
    """ddmin the op list down while the same signature reproduces."""
    target = finding.signature

    def still_fails(candidate: "list[dict[str, Any]]") -> bool:
        result = execute_case(
            candidate,
            topology,
            seed=config.seed,
            processes=config.processes,
            mode=config.mode,
            fault_plan=fault_plan,
        )
        return (
            result.finding is not None
            and result.finding.signature == target
        )

    return ddmin(ops, still_fails, budget=config.shrink_budget)


# ----------------------------------------------------------------------
# The campaign
# ----------------------------------------------------------------------
def run_campaign(
    config: FuzzConfig,
    run_dir: "str | Path",
    resume: bool = False,
    stop_after: "int | None" = None,
) -> CampaignResult:
    """Run (or resume) a campaign in *run_dir*.

    *stop_after* bounds the number of trials executed by **this call**
    (both lanes counted); the campaign checkpoints and reports
    ``completed=False``, and a later ``resume=True`` call continues to
    the byte-identical end state — this is also how the determinism
    tests simulate kill-at-k.
    """
    run_dir = Path(run_dir)
    cfg_map = config.to_mapping()
    cfg_hash = config_hash(cfg_map)

    if resume and (run_dir / "manifest.json").exists():
        manifest = RunManifest.load(run_dir)
        if manifest.config_hash != cfg_hash:
            raise CheckpointError(
                f"campaign config mismatch in {run_dir}: manifest has "
                f"{manifest.config_hash[:12]}, current config hashes to "
                f"{cfg_hash[:12]} — pass the original flags or a new --dir"
            )
        state = load_state(run_dir)
        manifest.resumed += 1
    else:
        if (run_dir / STATE_NAME).exists() and not resume:
            raise CheckpointError(
                f"{run_dir} already holds a campaign; use --resume or a new --dir"
            )
        run_dir.mkdir(parents=True, exist_ok=True)
        manifest = RunManifest(
            experiment="fuzz-campaign",
            seed=config.seed,
            config=cfg_map,
            config_hash=cfg_hash,
            git_describe=git_describe(),
        )
        state = _fresh_state(config)
        _save_state(run_dir, state)
    manifest.status = STATUS_RUNNING
    manifest.trials_total = config.trials * (2 if config.baseline else 1)
    manifest.add_segment("start")
    manifest.save(run_dir)

    topology = generate_topology(derive_rng(config.seed, LANE_TOPOLOGY))
    fault_plan = build_fault_plan(config.seed, config.fault_rate)
    coverage = CoverageMap.from_json(state["coverage"])
    baseline_cov = CoverageMap.from_json(state["baseline_coverage"])
    steps = 0

    def out_of_budget() -> bool:
        return stop_after is not None and steps >= stop_after

    def checkpoint_interrupted() -> CampaignResult:
        manifest.status = STATUS_INTERRUPTED
        manifest.completed = state["guided_iter"] + state["baseline_iter"]
        manifest.add_segment("interrupted")
        manifest.save(run_dir)
        return _result(config, state, run_dir, completed=False)

    # -- guided lane ----------------------------------------------------
    while state["guided_iter"] < config.trials:
        if out_of_budget():
            return checkpoint_interrupted()
        iteration = state["guided_iter"]
        rng = derive_rng(config.seed, LANE_GUIDED, iteration)
        ops = _pick_input(rng, config, state, topology, run_dir)
        result = execute_case(
            ops,
            topology,
            seed=config.seed,
            processes=config.processes,
            mode=config.mode,
            coverage=coverage,
            fault_plan=fault_plan,
            repro_hint=_repro_hint(config),
        )
        if result.new_features > 0:
            entry_id = len(state["corpus"])
            rel = f"corpus/{entry_id:04d}.json"
            atomic_write_json(
                run_dir / rel,
                {"id": entry_id, "iteration": iteration, "ops": ops},
            )
            state["corpus"].append(
                {
                    "file": rel,
                    "ops": len(ops),
                    "new_features": result.new_features,
                    "picks": 0,
                }
            )
        if (
            result.finding is not None
            and result.finding.signature not in state["signatures"]
        ):
            state["signatures"].append(result.finding.signature)
            if config.shrink:
                minimal, shrink_runs = _shrink_finding(
                    config, topology, ops, result.finding, fault_plan
                )
            else:
                minimal, shrink_runs = list(ops), 0
            finding_id = len(state["findings"])
            rel = f"findings/{finding_id:04d}.json"
            atomic_write_json(
                run_dir / rel,
                {
                    "id": finding_id,
                    "kind": result.finding.kind,
                    "detail": result.finding.detail,
                    "message": result.finding.message,
                    "iteration": iteration,
                    "config": cfg_map,
                    # Replay must rebuild the exact model the campaign
                    # fuzzed, including any armed canary bugs.
                    "canaries": os.environ.get(CANARY_ENV, ""),
                    "ops": minimal,
                    "original_ops": len(ops),
                    "shrink_runs": shrink_runs,
                },
            )
            state["findings"].append(
                {
                    "file": rel,
                    "kind": result.finding.kind,
                    "detail": result.finding.detail,
                    "ops": len(minimal),
                    "shrink_runs": shrink_runs,
                }
            )
            manifest.failed += 1
        state["coverage"] = coverage.to_json()
        state["coverage_history"].append(coverage.features)
        state["guided_iter"] = iteration + 1
        _save_state(run_dir, state)
        steps += 1

    # -- baseline lane --------------------------------------------------
    baseline_trials = config.trials if config.baseline else 0
    while state["baseline_iter"] < baseline_trials:
        if out_of_budget():
            return checkpoint_interrupted()
        iteration = state["baseline_iter"]
        rng = derive_rng(config.seed, LANE_BASELINE, iteration)
        ops = generate_case(rng, topology, config.processes)
        result = execute_case(
            ops,
            topology,
            seed=config.seed,
            processes=config.processes,
            mode=config.mode,
            coverage=baseline_cov,
            fault_plan=fault_plan,
        )
        if result.finding is not None:
            state["baseline_findings"] += 1
        state["baseline_coverage"] = baseline_cov.to_json()
        state["baseline_history"].append(baseline_cov.features)
        state["baseline_iter"] = iteration + 1
        _save_state(run_dir, state)
        steps += 1

    manifest.status = STATUS_COMPLETED
    manifest.completed = state["guided_iter"] + state["baseline_iter"]
    manifest.exit_code = EXIT_FINDINGS if state["findings"] else 0
    manifest.add_segment("finish")
    manifest.save(run_dir)
    return _result(config, state, run_dir, completed=True)


def _repro_hint(config: FuzzConfig) -> str:
    return (
        "PYTHONPATH=src python -m repro.fuzz"
        f" --seed {config.seed} --trials {config.trials}"
        f" --processes {config.processes} --mode {config.mode}"
        f" --fault-rate {config.fault_rate}"
    )


def _result(
    config: FuzzConfig,
    state: "dict[str, Any]",
    run_dir: Path,
    completed: bool,
) -> CampaignResult:
    return CampaignResult(
        config=config,
        findings=tuple(state["findings"]),
        guided_features=CoverageMap.from_json(state["coverage"]).features,
        baseline_features=CoverageMap.from_json(
            state["baseline_coverage"]
        ).features,
        corpus_size=len(state["corpus"]),
        guided_trials=state["guided_iter"],
        baseline_trials=state["baseline_iter"],
        completed=completed,
        run_dir=run_dir,
    )
