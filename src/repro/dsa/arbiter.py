"""The in-engine arbiter.

Section IV-C ("Undocumented Arbiter"): descriptors waiting in work queues
are **always dispatched before** descriptors sitting in the batch buffer,
even when the batch descriptor arrived first.  This is why batch
descriptors cannot be used to congest a queue and why the SWQ attack
anchors with a plain memcpy work descriptor.

Among work queues the arbiter honors the configured queue priority, then
FIFO order by enqueue time.  :class:`ArbiterPolicy` exposes the FIFO
alternative for the ablation benchmark.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.dsa.wq import QueuedEntry, WorkQueue


class ArbiterPolicy(enum.Enum):
    """Dispatch policies."""

    #: The real device: work-queue descriptors beat batch-buffer ones.
    WQ_PRIORITY = "wq-priority"
    #: Ablation: strict arrival-time FIFO across both sources.
    FIFO = "fifo"


@dataclass(frozen=True)
class BatchBufferEntry:
    """A descriptor fetched by the batch engine, waiting for dispatch."""

    descriptor: object
    available_time: int
    parent_token: object
    sequence: int


@dataclass(frozen=True)
class ArbiterChoice:
    """What the arbiter picked: exactly one source is non-None."""

    wq: WorkQueue | None = None
    wq_entry: QueuedEntry | None = None
    batch_entry: BatchBufferEntry | None = None

    @property
    def ready_time(self) -> int:
        """When the chosen descriptor became available for dispatch."""
        if self.wq_entry is not None:
            return self.wq_entry.enqueue_time
        assert self.batch_entry is not None
        return self.batch_entry.available_time


class Arbiter:
    """Selects the next descriptor for an engine."""

    def __init__(self, policy: ArbiterPolicy = ArbiterPolicy.WQ_PRIORITY) -> None:
        self.policy = policy

    def choose(
        self,
        queues: list[WorkQueue],
        batch_buffer: list[BatchBufferEntry],
        time: int,
    ) -> ArbiterChoice | None:
        """Pick the next descriptor available at *time*, or ``None``.

        The returned entry is **not** removed from its source; the caller
        pops it once admission succeeds.
        """
        wq_candidate = self._best_wq(queues, time)
        batch_candidate = self._best_batch(batch_buffer, time)
        if wq_candidate is None and batch_candidate is None:
            return None
        if self.policy is ArbiterPolicy.WQ_PRIORITY:
            if wq_candidate is not None:
                return wq_candidate
            return batch_candidate
        # FIFO ablation: earliest arrival wins, work queue breaking ties.
        if wq_candidate is None:
            return batch_candidate
        if batch_candidate is None:
            return wq_candidate
        if batch_candidate.ready_time < wq_candidate.ready_time:
            return batch_candidate
        return wq_candidate

    @staticmethod
    def _best_wq(queues: list[WorkQueue], time: int) -> ArbiterChoice | None:
        best: tuple[int, int, int] | None = None
        chosen: ArbiterChoice | None = None
        for queue in queues:
            entry = queue.peek()
            if entry is None or entry.enqueue_time > time:
                continue
            key = (-queue.config.priority, entry.enqueue_time, queue.wq_id)
            if best is None or key < best:
                best = key
                chosen = ArbiterChoice(wq=queue, wq_entry=entry)
        return chosen

    @staticmethod
    def _best_batch(
        batch_buffer: list[BatchBufferEntry], time: int
    ) -> ArbiterChoice | None:
        ready = [e for e in batch_buffer if e.available_time <= time]
        if not ready:
            return None
        entry = min(ready, key=lambda e: (e.available_time, e.sequence))
        return ArbiterChoice(batch_entry=entry)
