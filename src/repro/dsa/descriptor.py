"""The 64-byte DSA work descriptor (Fig. 3 of the paper).

Layout (little-endian, byte offsets):

======  ==========================================================
0-3     PASID (bits 0-19), reserved bits, privilege bit (bit 31)
4-5     reserved
6       flags
7       opcode
8-15    completion record address
16-23   source address (``src``)
24-31   destination address (``dst``) / second source (``src2``)
32-35   transfer size
36-37   interrupt handle
38-39   reserved
40-47   second destination (``dst2``) / delta record address
48-63   reserved / unused
======  ==========================================================

``dst`` and ``src2`` share bytes 24-31 and are distinguished only by the
opcode — the encoding overlap probed by Listing 4 of the paper.  The
DevTLB nevertheless indexes them as *different* field types, which
:meth:`Descriptor.field_accesses` reflects.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.ats.devtlb import FieldType
from repro.dsa.opcodes import (
    READS_SRC,
    STANDARD_COMPLETION_FLAGS,
    USES_SRC2,
    WRITES_DST,
    WRITES_DST2,
    DescriptorFlags,
    Opcode,
)
from repro.errors import InvalidDescriptorError

#: Serialized descriptor size in bytes.
DESCRIPTOR_SIZE = 64

#: Completion records must be 32-byte aligned.
COMPLETION_ALIGN = 32

_PACK = struct.Struct("<I H B B Q Q Q I H H Q 16x")


@dataclass(frozen=True)
class FieldAccess:
    """One memory stream of a descriptor, as the engine will issue it."""

    field_type: FieldType
    address: int
    size: int
    write: bool

    def pages(self) -> list[int]:
        """4 KiB page numbers touched, in access order."""
        if self.size == 0:
            return [self.address >> 12]
        first = self.address >> 12
        last = (self.address + self.size - 1) >> 12
        return list(range(first, last + 1))


@dataclass(frozen=True)
class Descriptor:
    """One DSA work descriptor.

    ``dst`` doubles as ``src2`` for the compare/delta opcodes, exactly as
    in the hardware encoding; use :attr:`src2` for readability.
    """

    opcode: Opcode
    pasid: int = 0
    flags: DescriptorFlags = STANDARD_COMPLETION_FLAGS
    completion_addr: int = 0
    src: int = 0
    dst: int = 0
    size: int = 0
    dst2: int = 0
    interrupt_handle: int = 0
    privileged: bool = False

    def __post_init__(self) -> None:
        # Cache the flag test as a plain bool: IntFlag arithmetic is
        # surprisingly expensive and this predicate runs on every
        # submission, dispatch, and completion (hot attack loop).
        object.__setattr__(
            self,
            "_wants_completion",
            (int(self.flags) & 0x0C) == 0x0C,
        )

    @property
    def src2(self) -> int:
        """Second source address (aliases :attr:`dst`, per the encoding)."""
        return self.dst

    @property
    def wants_completion(self) -> bool:
        """Whether the engine must write a completion record."""
        return self._wants_completion

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`InvalidDescriptorError` on malformed descriptors."""
        if self.pasid <= 0:
            raise InvalidDescriptorError(f"descriptor has invalid PASID {self.pasid}")
        if self.wants_completion and self.completion_addr % COMPLETION_ALIGN:
            raise InvalidDescriptorError(
                f"completion record address {self.completion_addr:#x} "
                f"is not {COMPLETION_ALIGN}-byte aligned"
            )
        if self.opcode in (Opcode.NOOP, Opcode.DRAIN, Opcode.BATCH):
            return
        if self.size <= 0:
            raise InvalidDescriptorError(
                f"{self.opcode.name} descriptor requires a positive transfer "
                f"size, got {self.size}"
            )

    # ------------------------------------------------------------------
    # Memory streams
    # ------------------------------------------------------------------
    def field_accesses(self) -> list[FieldAccess]:
        """The memory streams this descriptor generates, in engine order.

        The completion-record write is always last; it is the *only*
        stream of a noop descriptor, which is why the paper's attack
        probes with noops.
        """
        accesses: list[FieldAccess] = []
        if self.opcode is Opcode.BATCH:
            # The batch fetcher's reads bypass the DevTLB entirely; the
            # batch engine model handles them out-of-band.
            return accesses
        if self.opcode in READS_SRC:
            accesses.append(FieldAccess(FieldType.SRC, self.src, self.size, write=False))
        if self.opcode in USES_SRC2:
            accesses.append(FieldAccess(FieldType.SRC2, self.dst, self.size, write=False))
        elif self.opcode in WRITES_DST:
            accesses.append(FieldAccess(FieldType.DST, self.dst, self.size, write=True))
        if self.opcode in WRITES_DST2:
            accesses.append(FieldAccess(FieldType.DST2, self.dst2, self.size, write=True))
        if self.wants_completion:
            accesses.append(
                FieldAccess(FieldType.COMP, self.completion_addr, 0, write=True)
            )
        return accesses

    def pages_touched(self) -> int:
        """Total page translations the engine will request."""
        return sum(len(access.pages()) for access in self.field_accesses())

    # ------------------------------------------------------------------
    # Wire format
    # ------------------------------------------------------------------
    def encode(self) -> bytes:
        """Serialize to the 64-byte wire format."""
        word0 = (self.pasid & 0xFFFFF) | (0x8000_0000 if self.privileged else 0)
        return _PACK.pack(
            word0,
            0,
            int(self.flags) & 0xFF,
            int(self.opcode),
            self.completion_addr,
            self.src,
            self.dst,
            self.size,
            self.interrupt_handle,
            0,
            self.dst2,
        )

    @classmethod
    def decode(cls, raw: bytes) -> "Descriptor":
        """Parse the 64-byte wire format back into a :class:`Descriptor`."""
        if len(raw) != DESCRIPTOR_SIZE:
            raise InvalidDescriptorError(
                f"descriptor must be {DESCRIPTOR_SIZE} bytes, got {len(raw)}"
            )
        (word0, _r0, flags, opcode, comp, src, dst, size, ihandle, _r1, dst2) = (
            _PACK.unpack(raw)
        )
        try:
            op = Opcode(opcode)
        except ValueError as exc:
            raise InvalidDescriptorError(f"unknown opcode {opcode:#x}") from exc
        return cls(
            opcode=op,
            pasid=word0 & 0xFFFFF,
            flags=DescriptorFlags(flags),
            completion_addr=comp,
            src=src,
            dst=dst,
            size=size,
            dst2=dst2,
            interrupt_handle=ihandle,
            privileged=bool(word0 & 0x8000_0000),
        )


@dataclass(frozen=True)
class BatchDescriptor:
    """A batch descriptor: points at an array of work descriptors.

    The batch fetcher reads ``count`` serialized 64-byte descriptors
    starting at ``desc_list_addr`` (in the submitter's address space) and
    feeds them to the engine's batch buffer.
    """

    pasid: int
    desc_list_addr: int
    count: int
    completion_addr: int = 0
    flags: DescriptorFlags = STANDARD_COMPLETION_FLAGS
    opcode: Opcode = field(default=Opcode.BATCH, init=False)

    def validate(self) -> None:
        """Raise :class:`InvalidDescriptorError` on malformed batches."""
        if self.pasid <= 0:
            raise InvalidDescriptorError(f"batch has invalid PASID {self.pasid}")
        if self.count < 1:
            raise InvalidDescriptorError("batch must contain at least one descriptor")
        if self.completion_addr % COMPLETION_ALIGN:
            raise InvalidDescriptorError("batch completion record is misaligned")

    def list_bytes(self) -> int:
        """Size of the descriptor array the fetcher reads."""
        return self.count * DESCRIPTOR_SIZE


def make_noop(pasid: int, completion_addr: int) -> Descriptor:
    """The paper's ``probe_noop`` descriptor: writes only the completion
    record, making it the minimal single-sub-entry DevTLB probe."""
    return Descriptor(
        opcode=Opcode.NOOP, pasid=pasid, completion_addr=completion_addr
    )


def make_memcpy(pasid: int, src: int, dst: int, size: int, completion_addr: int) -> Descriptor:
    """``probe_memcpy``: reads ``src``, writes ``dst``."""
    return Descriptor(
        opcode=Opcode.MEMMOVE,
        pasid=pasid,
        src=src,
        dst=dst,
        size=size,
        completion_addr=completion_addr,
    )


def make_memcmp(pasid: int, src: int, src2: int, size: int, completion_addr: int) -> Descriptor:
    """``probe_memcmp`` (Listing 1): reads ``src`` and ``src2``."""
    return Descriptor(
        opcode=Opcode.COMPVAL,
        pasid=pasid,
        src=src,
        dst=src2,
        size=size,
        completion_addr=completion_addr,
    )


def make_dualcast(
    pasid: int, src: int, dst: int, dst2: int, size: int, completion_addr: int
) -> Descriptor:
    """``probe_dualcast``: reads ``src``, writes ``dst`` and ``dst2``."""
    return Descriptor(
        opcode=Opcode.DUALCAST,
        pasid=pasid,
        src=src,
        dst=dst,
        dst2=dst2,
        size=size,
        completion_addr=completion_addr,
    )


def spans_pages(address: int, size: int) -> int:
    """Number of 4 KiB pages a ``[address, address+size)`` stream touches."""
    if size <= 0:
        return 1
    return ((address + size - 1) >> 12) - (address >> 12) + 1


__all__ = [
    "BatchDescriptor",
    "COMPLETION_ALIGN",
    "DESCRIPTOR_SIZE",
    "Descriptor",
    "FieldAccess",
    "make_dualcast",
    "make_memcmp",
    "make_memcpy",
    "make_noop",
    "spans_pages",
]
