"""Completion records.

The engine notifies software by writing a 32-byte completion record at the
descriptor's completion-record address; software polls the status byte
(Listing 1: ``while comp.status == 0``).  The record is real memory in the
submitter's address space, so cross-page and DevTLB effects of the write
are modeled like any other store.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

#: Serialized completion record size.
COMPLETION_RECORD_SIZE = 32

_PACK = struct.Struct("<B B H I Q Q Q")


class CompletionStatus(enum.IntEnum):
    """Status byte values (0 means "not yet written")."""

    PENDING = 0x00
    SUCCESS = 0x01
    PAGE_FAULT = 0x03
    BATCH_FAIL = 0x05
    ABORT = 0x09
    INVALID_DESCRIPTOR = 0x10
    INVALID_FLAGS = 0x11


@dataclass(frozen=True)
class CompletionRecord:
    """The decoded completion record.

    Attributes
    ----------
    status:
        Terminal status of the descriptor.
    result:
        Operation result — 0/1 for compares (difference found), the CRC
        value for CRC generation, descriptors-completed for batches.
    bytes_completed:
        Bytes processed before a fault (equals the transfer size on
        success).
    fault_address:
        Faulting virtual address when ``status`` is ``PAGE_FAULT``.
    """

    status: CompletionStatus
    result: int = 0
    bytes_completed: int = 0
    fault_address: int = 0

    def encode(self) -> bytes:
        """Serialize to the 32-byte wire format."""
        return _PACK.pack(
            int(self.status),
            0,
            0,
            self.bytes_completed & 0xFFFF_FFFF,
            self.fault_address,
            self.result & 0xFFFF_FFFF_FFFF_FFFF,
            0,
        )

    @classmethod
    def decode(cls, raw: bytes) -> "CompletionRecord":
        """Parse the 32-byte wire format."""
        if len(raw) != COMPLETION_RECORD_SIZE:
            raise ValueError(
                f"completion record must be {COMPLETION_RECORD_SIZE} bytes, "
                f"got {len(raw)}"
            )
        status, _r0, _r1, bytes_completed, fault, result, _r2 = _PACK.unpack(raw)
        return cls(
            status=CompletionStatus(status),
            result=result,
            bytes_completed=bytes_completed,
            fault_address=fault,
        )

    @property
    def is_pending(self) -> bool:
        """True while the engine has not written the record."""
        return self.status is CompletionStatus.PENDING
