"""MMIO portals: ``enqcmd`` (DMWr) and ``movdir64b`` submission.

The portal is the software-visible submission interface.  For shared work
queues, ``enqcmd`` issues a **Deferrable Memory Write**: a non-posted MMIO
write whose completion carries the device's accept/retry answer, which the
CPU exposes in ``EFLAGS.ZF`` (Section IV-C).  Two properties matter for
the attacks:

* submission latency is ~700 cycles and **does not depend on queue
  state** — retry and accept cost the same, so timing leaks nothing
  (Fig. 6, Takeaway 3);
* the ZF answer itself leaks the queue-full condition to any unprivileged
  submitter, which is the entire ``DSA_SWQ`` side channel.

The PASID travels with the submission (from the process context that
mapped the portal), so a submitter can never impersonate another process —
the leak is the *accept/retry* bit, not the payload.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.dsa.descriptor import BatchDescriptor, Descriptor
from repro.dsa.device import DsaDevice, SubmissionTicket
from repro.dsa.wq import WqMode
from repro.errors import CompletionTimeoutError, ConfigurationError, QueueFullError
from repro.faults.plan import FaultSite
from repro.hw.pcie import TransactionKind

#: Core-side cost of the enqcmd instruction path, excluding the DMWr
#: round trip (which the PCIe link charges).  Total lands near the
#: paper's ~700-cycle constant submission latency.
ENQCMD_SW_CYCLES = 510

#: movdir64b is a posted write: cheaper, no answer.
MOVDIR_SW_CYCLES = 160

#: Privileged-DMWr mitigation: the constant submission slot unprivileged
#: enqcmd is padded to, and the internal hardware retry budget inside it.
HIDDEN_DMWR_SLOT_CYCLES = 3600
HIDDEN_DMWR_RETRIES = 4


@dataclass(frozen=True)
class ProbeResult:
    """Outcome of a polled submission (Listing 1 semantics)."""

    ticket: SubmissionTicket
    latency_cycles: int

    @property
    def record(self):
        """The completion record (written by the time the poll returned)."""
        return self.ticket.record


class Portal:
    """One process's mapping of a work-queue portal page.

    Parameters
    ----------
    device:
        The DSA.
    wq_id:
        The portal's work queue.
    pasid:
        The opener's PASID — stamped into every submission, as ``enqcmd``
        does from the IA32_PASID MSR.
    """

    def __init__(
        self, device: DsaDevice, wq_id: int, pasid: int, privileged: bool = False
    ) -> None:
        self.device = device
        self.wq_id = wq_id
        self.pasid = pasid
        self.privileged = privileged
        self.clock = device.clock
        self.last_ticket: SubmissionTicket | None = None
        self.hidden_dmwr_drops = 0
        self.faults_injected = 0
        #: Optional ``(site, token)`` callback installed by the fuzzer's
        #: coverage map (:meth:`repro.fuzz.coverage.CoverageMap.install`).
        self.coverage_probe = None

    def _submission_fault(self, descriptor: Descriptor | BatchDescriptor) -> bool:
        """Consult the fault injector at the portal-write site.

        Applies an injected delay, then reports whether the write was
        dropped outright.  A dropped write looks *accepted* to software
        (ZF clear / posted write) — the loss is only observable through
        the never-arriving completion record.
        """
        injector = self.device.fault_injector
        if injector is None:
            return False
        delay = injector.fire(
            FaultSite.SUBMISSION_DELAY,
            timestamp=self.clock.now,
            pasid=self.pasid,
            wq_id=self.wq_id,
        )
        if delay is not None:
            self.faults_injected += 1
            self.clock.advance(delay.magnitude_cycles)
            injector.acknowledge(delay, action="submission-delayed")
        drop = injector.fire(
            FaultSite.SUBMISSION_DROP,
            timestamp=self.clock.now,
            pasid=self.pasid,
            wq_id=self.wq_id,
        )
        if drop is None:
            return False
        self.faults_injected += 1
        self.device.advance_to(self.clock.now)
        self.last_ticket = None
        injector.acknowledge(drop, action="submission-dropped")
        return True

    # ------------------------------------------------------------------
    # Raw submission instructions
    # ------------------------------------------------------------------
    def enqcmd(self, descriptor: Descriptor | BatchDescriptor) -> bool:
        """Submit via DMWr; return the ``EFLAGS.ZF`` value.

        ``True`` (ZF set) means *retry*: the queue was full and nothing
        was enqueued.  Latency is charged identically either way.
        """
        wq = self.device.wq(self.wq_id)
        if wq.config.mode is not WqMode.SHARED:
            if self.coverage_probe is not None:
                self.coverage_probe("portal.enqcmd", "dedicated-reject")
            raise ConfigurationError(
                f"enqcmd targets shared queues; WQ {self.wq_id} is dedicated"
            )
        descriptor = self._stamp_pasid(descriptor)
        if self.device.config.dmwr_privileged and not self.privileged:
            return self._enqcmd_hidden(descriptor)
        cycles = ENQCMD_SW_CYCLES + self.device.link.transaction_cycles(
            TransactionKind.DMWR
        )
        self.clock.advance(cycles)
        if self._submission_fault(descriptor):
            return False
        zf, ticket = self.device.submit(self.wq_id, descriptor, self.clock.now)
        self.last_ticket = ticket
        if self.coverage_probe is not None:
            self.coverage_probe("portal.enqcmd", "retry" if zf else "accept")
        return zf

    def _enqcmd_hidden(self, descriptor: Descriptor | BatchDescriptor) -> bool:
        """The privileged-DMWr mitigation path (Section VII).

        The hardware retries internally inside a fixed time slot and the
        architectural ZF always reads 0, so queue state never reaches an
        unprivileged submitter.  A submission that still cannot be placed
        is dropped silently (software notices via the missing completion
        record), which is the mitigation's compatibility cost.
        """
        slot_cycles = HIDDEN_DMWR_SLOT_CYCLES
        start = self.clock.now
        accepted = False
        for _ in range(HIDDEN_DMWR_RETRIES):
            cycles = ENQCMD_SW_CYCLES + self.device.link.transaction_cycles(
                TransactionKind.DMWR
            )
            self.clock.advance(cycles)
            zf, ticket = self.device.submit(self.wq_id, descriptor, self.clock.now)
            if not zf:
                self.last_ticket = ticket
                accepted = True
                break
        if not accepted:
            self.hidden_dmwr_drops += 1
            self.last_ticket = None
        # Pad to the constant slot so the retry count leaks no timing.
        self.clock.advance_to(start + slot_cycles)
        self.device.advance_to(self.clock.now)
        return False

    def movdir64b(self, descriptor: Descriptor | BatchDescriptor) -> None:
        """Submit via a posted 64-byte write (dedicated queues only).

        Real hardware gives no feedback; software tracks occupancy.  A
        full queue therefore raises :class:`QueueFullError` to flag the
        software bug the model cannot otherwise express.
        """
        wq = self.device.wq(self.wq_id)
        if wq.config.mode is not WqMode.DEDICATED:
            if self.coverage_probe is not None:
                self.coverage_probe("portal.movdir64b", "shared-reject")
            raise ConfigurationError(
                f"movdir64b targets dedicated queues; WQ {self.wq_id} is shared"
            )
        descriptor = self._stamp_pasid(descriptor)
        cycles = MOVDIR_SW_CYCLES + self.device.link.transaction_cycles(
            TransactionKind.POSTED_WRITE
        )
        self.clock.advance(cycles)
        if self._submission_fault(descriptor):
            return
        zf, ticket = self.device.submit(self.wq_id, descriptor, self.clock.now)
        if self.coverage_probe is not None:
            self.coverage_probe("portal.movdir64b", "full" if zf else "accept")
        if zf:
            wq = self.device.wq(self.wq_id)
            raise QueueFullError(
                f"movdir64b to full dedicated WQ {self.wq_id} (undefined on "
                f"real hardware)",
                wq_id=self.wq_id,
                occupancy=wq.occupancy,
                capacity=wq.config.size,
            )
        self.last_ticket = ticket

    # ------------------------------------------------------------------
    # Convenience paths
    # ------------------------------------------------------------------
    def submit(self, descriptor: Descriptor | BatchDescriptor) -> SubmissionTicket:
        """Submit through the queue's native instruction; raise when full."""
        wq = self.device.wq(self.wq_id)
        if wq.config.mode is WqMode.DEDICATED:
            self.movdir64b(descriptor)
        else:
            if self.enqcmd(descriptor):
                raise QueueFullError(
                    f"WQ {self.wq_id} is full",
                    wq_id=self.wq_id,
                    occupancy=wq.occupancy,
                    capacity=wq.config.size,
                )
        if self.last_ticket is None:
            # The portal write was lost in flight (injected fault): hand
            # back a ticket that will never complete, exactly what the
            # submitting software believes it owns.
            self.last_ticket = SubmissionTicket(
                descriptor=descriptor, wq_id=self.wq_id, enqueue_time=self.clock.now
            )
        return self.last_ticket

    def submit_wait(
        self,
        descriptor: Descriptor | BatchDescriptor,
        spin_cycles: int = 200,
        timeout_cycles: int | None = None,
    ) -> ProbeResult:
        """Submit and poll the completion record (Listing 1).

        Returns the completion and the *polled latency*: the cycles from
        just after submission to the poll observing a non-zero status —
        the quantity every timing attack in the paper thresholds.
        *timeout_cycles* bounds the poll (see :meth:`wait`).
        """
        ticket = self.submit(descriptor)
        start = self.clock.rdtsc()
        self.wait(ticket, spin_cycles=spin_cycles, timeout_cycles=timeout_cycles)
        end = self.clock.rdtsc()
        return ProbeResult(ticket=ticket, latency_cycles=end - start)

    def wait(
        self,
        ticket: SubmissionTicket,
        spin_cycles: int = 200,
        timeout_cycles: int | None = None,
    ) -> None:
        """Poll until *ticket* completes (advances the shared clock).

        With *timeout_cycles* set, the poll gives up after that many
        cycles and raises :class:`~repro.errors.CompletionTimeoutError` —
        the only way software can observe a lost submission.
        """
        device = self.device
        deadline = None if timeout_cycles is None else self.clock.now + timeout_cycles
        while ticket.completion_time is None:
            if deadline is not None and self.clock.now >= deadline:
                if self.coverage_probe is not None:
                    self.coverage_probe("portal.wait", "timeout")
                raise CompletionTimeoutError(
                    f"WQ {self.wq_id}: no completion record after "
                    f"{timeout_cycles} cycles",
                    wq_id=self.wq_id,
                    waited_cycles=timeout_cycles,
                )
            self.clock.advance(spin_cycles)
            device.advance_to(self.clock.now)
        detect = device.config.timing.poll_detect_cycles
        self.clock.advance_to(ticket.completion_time + detect)
        device.advance_to(self.clock.now)

    def _stamp_pasid(
        self, descriptor: Descriptor | BatchDescriptor
    ) -> Descriptor | BatchDescriptor:
        if descriptor.pasid == self.pasid:
            return descriptor
        return replace(descriptor, pasid=self.pasid)
