"""The DSA device model.

Descriptor formats, work queues, portals, engines, the batch engine, the
in-engine arbiter, and the Perfmon counter block — every DSA-side
component the paper reverse-engineers.
"""

from repro.dsa.accel_config import AccelConfig, WqInfo
from repro.dsa.arbiter import Arbiter, ArbiterPolicy
from repro.dsa.batch import BatchFetcher, write_batch_list
from repro.dsa.completion import (
    COMPLETION_RECORD_SIZE,
    CompletionRecord,
    CompletionStatus,
)
from repro.dsa.descriptor import (
    DESCRIPTOR_SIZE,
    BatchDescriptor,
    Descriptor,
    FieldAccess,
    make_dualcast,
    make_memcmp,
    make_memcpy,
    make_noop,
    spans_pages,
)
from repro.dsa.device import (
    DeviceStats,
    DsaDevice,
    DsaDeviceConfig,
    GroupConfig,
    SubmissionTicket,
)
from repro.dsa.engine import Engine, EngineTiming, ExecutionOutcome
from repro.dsa.opcodes import DescriptorFlags, Opcode, STANDARD_COMPLETION_FLAGS
from repro.dsa.perfmon import EVENTS, Perfmon, PerfmonEvent
from repro.dsa.portal import Portal, ProbeResult
from repro.dsa.wq import (
    TOTAL_WQ_ENTRIES,
    HardwareQueueSpace,
    WorkQueue,
    WorkQueueConfig,
    WqMode,
)

__all__ = [
    "AccelConfig",
    "Arbiter",
    "ArbiterPolicy",
    "BatchDescriptor",
    "BatchFetcher",
    "COMPLETION_RECORD_SIZE",
    "CompletionRecord",
    "CompletionStatus",
    "DESCRIPTOR_SIZE",
    "Descriptor",
    "DescriptorFlags",
    "DeviceStats",
    "DsaDevice",
    "DsaDeviceConfig",
    "EVENTS",
    "Engine",
    "EngineTiming",
    "ExecutionOutcome",
    "FieldAccess",
    "GroupConfig",
    "HardwareQueueSpace",
    "Opcode",
    "Perfmon",
    "PerfmonEvent",
    "Portal",
    "ProbeResult",
    "STANDARD_COMPLETION_FLAGS",
    "SubmissionTicket",
    "TOTAL_WQ_ENTRIES",
    "WorkQueue",
    "WorkQueueConfig",
    "WqInfo",
    "WqMode",
    "make_dualcast",
    "make_memcmp",
    "make_memcpy",
    "make_noop",
    "spans_pages",
    "write_batch_list",
]
