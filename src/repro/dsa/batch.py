"""The batch engine and its fetcher.

A batch descriptor points at an array of work descriptors in the
submitter's memory.  The batch fetcher reads that array and places the
decoded descriptors into the engine's **batch buffer**, from which the
arbiter dispatches them at lower priority than work-queue descriptors.

Two reverse-engineered properties are enforced here (Section IV-B):

* the fetcher's descriptor reads **bypass the DevTLB** — they translate
  straight through the Translation Agent and never touch sub-entries;
* the batch's own completion-record write also bypasses the DevTLB.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ats.agent import TranslationAgent
from repro.dsa.descriptor import DESCRIPTOR_SIZE, BatchDescriptor, Descriptor
from repro.errors import InvalidDescriptorError
from repro.hw.units import PAGE_SIZE

#: Fixed cost of launching a batch fetch: a full DMA round trip through
#: the translation agent before any descriptor bytes arrive.  Longer than
#: two back-to-back enqcmds, which is why a work descriptor submitted
#: right after a batch always beats the batch's children to the engine
#: (Listing 5's observation).
FETCH_BASE_CYCLES = 1500

#: Per-descriptor read cost inside the fetch burst.
FETCH_PER_DESCRIPTOR_CYCLES = 24


@dataclass(frozen=True)
class BatchFetchResult:
    """Outcome of one batch fetch."""

    descriptors: tuple[Descriptor, ...]
    cycles: int


class BatchFetcher:
    """Reads descriptor arrays on behalf of the batch engine."""

    def __init__(self, agent: TranslationAgent) -> None:
        self.agent = agent
        self.fetches = 0
        self.descriptors_fetched = 0

    def fetch(self, batch: BatchDescriptor, timestamp: int) -> BatchFetchResult:
        """Fetch and decode the batch's work descriptors.

        Translation goes through the agent only (DevTLB bypass); the cost
        covers the ATS requests for each page of the array plus the reads.
        """
        batch.validate()
        space = self.agent.pasid_table.lookup(batch.pasid)
        total = batch.list_bytes()
        cycles = FETCH_BASE_CYCLES + batch.count * FETCH_PER_DESCRIPTOR_CYCLES

        first_page = batch.desc_list_addr >> 12
        last_page = (batch.desc_list_addr + total - 1) >> 12
        for vpn in range(first_page, last_page + 1):
            va = batch.desc_list_addr if vpn == first_page else vpn << 12
            result = self.agent.translate(batch.pasid, va, write=False, timestamp=timestamp)
            cycles += result.cycles

        raw = space.read(batch.desc_list_addr, total)
        descriptors = []
        for index in range(batch.count):
            chunk = raw[index * DESCRIPTOR_SIZE : (index + 1) * DESCRIPTOR_SIZE]
            descriptor = Descriptor.decode(chunk)
            if descriptor.pasid != batch.pasid:
                raise InvalidDescriptorError(
                    f"batched descriptor {index} carries PASID "
                    f"{descriptor.pasid}, batch is PASID {batch.pasid}"
                )
            descriptors.append(descriptor)

        self.fetches += 1
        self.descriptors_fetched += len(descriptors)
        return BatchFetchResult(descriptors=tuple(descriptors), cycles=cycles)


def write_batch_list(space, address: int, descriptors: list[Descriptor]) -> None:
    """Serialize *descriptors* into memory at *address* (test/workload helper)."""
    payload = b"".join(d.encode() for d in descriptors)
    if (address % PAGE_SIZE) + len(payload) > PAGE_SIZE * 1024:
        raise InvalidDescriptorError("descriptor list is unreasonably large")
    space.write(address, payload)
