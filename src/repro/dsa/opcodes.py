"""DSA operation codes and descriptor flags.

Encodings follow the Intel DSA Architecture Specification's descriptor
opcode assignments; the subset modeled here covers everything the paper
uses (noop, memcmp/compval, memcpy/memmove, dualcast, batch) plus the
other data-mover operations DSA advertises (fill, compare, CRC, delta
record generation and merging) so the library is usable as a general DSA
model.
"""

from __future__ import annotations

import enum


class Opcode(enum.IntEnum):
    """Work-descriptor operation codes."""

    NOOP = 0x00
    BATCH = 0x01
    DRAIN = 0x02
    MEMMOVE = 0x03
    FILL = 0x04
    COMPARE = 0x05
    COMPVAL = 0x06
    CREATE_DELTA = 0x07
    APPLY_DELTA = 0x08
    DUALCAST = 0x09
    CRCGEN = 0x10
    COPY_CRC = 0x11
    DIF_CHECK = 0x12
    DIF_INSERT = 0x13
    DIF_STRIP = 0x14


class DescriptorFlags(enum.IntFlag):
    """Descriptor flag bits (the subset the model honors)."""

    NONE = 0
    #: Fence: do not start until prior descriptors in the batch complete.
    FENCE = 0x0001
    #: Block on fault instead of completing with a partial transfer.
    BLOCK_ON_FAULT = 0x0002
    #: The completion-record address field is valid.
    COMPLETION_ADDR_VALID = 0x0004
    #: Write a completion record when done.
    REQUEST_COMPLETION_RECORD = 0x0008
    #: Raise a completion interrupt (modeled as a flag only).
    REQUEST_COMPLETION_INTERRUPT = 0x0010
    #: Destination writes should bypass (not allocate) the CPU cache.
    CACHE_CONTROL = 0x0020


#: Flags every polled submission in the paper's listings sets.
STANDARD_COMPLETION_FLAGS = (
    DescriptorFlags.COMPLETION_ADDR_VALID | DescriptorFlags.REQUEST_COMPLETION_RECORD
)

#: Opcodes that read from ``src``.
READS_SRC = frozenset(
    {
        Opcode.MEMMOVE,
        Opcode.COMPARE,
        Opcode.COMPVAL,
        Opcode.CREATE_DELTA,
        Opcode.APPLY_DELTA,
        Opcode.DUALCAST,
        Opcode.CRCGEN,
        Opcode.COPY_CRC,
        Opcode.DIF_CHECK,
        Opcode.DIF_INSERT,
        Opcode.DIF_STRIP,
    }
)

#: Opcodes whose byte-24 field is a second source (``src2``); for all
#: other data opcodes that field is the destination (``dst``) — the
#: overlap the paper exploits in Listing 4.
USES_SRC2 = frozenset({Opcode.COMPARE, Opcode.COMPVAL, Opcode.CREATE_DELTA})

#: Opcodes that write to ``dst``.
WRITES_DST = frozenset(
    {
        Opcode.MEMMOVE,
        Opcode.FILL,
        Opcode.APPLY_DELTA,
        Opcode.DUALCAST,
        Opcode.COPY_CRC,
        Opcode.DIF_INSERT,
        Opcode.DIF_STRIP,
    }
)

#: CREATE_DELTA writes its delta record through the descriptor's
#: ``delta record address``, modeled as the dst2 slot.
WRITES_DST2 = frozenset({Opcode.DUALCAST, Opcode.CREATE_DELTA})
