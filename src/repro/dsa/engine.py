"""DSA engines: descriptor execution, timing, and DevTLB traffic.

Calibration targets (all from the paper):

* **Fig. 4** — a noop probe completes in ~500 cycles on a DevTLB hit and
  >1000 cycles on a miss, with the 600-900 cycle threshold valid in all
  four environments.  The model achieves this with a fixed engine cost
  plus a translation cost that is cheap on a DevTLB hit and pays an ATS
  round trip to the Translation Agent on a miss (the paper warms the
  IOTLB, so the miss path's dominant term is the ATS request itself).
* **Fig. 6** — completion latency grows linearly with transfer size
  (bandwidth-limited streaming at ~30 GB/s) while submission latency
  stays flat (charged by the portal, not the engine).
* **Section V-C** — each engine contains **one processing unit** (Fig. 2
  of the paper) and therefore executes descriptors serially; a large
  memcpy "anchor" keeps the engine busy while the queued descriptors
  behind it hold their SWQ slots, which is the congestion the SWQ attack
  arms.  (The ``concurrent_descriptors`` knob exists for the ablation
  benchmark only.)

Cross-page streams are split into per-page segments.  Each segment is a
separate DevTLB request and only the final page stays cached — both
properties the paper establishes with ``EV_ATC_ALLOC`` counts.  For
*latency*, only the first page's translation is charged: the engine
prefetches subsequent translations behind the data streaming, which is
also what keeps the paper's completion-latency curve bandwidth-shaped
rather than walk-shaped.  (Approximation documented in DESIGN.md: pages
past the first skip the per-page IOTLB simulation.)
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.ats.agent import TranslationAgent
from repro.ats.devtlb import DevTlb, FieldType
from repro.dsa.completion import CompletionRecord, CompletionStatus
from repro.dsa.descriptor import Descriptor, FieldAccess
from repro.dsa.opcodes import Opcode
from repro.errors import TranslationFault
from repro.faults.plan import FaultSite
from repro.hw.noise import NoiseModel
from repro.hw.units import PAGE_SHIFT


@dataclass(frozen=True)
class EngineTiming:
    """Calibrated timing knobs of one engine.

    The defaults reproduce the paper's latency landmarks at a 2 GHz TSC;
    see the module docstring for the mapping.
    """

    fixed_cycles: int = 260
    devtlb_hit_cycles: int = 25
    ats_request_cycles: int = 540
    completion_write_cycles: int = 110
    #: Per-stream streaming cost; a memcpy reads one stream and writes
    #: another, so its aggregate throughput is ~30 GB/s at 2 GHz.
    cycles_per_stream_byte: float = 1.0 / 30.0
    poll_detect_cycles: int = 80
    #: Processing units per engine (the real device has one; >1 is an
    #: ablation that breaks the SWQ anchor, see benchmarks).
    concurrent_descriptors: int = 1
    #: Above this size, byte contents are not physically copied (timing
    #: and completion metadata are unaffected).
    data_move_limit: int = 1 << 20


@dataclass
class ExecutionOutcome:
    """What one descriptor execution produced."""

    cycles: int
    record: CompletionRecord
    devtlb_hits: int
    devtlb_misses: int


@dataclass
class _InFlight:
    """A descriptor currently executing on a processing unit."""

    completion_time: int
    token: object = None


@dataclass
class EngineStats:
    """Aggregate per-engine counters."""

    descriptors_executed: int = 0
    bytes_processed: int = 0
    faults: int = 0
    busy_cycles: int = 0
    injected_faults: int = 0
    injected_stall_cycles: int = 0


class Engine:
    """One DSA engine: processing unit(s) plus its DevTLB view.

    Parameters
    ----------
    engine_id:
        Index used for DevTLB sub-entry selection.
    devtlb:
        The (shared) device TLB.
    agent:
        Translation agent used on DevTLB misses.
    noise:
        Environment noise model applied once per descriptor.
    rng:
        Shared random generator.
    timing:
        Calibrated cost model.
    """

    def __init__(
        self,
        engine_id: int,
        devtlb: DevTlb,
        agent: TranslationAgent,
        noise: NoiseModel,
        rng: np.random.Generator,
        timing: EngineTiming | None = None,
    ) -> None:
        self.engine_id = engine_id
        self.devtlb = devtlb
        self.agent = agent
        self.noise = noise
        self.rng = rng
        self.timing = timing or EngineTiming()
        self.inflight: list[_InFlight] = []
        self.stats = EngineStats()
        self.fault_injector = None
        #: Optional ``(site, token)`` callback installed by the fuzzer's
        #: coverage map (:meth:`repro.fuzz.coverage.CoverageMap.install`).
        self.coverage_probe = None

    # ------------------------------------------------------------------
    # Processing-unit admission
    # ------------------------------------------------------------------
    def earliest_start(self, after: int, needs_idle: bool = False) -> int:
        """Earliest time >= *after* a descriptor could start executing.

        With one processing unit this is simply "when the current
        descriptor finishes".  *needs_idle* forces an empty engine (used
        by ``drain``).
        """
        limit = 0 if needs_idle else self.timing.concurrent_descriptors - 1
        if len(self.inflight) <= limit:
            return after
        completions = sorted(item.completion_time for item in self.inflight)
        barrier = completions[len(self.inflight) - 1 - limit]
        return max(after, barrier)

    def admit(self, completion_time: int, token: object) -> None:
        """Record a descriptor as executing until *completion_time*."""
        self.inflight.append(_InFlight(completion_time=completion_time, token=token))

    def retire_due(self, time: int) -> list[object]:
        """Remove and return tokens of descriptors completed by *time*."""
        if not self.inflight:
            return []
        done = [item for item in self.inflight if item.completion_time <= time]
        if not done:
            return []
        self.inflight = [item for item in self.inflight if item.completion_time > time]
        return [item.token for item in sorted(done, key=lambda i: i.completion_time)]

    def next_completion_time(self) -> int | None:
        """Earliest pending completion, or ``None`` when idle."""
        if not self.inflight:
            return None
        return min(item.completion_time for item in self.inflight)

    @property
    def busy(self) -> bool:
        """Whether any processing unit is occupied."""
        return bool(self.inflight)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def execute(self, descriptor: Descriptor, timestamp: int) -> ExecutionOutcome:
        """Run *descriptor*: charge timing, move data, build the record.

        DevTLB and IOTLB state mutate here, at dispatch order — which is
        what makes cross-descriptor eviction visible to later probes.
        """
        timing = self.timing
        cycles = timing.fixed_cycles
        hits = 0
        misses = 0
        fault: TranslationFault | None = None
        injected_error = None
        if self.coverage_probe is not None:
            self.coverage_probe("engine.execute", descriptor.opcode.name.lower())
        if self.fault_injector is not None:
            cycles += self._pre_execution_faults(descriptor, timestamp)

        translate_total = 0
        data_total = 0
        for access in descriptor.field_accesses():
            try:
                translate_cycles, stream_hits, stream_misses = self._translate_stream(
                    access, descriptor.pasid, timestamp
                )
            except TranslationFault as exc:
                fault = exc
                self.stats.faults += 1
                if self.coverage_probe is not None:
                    self.coverage_probe("engine.fault", "translation")
                break
            hits += stream_hits
            misses += stream_misses
            translate_total += translate_cycles
            if access.field_type is not FieldType.COMP:
                data_total += int(access.size * timing.cycles_per_stream_byte)
        # Translation overlaps with data streaming: the descriptor costs
        # the longer of the two plus a small serialization residue.
        # Small transfers stay translation-bound (the Fig. 4 hit/miss
        # gap); large ones become bandwidth-bound (the Fig. 6 slope),
        # which also makes DevTLB disturbance cheap for bulk copies
        # (the Fig. 14 shape).
        cycles += max(data_total, translate_total) + int(
            0.2 * min(data_total, translate_total)
        )

        if descriptor.wants_completion:
            cycles += timing.completion_write_cycles
        cycles += max(0, self.noise.sample(self.rng))

        if fault is None and self.fault_injector is not None:
            injected_error = self.fault_injector.fire(
                FaultSite.COMPLETION_ERROR,
                timestamp=timestamp,
                pasid=descriptor.pasid,
                engine_id=self.engine_id,
            )
        if fault is not None:
            record = CompletionRecord(
                status=CompletionStatus.PAGE_FAULT,
                bytes_completed=0,
                fault_address=fault.address,
            )
        elif injected_error is not None:
            # The descriptor dies with an error status and moves no data.
            if self.coverage_probe is not None:
                self.coverage_probe("engine.fault", "injected")
            self.stats.faults += 1
            self.stats.injected_faults += 1
            status = (
                CompletionStatus.INVALID_FLAGS
                if injected_error.kind == "invalid_flags"
                else CompletionStatus.PAGE_FAULT
            )
            record = CompletionRecord(
                status=status,
                bytes_completed=0,
                fault_address=descriptor.src if status is CompletionStatus.PAGE_FAULT else 0,
            )
            self.fault_injector.acknowledge(injected_error, action="error-record")
        else:
            record = self._perform_operation(descriptor)

        self.stats.descriptors_executed += 1
        self.stats.bytes_processed += descriptor.size
        self.stats.busy_cycles += cycles
        return ExecutionOutcome(
            cycles=cycles, record=record, devtlb_hits=hits, devtlb_misses=misses
        )

    def _pre_execution_faults(self, descriptor: Descriptor, timestamp: int) -> int:
        """Apply injected faults that strike before translation.

        Spurious DevTLB/IOTLB invalidations (a hostile or buggy ATS
        invalidate-all) and engine stalls; returns the stall cycles to
        charge to the descriptor.
        """
        injector = self.fault_injector
        stall = 0
        devtlb_inval = injector.fire(
            FaultSite.DEVTLB_INVALIDATE,
            timestamp=timestamp,
            pasid=descriptor.pasid,
            engine_id=self.engine_id,
        )
        if devtlb_inval is not None:
            self.stats.injected_faults += 1
            self.devtlb.invalidate_all()
            injector.acknowledge(devtlb_inval, action="devtlb-invalidated")
        iotlb_inval = injector.fire(
            FaultSite.IOTLB_INVALIDATE,
            timestamp=timestamp,
            pasid=descriptor.pasid,
            engine_id=self.engine_id,
        )
        if iotlb_inval is not None:
            self.stats.injected_faults += 1
            self.agent.iotlb.invalidate_all()
            injector.acknowledge(iotlb_inval, action="iotlb-invalidated")
        event = injector.fire(
            FaultSite.ENGINE_STALL,
            timestamp=timestamp,
            pasid=descriptor.pasid,
            engine_id=self.engine_id,
        )
        if event is not None:
            self.stats.injected_faults += 1
            stall = event.magnitude_cycles
            self.stats.injected_stall_cycles += stall
            injector.acknowledge(event, action="engine-stalled")
        return stall

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def _translate_stream(
        self, access: FieldAccess, pasid: int, timestamp: int
    ) -> tuple[int, int, int]:
        """Translate the page segments of one field stream.

        Returns ``(cycles, devtlb_hits, devtlb_misses)``.

        * The **first** page goes through the precise DevTLB + ATS path
          and its cost is charged (this is the entire stream for every
          probe descriptor).
        * Later pages update the DevTLB counters and leave the **final**
          page cached (single-slot eviction), but their translation
          latency hides behind data streaming and the per-page IOTLB
          walk is skipped.
        """
        timing = self.timing
        pages = access.pages()
        space = self.agent.pasid_table.lookup(pasid)
        if self.coverage_probe is not None:
            span = "multi" if len(pages) > 1 else "single"
            self.coverage_probe(
                "engine.stream", f"{access.field_type.value}:{span}"
            )

        first_va = access.address
        huge = space.is_mapped(first_va) and space.page_is_huge(first_va)
        cycles = 0
        hits = 0
        misses = 0
        if self.devtlb.access(self.engine_id, access.field_type, pages[0], pasid, huge=huge):
            cycles += timing.devtlb_hit_cycles
            hits += 1
        else:
            misses += 1
            cycles += timing.ats_request_cycles
            result = self.agent.translate(pasid, first_va, write=access.write, timestamp=timestamp)
            cycles += result.cycles

        extra = len(pages) - 1
        if extra > 0:
            last_va = pages[-1] << PAGE_SHIFT
            if not space.is_mapped(last_va):
                # Surface faults on the stream's tail even though the
                # middle pages are charged arithmetically.
                self.agent.translate(pasid, last_va, write=access.write, timestamp=timestamp)
            misses += extra
            self.devtlb.stats.alloc_requests += extra
            self.devtlb.engine_stats(self.engine_id).alloc_requests += extra
            self.devtlb.fill(self.engine_id, access.field_type, pages[-1], pasid)
        return cycles, hits, misses

    # ------------------------------------------------------------------
    # Data semantics
    # ------------------------------------------------------------------
    def _perform_operation(self, descriptor: Descriptor) -> CompletionRecord:
        """Execute the data operation and build its completion record."""
        space = self.agent.pasid_table.lookup(descriptor.pasid)
        op = descriptor.opcode
        size = descriptor.size
        move_data = size <= self.timing.data_move_limit

        if op in (Opcode.NOOP, Opcode.DRAIN):
            return CompletionRecord(status=CompletionStatus.SUCCESS)

        if op is Opcode.MEMMOVE:
            if move_data:
                space.write(descriptor.dst, space.read(descriptor.src, size))
            return CompletionRecord(status=CompletionStatus.SUCCESS, bytes_completed=size)

        if op is Opcode.FILL:
            if move_data:
                space.write(descriptor.dst, bytes([descriptor.src & 0xFF]) * size)
            return CompletionRecord(status=CompletionStatus.SUCCESS, bytes_completed=size)

        if op in (Opcode.COMPARE, Opcode.COMPVAL):
            left = space.read(descriptor.src, size)
            right = space.read(descriptor.src2, size)
            if left == right:
                return CompletionRecord(
                    status=CompletionStatus.SUCCESS, result=0, bytes_completed=size
                )
            mismatch = next(i for i, (a, b) in enumerate(zip(left, right)) if a != b)
            return CompletionRecord(
                status=CompletionStatus.SUCCESS, result=1, bytes_completed=mismatch
            )

        if op is Opcode.DUALCAST:
            if move_data:
                data = space.read(descriptor.src, size)
                space.write(descriptor.dst, data)
                space.write(descriptor.dst2, data)
            return CompletionRecord(status=CompletionStatus.SUCCESS, bytes_completed=size)

        if op is Opcode.CRCGEN:
            crc = zlib.crc32(space.read(descriptor.src, size))
            return CompletionRecord(
                status=CompletionStatus.SUCCESS, result=crc, bytes_completed=size
            )

        if op is Opcode.COPY_CRC:
            data = space.read(descriptor.src, size)
            if move_data:
                space.write(descriptor.dst, data)
            return CompletionRecord(
                status=CompletionStatus.SUCCESS,
                result=zlib.crc32(data),
                bytes_completed=size,
            )

        if op is Opcode.CREATE_DELTA:
            return self._create_delta(descriptor, space)

        if op is Opcode.APPLY_DELTA:
            return self._apply_delta(descriptor, space)

        if op in (Opcode.DIF_CHECK, Opcode.DIF_INSERT, Opcode.DIF_STRIP):
            return self._dif_operation(descriptor, space)

        return CompletionRecord(status=CompletionStatus.INVALID_DESCRIPTOR)

    # ------------------------------------------------------------------
    # T10-DIF data-integrity operations
    # ------------------------------------------------------------------
    #: Data block and protection-information sizes (T10 PI).
    DIF_BLOCK = 512
    DIF_PI = 8

    @classmethod
    def _dif_guard(cls, block: bytes) -> bytes:
        """8-byte PI tuple for one block: guard (16-bit CRC model), app
        tag (zero), reference tag (block index filled by the caller)."""
        guard = zlib.crc32(block) & 0xFFFF
        return guard.to_bytes(2, "little")

    def _dif_operation(self, descriptor: Descriptor, space) -> CompletionRecord:
        op = descriptor.opcode
        block = self.DIF_BLOCK
        stride = block + self.DIF_PI
        size = descriptor.size

        if op is Opcode.DIF_INSERT:
            if size % block:
                return CompletionRecord(status=CompletionStatus.INVALID_DESCRIPTOR)
            data = space.read(descriptor.src, size)
            out = bytearray()
            for index in range(size // block):
                chunk = data[index * block : (index + 1) * block]
                out += chunk
                out += self._dif_guard(chunk)
                out += b"\x00\x00"  # application tag
                out += index.to_bytes(4, "little")  # reference tag
            space.write(descriptor.dst, bytes(out))
            return CompletionRecord(status=CompletionStatus.SUCCESS, bytes_completed=size)

        if size % stride:
            return CompletionRecord(status=CompletionStatus.INVALID_DESCRIPTOR)
        data = space.read(descriptor.src, size)
        blocks = size // stride
        if op is Opcode.DIF_STRIP:
            out = b"".join(
                data[index * stride : index * stride + block] for index in range(blocks)
            )
            space.write(descriptor.dst, out)
            return CompletionRecord(status=CompletionStatus.SUCCESS, bytes_completed=size)

        # DIF_CHECK: validate guard and reference tags.
        for index in range(blocks):
            chunk = data[index * stride : index * stride + block]
            pi = data[index * stride + block : (index + 1) * stride]
            guard_ok = pi[:2] == self._dif_guard(chunk)
            ref_ok = int.from_bytes(pi[4:8], "little") == index
            if not (guard_ok and ref_ok):
                return CompletionRecord(
                    status=CompletionStatus.SUCCESS,
                    result=1,
                    bytes_completed=index * stride,
                )
        return CompletionRecord(
            status=CompletionStatus.SUCCESS, result=0, bytes_completed=size
        )

    @staticmethod
    def _create_delta(descriptor: Descriptor, space) -> CompletionRecord:
        """Diff src against src2 in 8-byte words; write the delta to dst2.

        Delta entry wire format: ``<IQ`` — a 32-bit word offset followed by
        the 8-byte replacement value from ``src2``.
        """
        import struct

        size = descriptor.size - descriptor.size % 8
        left = space.read(descriptor.src, size)
        right = space.read(descriptor.src2, size)
        entries = []
        for offset in range(0, size, 8):
            if left[offset : offset + 8] != right[offset : offset + 8]:
                entries.append(
                    struct.pack(
                        "<IQ",
                        offset // 8,
                        int.from_bytes(right[offset : offset + 8], "little"),
                    )
                )
        delta = b"".join(entries)
        if delta:
            space.write(descriptor.dst2, delta)
        return CompletionRecord(
            status=CompletionStatus.SUCCESS, result=len(delta), bytes_completed=size
        )

    @staticmethod
    def _apply_delta(descriptor: Descriptor, space) -> CompletionRecord:
        """Apply a delta record at ``src`` (length ``size``) onto ``dst``."""
        import struct

        raw = space.read(descriptor.src, descriptor.size - descriptor.size % 12)
        for start in range(0, len(raw), 12):
            word_offset, value = struct.unpack("<IQ", raw[start : start + 12])
            space.write(descriptor.dst + word_offset * 8, value.to_bytes(8, "little"))
        return CompletionRecord(
            status=CompletionStatus.SUCCESS, bytes_completed=len(raw)
        )
