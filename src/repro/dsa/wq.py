"""Work queues.

Section IV-A's reverse engineering: all software-visible work queues live
in **one hardware queue** partitioned into virtual queues by configuration
registers; each virtual queue's occupancy is tracked in per-queue
registers and checked against the configuration at enqueue time, which is
what makes the full/not-full answer of DMWr constant-time.

:class:`WorkQueue` models one virtual queue; :class:`HardwareQueueSpace`
enforces that configured sizes fit the physical entry storage (128 entries
on the real device).
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass

from repro.dsa.descriptor import BatchDescriptor, Descriptor
from repro.errors import QueueConfigurationError
from repro.faults.canary import CANARY_WQ_CREDIT, canary_active

#: Physical descriptor-entry storage shared by all virtual queues.
TOTAL_WQ_ENTRIES = 128


class WqMode(enum.Enum):
    """Queue submission mode."""

    SHARED = "shared"  # enqcmd/DMWr, multi-PASID
    DEDICATED = "dedicated"  # movdir64b, single client


@dataclass(frozen=True)
class WorkQueueConfig:
    """Configuration registers of one virtual queue."""

    wq_id: int
    size: int
    mode: WqMode = WqMode.SHARED
    priority: int = 0
    group_id: int = 0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise QueueConfigurationError(
                f"WQ {self.wq_id}: size must be at least 1, got {self.size}"
            )
        if not 0 <= self.priority <= 15:
            raise QueueConfigurationError(
                f"WQ {self.wq_id}: priority must be 0-15, got {self.priority}"
            )


@dataclass(frozen=True)
class QueuedEntry:
    """A descriptor waiting in a virtual queue."""

    descriptor: Descriptor | BatchDescriptor
    enqueue_time: int
    sequence: int


class WorkQueue:
    """One virtual work queue carved out of the hardware queue."""

    def __init__(self, config: WorkQueueConfig) -> None:
        self.config = config
        self._entries: deque[QueuedEntry] = deque()
        self._outstanding = 0
        self._sequence = 0
        self.enqueued_total = 0
        self.rejected_total = 0
        self.max_occupancy_seen = 0
        #: Optional ``(site, token)`` callback installed by the fuzzer's
        #: coverage map (:meth:`repro.fuzz.coverage.CoverageMap.install`).
        self.coverage_probe = None

    @property
    def wq_id(self) -> int:
        """Queue identifier (portal index)."""
        return self.config.wq_id

    @property
    def occupancy(self) -> int:
        """Slots in use (the per-queue occupancy register).

        A slot is held from acceptance until the descriptor *completes* —
        a dispatched-but-executing descriptor still anchors its entry,
        which is why the SWQ attack's large head descriptor keeps the
        queue congested (Section V-C: "anchor the head of the SWQ").
        """
        return self._outstanding

    @property
    def queued(self) -> int:
        """Descriptors accepted but not yet dispatched to an engine."""
        return len(self._entries)

    @property
    def is_full(self) -> bool:
        """Constant-time full check, as the enqueue path performs it."""
        return self._outstanding >= self.config.size

    @property
    def free_slots(self) -> int:
        """Remaining capacity."""
        return self.config.size - self._outstanding

    def try_enqueue(
        self, descriptor: Descriptor | BatchDescriptor, time: int
    ) -> QueuedEntry | None:
        """Enqueue *descriptor* at *time*; return ``None`` when full.

        A ``None`` return is the DMWr *retry* answer that sets
        ``EFLAGS.ZF`` for the submitter.
        """
        if self.is_full:
            self.rejected_total += 1
            if isinstance(descriptor, BatchDescriptor) and canary_active(
                CANARY_WQ_CREDIT
            ):
                # Seeded canary bug (REPRO_FUZZ_CANARY=wq-credit): the
                # rejected batch still charges a slot credit, leaking
                # occupancy the wq-credits ledger audit must catch.
                self._outstanding += 1
            if self.coverage_probe is not None:
                self.coverage_probe(
                    "wq.enqueue", f"{self.config.mode.value}:full"
                )
            return None
        entry = QueuedEntry(descriptor=descriptor, enqueue_time=time, sequence=self._sequence)
        self._sequence += 1
        self._entries.append(entry)
        self._outstanding += 1
        self.enqueued_total += 1
        self.max_occupancy_seen = max(self.max_occupancy_seen, self._outstanding)
        if self.coverage_probe is not None:
            # Quartile-bucketed occupancy makes "accepted while nearly
            # full" a distinct coverage feature from "accepted empty".
            quartile = min(3, 4 * self._outstanding // self.config.size)
            self.coverage_probe(
                "wq.enqueue", f"{self.config.mode.value}:q{quartile}"
            )
        return entry

    def release_slot(self) -> None:
        """Free one slot (called by the device at descriptor completion)."""
        if self._outstanding <= 0:
            raise QueueConfigurationError(
                f"WQ {self.wq_id}: slot release without an outstanding entry"
            )
        self._outstanding -= 1

    def peek(self) -> QueuedEntry | None:
        """Oldest waiting entry, or ``None``."""
        return self._entries[0] if self._entries else None

    def pop(self) -> QueuedEntry:
        """Remove and return the oldest entry (dispatch to an engine)."""
        if not self._entries:
            raise IndexError(f"WQ {self.wq_id} is empty")
        return self._entries.popleft()

    def drain_pending(self) -> list[QueuedEntry]:
        """Remove and return everything still queued (device disable)."""
        entries = list(self._entries)
        self._entries.clear()
        self._outstanding -= len(entries)
        if self.coverage_probe is not None:
            self.coverage_probe(
                "wq.drain", "aborted" if entries else "empty"
            )
        return entries

    def __len__(self) -> int:
        return len(self._entries)


class HardwareQueueSpace:
    """The physical entry storage all virtual queues share."""

    def __init__(self, total_entries: int = TOTAL_WQ_ENTRIES) -> None:
        if total_entries < 1:
            raise QueueConfigurationError("hardware queue needs at least one entry")
        self.total_entries = total_entries
        self._queues: dict[int, WorkQueue] = {}

    def configure(self, config: WorkQueueConfig) -> WorkQueue:
        """Create a virtual queue, enforcing the storage budget."""
        if config.wq_id in self._queues:
            raise QueueConfigurationError(f"WQ {config.wq_id} already configured")
        used = sum(q.config.size for q in self._queues.values())
        if used + config.size > self.total_entries:
            raise QueueConfigurationError(
                f"WQ sizes would exceed hardware storage: "
                f"{used} + {config.size} > {self.total_entries}"
            )
        queue = WorkQueue(config)
        self._queues[config.wq_id] = queue
        return queue

    def remove(self, wq_id: int) -> None:
        """Tear down a virtual queue and release its storage."""
        if self._queues.pop(wq_id, None) is None:
            raise QueueConfigurationError(f"WQ {wq_id} is not configured")

    def get(self, wq_id: int) -> WorkQueue:
        """Return the virtual queue *wq_id*."""
        queue = self._queues.get(wq_id)
        if queue is None:
            raise QueueConfigurationError(f"WQ {wq_id} is not configured")
        return queue

    def queues(self) -> list[WorkQueue]:
        """All configured queues, by id."""
        return [self._queues[k] for k in sorted(self._queues)]

    @property
    def entries_configured(self) -> int:
        """Entry storage currently assigned to virtual queues."""
        return sum(q.config.size for q in self._queues.values())
