"""The DSA device: queues, engines, groups, and the dispatch loop.

The device is *event-timestamped*: software interactions (portal writes,
completion polls) carry the shared TSC time, and :meth:`DsaDevice.advance_to`
lazily replays queue dispatch and descriptor retirement up to that time.
This keeps million-probe attack traces fast while preserving the ordering
that matters — queue occupancy at enqueue time, arbiter choices, DevTLB
mutation order, and the in-flight byte window that produces the paper's
congestion behavior.

Work-queue/engine topology follows the real device's *group* concept: a
group is a set of work queues feeding a set of engines.  Cross-group
resources never interact (which is what experiment E2 demonstrates for the
DevTLB at the engine level).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ats.agent import TranslationAgent
from repro.ats.devtlb import DevTlb, DevTlbConfig
from repro.ats.iotlb import IoTlb
from repro.ats.pasid import PasidTable
from repro.ats.prs import PageRequestService
from repro.dsa.arbiter import Arbiter, ArbiterChoice, ArbiterPolicy, BatchBufferEntry
from repro.dsa.batch import BatchFetcher
from repro.dsa.completion import CompletionRecord, CompletionStatus
from repro.dsa.descriptor import BatchDescriptor, Descriptor
from repro.dsa.engine import Engine, EngineTiming
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.dsa.wq import HardwareQueueSpace, WorkQueue, WorkQueueConfig
from repro.errors import ConfigurationError, QueueConfigurationError
from repro.faults.plan import FaultSite
from repro.hw.clock import TscClock
from repro.hw.memory import PhysicalMemory
from repro.hw.noise import Environment, noise_model_for
from repro.hw.pcie import PcieLink


@dataclass
class SubmissionTicket:
    """Tracks one submitted descriptor through dispatch and completion."""

    descriptor: Descriptor | BatchDescriptor
    wq_id: int | None
    enqueue_time: int
    dispatch_time: int | None = None
    completion_time: int | None = None
    engine_id: int | None = None
    record: CompletionRecord | None = None
    pending_record: CompletionRecord | None = None
    devtlb_hits: int = 0
    devtlb_misses: int = 0
    children_pending: int = 0
    parent: "SubmissionTicket | None" = None
    #: Device-wide monotonic id, used by the exactly-once completion
    #: invariant (``-1`` for tickets that never reached the device).
    ticket_id: int = -1

    @property
    def completed(self) -> bool:
        """Whether the completion record has been written."""
        return self.record is not None


@dataclass(frozen=True)
class GroupConfig:
    """One DSA group: which engines serve which work queues."""

    group_id: int
    engine_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.engine_ids:
            raise QueueConfigurationError(
                f"group {self.group_id} must contain at least one engine"
            )


@dataclass(frozen=True)
class InterruptEvent:
    """One completion interrupt (REQUEST_COMPLETION_INTERRUPT flag)."""

    timestamp: int
    pasid: int
    interrupt_handle: int


@dataclass
class DeviceStats:
    """Aggregate device counters."""

    submissions_accepted: int = 0
    submissions_retried: int = 0
    descriptors_completed: int = 0
    interrupts_raised: int = 0
    injected_wq_drains: int = 0
    injected_drain_aborts: int = 0


@dataclass(frozen=True)
class DsaDeviceConfig:
    """Structural configuration of a :class:`DsaDevice`."""

    engine_count: int = 4
    total_wq_entries: int = 128
    devtlb: DevTlbConfig = field(default_factory=DevTlbConfig)
    timing: EngineTiming = field(default_factory=EngineTiming)
    arbiter_policy: ArbiterPolicy = ArbiterPolicy.WQ_PRIORITY
    environment: Environment = Environment.LOCAL
    #: Section VII hardware mitigation: hide the DMWr accept/retry answer
    #: from unprivileged submitters (the hardware retries internally in a
    #: constant-time slot and ZF always reads 0).
    dmwr_privileged: bool = False


class DsaDevice:
    """A behavioral Intel DSA.

    Parameters
    ----------
    memory:
        Host physical memory (shared with all guests).
    clock:
        The shared TSC.
    rng:
        Seeded generator for all stochastic latency.
    config:
        Structural configuration.
    """

    def __init__(
        self,
        memory: PhysicalMemory,
        clock: TscClock,
        rng: np.random.Generator,
        config: DsaDeviceConfig | None = None,
    ) -> None:
        self.memory = memory
        self.clock = clock
        self.rng = rng
        self.config = config or DsaDeviceConfig()

        self.pasid_table = PasidTable()
        self.prs = PageRequestService()
        self.agent = TranslationAgent(self.pasid_table, IoTlb(), self.prs)
        self.devtlb = DevTlb(self.config.devtlb)
        self.link = PcieLink(rng=rng, environment=self.config.environment)
        self.fetcher = BatchFetcher(self.agent)
        self.arbiter = Arbiter(self.config.arbiter_policy)
        self.queue_space = HardwareQueueSpace(self.config.total_wq_entries)
        self.stats = DeviceStats()

        noise = noise_model_for(self.config.environment)
        self.engines: dict[int, Engine] = {
            engine_id: Engine(
                engine_id=engine_id,
                devtlb=self.devtlb,
                agent=self.agent,
                noise=noise,
                rng=rng,
                timing=self.config.timing,
            )
            for engine_id in range(self.config.engine_count)
        }
        self._groups: dict[int, GroupConfig] = {}
        self._batch_buffers: dict[int, list[BatchBufferEntry]] = {
            engine_id: [] for engine_id in self.engines
        }
        self._batch_sequence = 0
        self._tickets: dict[tuple[int, int], SubmissionTicket] = {}
        self._ticket_sequence = 0
        self._pending_work = 0  # entries awaiting dispatch (fast-path gate)
        self._time = 0
        self.interrupt_log: list[InterruptEvent] = []
        self.fault_injector = None
        self.invariant_monitor = None

    # ------------------------------------------------------------------
    # Configuration (root-only paths are gated by AccelConfig)
    # ------------------------------------------------------------------
    def configure_group(self, group_id: int, engine_ids: tuple[int, ...] | list[int]) -> None:
        """Assign *engine_ids* to group *group_id*."""
        engine_ids = tuple(engine_ids)
        for engine_id in engine_ids:
            if engine_id not in self.engines:
                raise ConfigurationError(f"engine {engine_id} does not exist")
            for other in self._groups.values():
                if other.group_id != group_id and engine_id in other.engine_ids:
                    raise QueueConfigurationError(
                        f"engine {engine_id} already belongs to group {other.group_id}"
                    )
        self._groups[group_id] = GroupConfig(group_id=group_id, engine_ids=engine_ids)

    def configure_wq(self, wq_config: WorkQueueConfig) -> WorkQueue:
        """Create a virtual work queue (its group must exist)."""
        if wq_config.group_id not in self._groups:
            raise QueueConfigurationError(
                f"WQ {wq_config.wq_id} references unknown group {wq_config.group_id}"
            )
        return self.queue_space.configure(wq_config)

    def bind_process(self, pasid: int, address_space) -> None:
        """Install a PASID → page-table binding (device open path)."""
        self.pasid_table.bind(pasid, address_space)

    def group_of_wq(self, wq_id: int) -> GroupConfig:
        """The group serving *wq_id*."""
        wq = self.queue_space.get(wq_id)
        return self._groups[wq.config.group_id]

    def groups(self) -> list[GroupConfig]:
        """All configured groups, by id."""
        return [self._groups[key] for key in sorted(self._groups)]

    @property
    def environment(self) -> Environment:
        """Host environment (noise model selector)."""
        return self.link.environment

    def set_environment(self, environment: Environment) -> None:
        """Switch noise environment for the link and every engine."""
        self.link.set_environment(environment)
        noise = noise_model_for(environment)
        for engine in self.engines.values():
            engine.noise = noise

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, wq_id: int, descriptor: Descriptor | BatchDescriptor, time: int
    ) -> tuple[bool, SubmissionTicket | None]:
        """Try to enqueue *descriptor* at *time*.

        Returns ``(zf, ticket)``: ``zf`` is ``True`` when the queue was
        full (the DMWr retry answer) and the descriptor was **not**
        accepted.
        """
        self.advance_to(time)
        descriptor.validate()
        if self.fault_injector is not None:
            drain = self.fault_injector.fire(
                FaultSite.WQ_DRAIN, timestamp=time, pasid=descriptor.pasid, wq_id=wq_id
            )
            if drain is not None:
                # Mid-flight drain/disable: queued descriptors abort (the
                # idxd WQ-disable path), then the queue resumes service —
                # including for the submission that triggered the
                # opportunity.
                self.stats.injected_wq_drains += 1
                self.stats.injected_drain_aborts += self.disable_wq(wq_id)
                self.fault_injector.acknowledge(drain, action="wq-disable")
        wq = self.queue_space.get(wq_id)
        entry = wq.try_enqueue(descriptor, time)
        if entry is None:
            self.stats.submissions_retried += 1
            if self.invariant_monitor is not None:
                self.invariant_monitor.note(
                    "submit", time, wq_id=wq_id, pasid=descriptor.pasid, accepted=0
                )
            return True, None
        ticket = SubmissionTicket(
            descriptor=descriptor,
            wq_id=wq_id,
            enqueue_time=time,
            ticket_id=self._ticket_sequence,
        )
        self._ticket_sequence += 1
        self._tickets[(wq_id, entry.sequence)] = ticket
        self._pending_work += 1
        self.stats.submissions_accepted += 1
        if self.invariant_monitor is not None:
            self.invariant_monitor.note(
                "submit", time, wq_id=wq_id, pasid=descriptor.pasid, accepted=1
            )
        self._dispatch_ready(time)
        return False, ticket

    # ------------------------------------------------------------------
    # Time advancement
    # ------------------------------------------------------------------
    def advance_to(self, time: int) -> None:
        """Replay dispatch and retirement up to *time*."""
        if time < self._time:
            return
        while True:
            self._dispatch_ready(time)
            next_completion = self._next_completion_time()
            if next_completion is None or next_completion > time:
                break
            self._retire_at(next_completion)
        self._time = time

    def _next_completion_time(self) -> int | None:
        best: int | None = None
        for engine in self.engines.values():
            candidate = engine.next_completion_time()
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        return best

    def _retire_at(self, time: int) -> None:
        for engine in self.engines.values():
            for token in engine.retire_due(time):
                self._complete_ticket(token, time)

    def _complete_ticket(self, ticket: SubmissionTicket, time: int) -> None:
        """Write the completion record, free the WQ slot, resolve batches."""
        descriptor = ticket.descriptor
        if isinstance(descriptor, Descriptor) and descriptor.wants_completion:
            space = self.pasid_table.lookup(descriptor.pasid)
            space.write(descriptor.completion_addr, ticket.pending_record.encode())
        if isinstance(descriptor, Descriptor) and (
            int(descriptor.flags) & int(DescriptorFlags.REQUEST_COMPLETION_INTERRUPT)
        ):
            self.interrupt_log.append(
                InterruptEvent(
                    timestamp=time,
                    pasid=descriptor.pasid,
                    interrupt_handle=descriptor.interrupt_handle,
                )
            )
            self.stats.interrupts_raised += 1
        ticket.record = ticket.pending_record
        if ticket.wq_id is not None:
            self.queue_space.get(ticket.wq_id).release_slot()
        self.stats.descriptors_completed += 1
        if self.invariant_monitor is not None:
            self.invariant_monitor.note(
                "complete",
                time,
                payload=ticket,
                wq_id=ticket.wq_id,
                engine_id=ticket.engine_id,
                pasid=descriptor.pasid,
            )
        parent = ticket.parent
        if parent is not None:
            parent.children_pending -= 1
            if parent.children_pending == 0:
                self._complete_batch_parent(parent, time)

    def _complete_batch_parent(self, parent: SubmissionTicket, time: int) -> None:
        """Batch parent record write — bypasses the DevTLB (Section IV-B)."""
        batch = parent.descriptor
        assert isinstance(batch, BatchDescriptor)
        record = CompletionRecord(status=CompletionStatus.SUCCESS, result=batch.count)
        parent.completion_time = time
        space = self.pasid_table.lookup(batch.pasid)
        if batch.completion_addr:
            space.write(batch.completion_addr, record.encode())
        parent.record = record
        if parent.wq_id is not None:
            self.queue_space.get(parent.wq_id).release_slot()
        self.stats.descriptors_completed += 1
        if self.invariant_monitor is not None:
            self.invariant_monitor.note(
                "complete",
                time,
                payload=parent,
                wq_id=parent.wq_id,
                pasid=batch.pasid,
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch_ready(self, limit: int) -> None:
        """Dispatch everything that can start at or before *limit*."""
        if not self._pending_work:
            return
        progressed = True
        while progressed:
            progressed = False
            for group in self._groups.values():
                queues = [
                    queue
                    for queue in self.queue_space.queues()
                    if queue.config.group_id == group.group_id
                ]
                for engine_id in group.engine_ids:
                    if self._try_dispatch_one(group, engine_id, queues, limit):
                        progressed = True

    def _try_dispatch_one(
        self,
        group: GroupConfig,
        engine_id: int,
        queues: list[WorkQueue],
        limit: int,
    ) -> bool:
        engine = self.engines[engine_id]
        buffer = self._batch_buffers[engine_id]
        choice = self.arbiter.choose(queues, buffer, limit)
        if choice is None:
            return False

        descriptor = (
            choice.wq_entry.descriptor
            if choice.wq_entry is not None
            else choice.batch_entry.descriptor
        )

        if isinstance(descriptor, BatchDescriptor):
            return self._dispatch_batch(group, choice, queues, limit)

        start = engine.earliest_start(
            after=choice.ready_time,
            needs_idle=descriptor.opcode is Opcode.DRAIN,
        )
        if start > limit:
            return False

        monitor = self.invariant_monitor
        snapshot = self._ready_heads(queues, limit) if monitor is not None else None
        ticket = self._pop_choice(choice)
        ticket.dispatch_time = start
        ticket.engine_id = engine_id
        if monitor is not None:
            monitor.note(
                "dispatch",
                start,
                payload=snapshot,
                wq_id=choice.wq.wq_id if choice.wq is not None else None,
                priority=(
                    choice.wq.config.priority if choice.wq is not None else None
                ),
                policy=self.arbiter.policy.value,
                engine_id=engine_id,
                source="wq" if choice.wq is not None else "batch",
            )
        outcome = engine.execute(descriptor, start)
        ticket.completion_time = start + outcome.cycles
        ticket.devtlb_hits = outcome.devtlb_hits
        ticket.devtlb_misses = outcome.devtlb_misses
        ticket.pending_record = outcome.record
        engine.admit(completion_time=ticket.completion_time, token=ticket)
        return True

    def _dispatch_batch(
        self,
        group: GroupConfig,
        choice: ArbiterChoice,
        queues: list[WorkQueue],
        limit: int,
    ) -> bool:
        """Hand a batch descriptor to the batch engine (fetcher)."""
        assert choice.wq_entry is not None, "batches only arrive via work queues"
        start = choice.ready_time
        if start > limit:
            return False
        monitor = self.invariant_monitor
        snapshot = self._ready_heads(queues, limit) if monitor is not None else None
        ticket = self._pop_choice(choice)
        batch = ticket.descriptor
        assert isinstance(batch, BatchDescriptor)
        ticket.dispatch_time = start
        if monitor is not None:
            assert choice.wq is not None
            monitor.note(
                "dispatch",
                start,
                payload=snapshot,
                wq_id=choice.wq.wq_id,
                priority=choice.wq.config.priority,
                policy=self.arbiter.policy.value,
                source="batch-parent",
            )
        result = self.fetcher.fetch(batch, start)
        available = start + result.cycles
        ticket.children_pending = len(result.descriptors)
        engine_id = group.engine_ids[self._batch_sequence % len(group.engine_ids)]
        for descriptor in result.descriptors:
            child = SubmissionTicket(
                descriptor=descriptor,
                wq_id=None,
                enqueue_time=available,
                parent=ticket,
                ticket_id=self._ticket_sequence,
            )
            self._ticket_sequence += 1
            self._batch_buffers[engine_id].append(
                BatchBufferEntry(
                    descriptor=descriptor,
                    available_time=available,
                    parent_token=child,
                    sequence=self._batch_sequence,
                )
            )
            self._batch_sequence += 1
            self._pending_work += 1
        return True

    def _ready_heads(
        self, queues: list[WorkQueue], time: int
    ) -> tuple[tuple[int, int, int], ...]:
        """Ready queue heads as ``(wq_id, priority, enqueue_time)`` triples.

        The arbiter-fairness invariant compares this snapshot (taken at
        choice time, before the chosen entry is popped) against the
        dispatched descriptor.
        """
        heads = []
        for queue in queues:
            entry = queue.peek()
            if entry is not None and entry.enqueue_time <= time:
                heads.append(
                    (queue.wq_id, queue.config.priority, entry.enqueue_time)
                )
        return tuple(heads)

    def _pop_choice(self, choice: ArbiterChoice) -> SubmissionTicket:
        """Remove the chosen entry from its source and return its ticket."""
        self._pending_work -= 1
        if choice.wq_entry is not None:
            assert choice.wq is not None
            entry = choice.wq.pop()
            assert entry is choice.wq_entry, "arbiter raced the queue"
            return self._tickets.pop((choice.wq.wq_id, entry.sequence))
        assert choice.batch_entry is not None
        for engine_buffer in self._batch_buffers.values():
            if choice.batch_entry in engine_buffer:
                engine_buffer.remove(choice.batch_entry)
                return choice.batch_entry.parent_token
        raise AssertionError("batch entry vanished from every buffer")

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def wq(self, wq_id: int) -> WorkQueue:
        """Return the virtual work queue *wq_id*."""
        return self.queue_space.get(wq_id)

    def disable_wq(self, wq_id: int) -> int:
        """Disable a queue: abort undispatched entries, free their slots.

        Mirrors the idxd driver's WQ-disable path: descriptors already on
        an engine run to completion; queued ones are aborted with an
        ``ABORT`` completion status so pollers do not hang.  Returns the
        number of aborted descriptors.
        """
        queue = self.queue_space.get(wq_id)
        aborted = 0
        for entry in queue.drain_pending():
            ticket = self._tickets.pop((wq_id, entry.sequence), None)
            self._pending_work -= 1
            descriptor = entry.descriptor
            record = CompletionRecord(status=CompletionStatus.ABORT)
            if isinstance(descriptor, Descriptor) and descriptor.wants_completion:
                space = self.pasid_table.lookup(descriptor.pasid)
                space.write(descriptor.completion_addr, record.encode())
            if ticket is not None:
                ticket.completion_time = self._time
                ticket.record = record
            aborted += 1
        if self.invariant_monitor is not None:
            self.invariant_monitor.note(
                "drain", self._time, wq_id=wq_id, aborted=aborted
            )
        return aborted

    @property
    def time(self) -> int:
        """Device-local replay time (<= the shared clock)."""
        return self._time
