"""``accel-config`` emulation.

The idxd userspace tool.  The privilege split mirrors the paper's threat
model (Section V-A): *reading* queue attributes — crucially ``wq_size``,
which the SWQ attack needs — requires no root, while *configuring*
groups, queues, and engine bindings does.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsa.device import DsaDevice
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.errors import PermissionDeniedError


@dataclass(frozen=True)
class WqInfo:
    """Read-only view of one work queue's attributes."""

    wq_id: int
    size: int
    mode: WqMode
    priority: int
    group_id: int
    occupancy: int


class AccelConfig:
    """User-space configuration interface to one DSA instance."""

    def __init__(self, device: DsaDevice, privileged: bool = False) -> None:
        self.device = device
        self.privileged = privileged

    # ------------------------------------------------------------------
    # Unprivileged reads
    # ------------------------------------------------------------------
    def wq_size(self, wq_id: int) -> int:
        """Queue capacity — readable without root (Section IV-C)."""
        return self.device.wq(wq_id).config.size

    def wq_info(self, wq_id: int) -> WqInfo:
        """All read-only attributes of one queue."""
        wq = self.device.wq(wq_id)
        return WqInfo(
            wq_id=wq.wq_id,
            size=wq.config.size,
            mode=wq.config.mode,
            priority=wq.config.priority,
            group_id=wq.config.group_id,
            occupancy=wq.occupancy,
        )

    def list_wqs(self) -> list[WqInfo]:
        """Every configured queue."""
        return [self.wq_info(q.wq_id) for q in self.device.queue_space.queues()]

    def list_engines(self) -> list[int]:
        """Engine ids present on the device."""
        return sorted(self.device.engines)

    # ------------------------------------------------------------------
    # Privileged configuration
    # ------------------------------------------------------------------
    def _check(self) -> None:
        if not self.privileged:
            raise PermissionDeniedError(
                "configuring DSA groups/queues through the idxd driver "
                "requires root"
            )

    def configure_group(self, group_id: int, engine_ids: list[int]) -> None:
        """Create or replace a group's engine set (root only)."""
        self._check()
        self.device.configure_group(group_id, tuple(engine_ids))

    def configure_wq(
        self,
        wq_id: int,
        size: int,
        mode: WqMode = WqMode.SHARED,
        priority: int = 0,
        group_id: int = 0,
    ) -> None:
        """Create a work queue (root only)."""
        self._check()
        self.device.configure_wq(
            WorkQueueConfig(
                wq_id=wq_id, size=size, mode=mode, priority=priority, group_id=group_id
            )
        )

    def remove_wq(self, wq_id: int) -> None:
        """Tear down a work queue (root only)."""
        self._check()
        self.device.queue_space.remove(wq_id)
