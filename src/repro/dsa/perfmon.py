"""The DSA Perfmon block (Table I of the paper).

Perfmon is the device-level performance-counter unit the paper uses for
reverse engineering.  It is reachable only through the kernel ``perf``
interface, i.e. **root-only** — which is why the attacks themselves never
touch it and rely on ``rdtsc`` and ``EFLAGS.ZF`` instead.  The model
enforces that boundary with an explicit privilege check.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ats.devtlb import DevTlbStats
from repro.dsa.device import DsaDevice
from repro.errors import ConfigurationError, PermissionDeniedError


@dataclass(frozen=True)
class PerfmonEvent:
    """One countable event."""

    name: str
    category: int
    code: int
    description: str


#: Table I — the DevTLB events.
EV_ATC_ALLOC = PerfmonEvent("EV_ATC_ALLOC", 0x2, 0x40, "# requests to DevTLB")
EV_ATC_NO_ALLOC = PerfmonEvent("EV_ATC_NO_ALLOC", 0x2, 0x80, "# not allocated entry")
EV_ATC_HIT_PREV = PerfmonEvent("EV_ATC_HIT_PREV", 0x2, 0x100, "# hit of entry")

EVENTS: dict[str, PerfmonEvent] = {
    event.name: event for event in (EV_ATC_ALLOC, EV_ATC_NO_ALLOC, EV_ATC_HIT_PREV)
}


class Perfmon:
    """Privileged access to the device counter block.

    Parameters
    ----------
    device:
        The DSA to monitor.
    privileged:
        Whether the opener holds root; unprivileged reads raise
        :class:`~repro.errors.PermissionDeniedError`.
    """

    def __init__(self, device: DsaDevice, privileged: bool = False) -> None:
        self.device = device
        self.privileged = privileged

    def _check(self) -> None:
        if not self.privileged:
            raise PermissionDeniedError(
                "Perfmon is exposed via the kernel perf interface and "
                "requires a privileged user"
            )

    def read(self, event: str | PerfmonEvent, engine_id: int | None = None) -> int:
        """Read one counter, device-wide or for a single engine."""
        self._check()
        name = event.name if isinstance(event, PerfmonEvent) else event
        if name not in EVENTS:
            raise ConfigurationError(f"unknown Perfmon event {name!r}")
        stats = self._stats(engine_id)
        if name == "EV_ATC_ALLOC":
            return stats.alloc_requests
        if name == "EV_ATC_NO_ALLOC":
            return stats.no_alloc
        return stats.hits

    def snapshot(self, engine_id: int | None = None) -> dict[str, int]:
        """Read all events at once."""
        self._check()
        stats = self._stats(engine_id)
        return {
            "EV_ATC_ALLOC": stats.alloc_requests,
            "EV_ATC_NO_ALLOC": stats.no_alloc,
            "EV_ATC_HIT_PREV": stats.hits,
        }

    def _stats(self, engine_id: int | None) -> DevTlbStats:
        if engine_id is None:
            return self.device.devtlb.stats
        if engine_id not in self.device.engines:
            raise ConfigurationError(f"engine {engine_id} does not exist")
        return self.device.devtlb.engine_stats(engine_id)
