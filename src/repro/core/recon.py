"""Target reconnaissance: which engine / SWQ does the victim use?

Section VI-C: *"the adversary first identifies the SWQ or engine used by
the victim.  One approach is to initiate a temporary SSH connection
while concurrently probing candidate SWQs from a separate process."*
This module implements that step for both primitives:

* :func:`find_victim_engine` — run a DevTLB Prime+Probe observer on each
  candidate queue (hence each engine) while a caller-supplied *trigger*
  provokes victim activity (e.g. opening an SSH connection); the engine
  whose observer records evictions hosts the victim.
* :func:`find_victim_swq` — same idea with Congest+Probe per candidate
  shared queue.

Both are unprivileged: binding to a queue and submitting descriptors is
all they need.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.errors import ConfigurationError
from repro.hw.units import us_to_cycles
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline

#: A callable that provokes victim DSA activity (e.g. opens a
#: connection, sends a request).  Called once per observation window.
VictimTrigger = Callable[[], None]


@dataclass(frozen=True)
class ReconObservation:
    """Score for one candidate queue."""

    wq_id: int
    windows: int
    hits: int

    @property
    def hit_rate(self) -> float:
        """Fraction of trigger windows with observed activity."""
        return self.hits / self.windows if self.windows else 0.0


@dataclass(frozen=True)
class ReconResult:
    """Scores for all candidates plus the verdict."""

    observations: tuple[ReconObservation, ...]

    @property
    def best(self) -> ReconObservation:
        """The candidate with the most activity."""
        return max(self.observations, key=lambda o: o.hit_rate)

    @property
    def confident(self) -> bool:
        """The winner clearly separates from the runner-up."""
        ranked = sorted(self.observations, key=lambda o: o.hit_rate, reverse=True)
        if len(ranked) == 1:
            return ranked[0].hit_rate > 0.5
        return ranked[0].hit_rate > 0.5 and ranked[0].hit_rate >= 2 * ranked[1].hit_rate


def find_victim_engine(
    attacker: GuestProcess,
    candidate_wqs: list[int],
    trigger: VictimTrigger,
    timeline: Timeline,
    windows: int = 6,
    settle_us: float = 300.0,
) -> ReconResult:
    """Locate the victim's engine with DevTLB observers.

    The attacker must have opened a portal on every candidate queue
    (queues on distinct engines give engine-level resolution).
    """
    if not candidate_wqs:
        raise ConfigurationError("no candidate queues to probe")
    observations = []
    for wq_id in candidate_wqs:
        attack = DsaDevTlbAttack(attacker, wq_id=wq_id)
        attack.calibrate(samples=30)
        hits = 0
        for _ in range(windows):
            attack.prime()
            trigger()
            timeline.idle_until(timeline.clock.now + us_to_cycles(settle_us))
            if attack.probe().evicted:
                hits += 1
        observations.append(
            ReconObservation(wq_id=wq_id, windows=windows, hits=hits)
        )
    return ReconResult(observations=tuple(observations))


def find_victim_swq(
    attacker: GuestProcess,
    candidate_wqs: list[int],
    trigger: VictimTrigger,
    timeline: Timeline,
    windows: int = 6,
    idle_us: float = 300.0,
    anchor_bytes: int | None = None,
) -> ReconResult:
    """Locate the victim's shared queue with Congest+Probe observers.

    The anchor must outlive the idle window (the paper's step-2 rule), so
    its default size scales with *idle_us*.
    """
    if not candidate_wqs:
        raise ConfigurationError("no candidate queues to probe")
    if anchor_bytes is None:
        # Execution spans 1.5x the idle window at ~15 B/cycle.
        anchor_bytes = int(us_to_cycles(idle_us) * 1.5 * 15)
    observations = []
    for wq_id in candidate_wqs:
        attack = DsaSwqAttack(attacker, wq_id=wq_id, anchor_bytes=anchor_bytes)
        hits = 0
        for _ in range(windows):
            attack.congest()
            trigger()
            timeline.idle_until(timeline.clock.now + us_to_cycles(idle_us))
            attack.portal.device.advance_to(timeline.clock.now)
            if attack.probe():
                hits += 1
            attack.wait_drain()
            timeline.run_until(timeline.clock.now)
        observations.append(
            ReconObservation(wq_id=wq_id, windows=windows, hits=hits)
        )
    return ReconResult(observations=tuple(observations))
