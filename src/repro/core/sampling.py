"""Trace sampling: the attacker's measurement loop.

Sections VI-B/C/D all use the same recipe: sample the side channel on a
fixed period (10 µs for website fingerprinting, keystrokes; the LLM attack
uses 8 ms slots of 800 intervals) and aggregate *samples-per-slot* samples
into one slot value — the number of positive observations (DevTLB
evictions or SWQ contentions) per slot.  A sequence of slot values is one
**trace**, the classifier's input.

The samplers interleave with a :class:`~repro.virt.scheduler.Timeline`
carrying the victim's scheduled activity, so traces reflect genuine
device-level interleaving rather than post-hoc labeling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.hw.units import us_to_cycles
from repro.virt.scheduler import Timeline


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling geometry.

    Defaults match the website-fingerprinting setup: 10 µs sampling,
    400 samples per slot (~4 ms per slot), 250 slots per trace.
    """

    sample_period_us: float = 10.0
    samples_per_slot: int = 400
    slots: int = 250

    def __post_init__(self) -> None:
        if self.sample_period_us <= 0:
            raise ValueError("sample_period_us must be positive")
        if self.samples_per_slot < 1 or self.slots < 1:
            raise ValueError("samples_per_slot and slots must be >= 1")

    @property
    def slot_us(self) -> float:
        """Wall-clock duration of one slot in microseconds."""
        return self.sample_period_us * self.samples_per_slot

    @property
    def trace_us(self) -> float:
        """Wall-clock duration of a full trace in microseconds."""
        return self.slot_us * self.slots


class DevTlbSampler:
    """Collects eviction-count traces with the ``DSA_DevTLB`` primitive."""

    def __init__(
        self,
        attack: DsaDevTlbAttack,
        timeline: Timeline,
        config: SamplerConfig | None = None,
    ) -> None:
        self.attack = attack
        self.timeline = timeline
        self.config = config or SamplerConfig()

    def collect_trace(self) -> np.ndarray:
        """One trace: per-slot DevTLB miss counts (length ``slots``)."""
        config = self.config
        clock = self.timeline.clock
        period = us_to_cycles(config.sample_period_us)
        trace = np.zeros(config.slots, dtype=np.int32)
        self.attack.prime()
        next_sample = clock.now
        for slot in range(config.slots):
            count = 0
            for _ in range(config.samples_per_slot):
                next_sample += period
                self.timeline.idle_until(next_sample)
                if self.attack.probe().evicted:
                    count += 1
            trace[slot] = count
        return trace

    def collect_events(self, samples: int) -> np.ndarray:
        """Raw per-sample observations: array of (timestamp, evicted)."""
        clock = self.timeline.clock
        period = us_to_cycles(self.config.sample_period_us)
        events = np.zeros((samples, 2), dtype=np.int64)
        self.attack.prime()
        next_sample = clock.now
        for i in range(samples):
            next_sample += period
            self.timeline.idle_until(next_sample)
            outcome = self.attack.probe()
            events[i, 0] = outcome.timestamp
            events[i, 1] = int(outcome.evicted)
        return events


class SwqSampler:
    """Collects contention-count traces with the ``DSA_SWQ`` primitive.

    Each congest-idle-probe round yields one binary observation; the
    round duration is set by the anchor size, so ``samples_per_slot``
    here is the number of *rounds* aggregated per slot.
    """

    def __init__(
        self,
        attack: DsaSwqAttack,
        timeline: Timeline,
        idle_cycles: int,
        config: SamplerConfig | None = None,
    ) -> None:
        self.attack = attack
        self.timeline = timeline
        self.idle_cycles = idle_cycles
        self.config = config or SamplerConfig(samples_per_slot=8)

    def collect_trace(self) -> np.ndarray:
        """One trace: per-slot contention counts (length ``slots``)."""
        config = self.config
        trace = np.zeros(config.slots, dtype=np.int32)
        for slot in range(config.slots):
            count = 0
            for _ in range(config.samples_per_slot):
                result = self.attack.run_round(self.idle_cycles, timeline=self.timeline)
                if result.victim_detected:
                    count += 1
            trace[slot] = count
        return trace

    def collect_events(self, rounds: int) -> np.ndarray:
        """Raw per-round observations: array of (probe_timestamp, hit)."""
        events = np.zeros((rounds, 2), dtype=np.int64)
        for i in range(rounds):
            result = self.attack.run_round(self.idle_cycles, timeline=self.timeline)
            events[i, 0] = result.probe_time
            events[i, 1] = int(result.victim_detected)
        return events
