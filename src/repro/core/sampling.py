"""Trace sampling: the attacker's measurement loop.

Sections VI-B/C/D all use the same recipe: sample the side channel on a
fixed period (10 µs for website fingerprinting, keystrokes; the LLM attack
uses 8 ms slots of 800 intervals) and aggregate *samples-per-slot* samples
into one slot value — the number of positive observations (DevTLB
evictions or SWQ contentions) per slot.  A sequence of slot values is one
**trace**, the classifier's input.

The samplers interleave with a :class:`~repro.virt.scheduler.Timeline`
carrying the victim's scheduled activity, so traces reflect genuine
device-level interleaving rather than post-hoc labeling.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.hw.units import us_to_cycles
from repro.virt.scheduler import Timeline


@dataclass(frozen=True)
class SamplerConfig:
    """Sampling geometry.

    Defaults match the website-fingerprinting setup: 10 µs sampling,
    400 samples per slot (~4 ms per slot), 250 slots per trace.
    """

    sample_period_us: float = 10.0
    samples_per_slot: int = 400
    slots: int = 250

    def __post_init__(self) -> None:
        if self.sample_period_us <= 0:
            raise ValueError("sample_period_us must be positive")
        if self.samples_per_slot < 1 or self.slots < 1:
            raise ValueError("samples_per_slot and slots must be >= 1")

    @property
    def slot_us(self) -> float:
        """Wall-clock duration of one slot in microseconds."""
        return self.sample_period_us * self.samples_per_slot

    @property
    def trace_us(self) -> float:
        """Wall-clock duration of a full trace in microseconds."""
        return self.slot_us * self.slots


class DevTlbSampler:
    """Collects eviction-count traces with the ``DSA_DevTLB`` primitive."""

    def __init__(
        self,
        attack: DsaDevTlbAttack,
        timeline: Timeline,
        config: SamplerConfig | None = None,
    ) -> None:
        self.attack = attack
        self.timeline = timeline
        self.config = config or SamplerConfig()

    def _sample_deadlines(self, samples: int) -> list[int]:
        """Absolute probe deadlines as one numpy batch draw.

        ``us_to_cycles`` returns an exact integer period, so
        ``now + period * arange(1..n)`` is value-identical to the old
        per-sample ``next_sample += period`` accumulation — it just
        happens once instead of inside the probe loop.  Converted back
        to Python ints so no numpy scalar leaks into timeline/clock
        arithmetic.
        """
        period = us_to_cycles(self.config.sample_period_us)
        deadlines = self.timeline.clock.now + period * np.arange(
            1, samples + 1, dtype=np.int64
        )
        return deadlines.tolist()

    def collect_trace(self) -> np.ndarray:
        """One trace: per-slot DevTLB miss counts (length ``slots``)."""
        config = self.config
        total = config.slots * config.samples_per_slot
        self.attack.prime()
        outcomes = np.empty(total, dtype=bool)
        for i, deadline in enumerate(self._sample_deadlines(total)):
            self.timeline.idle_until(deadline)
            outcomes[i] = self.attack.probe().evicted
        # Slot aggregation as one reshape+sum instead of a per-slot
        # Python counting loop; values match the old loop exactly.
        return (
            outcomes.reshape(config.slots, config.samples_per_slot)
            .sum(axis=1)
            .astype(np.int32)
        )

    def collect_events(self, samples: int) -> np.ndarray:
        """Raw per-sample observations: array of (timestamp, evicted)."""
        events = np.zeros((samples, 2), dtype=np.int64)
        self.attack.prime()
        for i, deadline in enumerate(self._sample_deadlines(samples)):
            self.timeline.idle_until(deadline)
            outcome = self.attack.probe()
            events[i, 0] = outcome.timestamp
            events[i, 1] = int(outcome.evicted)
        return events


class SwqSampler:
    """Collects contention-count traces with the ``DSA_SWQ`` primitive.

    Each congest-idle-probe round yields one binary observation; the
    round duration is set by the anchor size, so ``samples_per_slot``
    here is the number of *rounds* aggregated per slot.
    """

    def __init__(
        self,
        attack: DsaSwqAttack,
        timeline: Timeline,
        idle_cycles: int,
        config: SamplerConfig | None = None,
    ) -> None:
        self.attack = attack
        self.timeline = timeline
        self.idle_cycles = idle_cycles
        self.config = config or SamplerConfig(samples_per_slot=8)

    def collect_trace(self) -> np.ndarray:
        """One trace: per-slot contention counts (length ``slots``)."""
        config = self.config
        total = config.slots * config.samples_per_slot
        outcomes = np.empty(total, dtype=bool)
        for i in range(total):
            result = self.attack.run_round(self.idle_cycles, timeline=self.timeline)
            outcomes[i] = result.victim_detected
        return (
            outcomes.reshape(config.slots, config.samples_per_slot)
            .sum(axis=1)
            .astype(np.int32)
        )

    def collect_events(self, rounds: int) -> np.ndarray:
        """Raw per-round observations: array of (probe_timestamp, hit)."""
        events = np.zeros((rounds, 2), dtype=np.int64)
        for i in range(rounds):
            result = self.attack.run_round(self.idle_cycles, timeline=self.timeline)
            events[i, 0] = result.probe_time
            events[i, 1] = int(result.victim_detected)
        return events
