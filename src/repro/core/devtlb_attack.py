"""``DSA_DevTLB``: the Prime+Probe attack primitive (Section V-B).

Requirements: a work queue bound to the **same engine** as the victim's
(E0 or E1 topology) — nothing else.  The attacker primes the engine's
``comp`` sub-entry with a noop to a chosen completion-record page, idles,
and probes: a latency above the calibrated threshold means the entry was
evicted, i.e. the victim executed *any* DSA operation on that engine
(every operation writes a completion record, and data operations also
touch src/dst sub-entries).

A convenient property of single-slot sub-entries is that the probe
doubles as the next prime: a missing entry is refilled by the probe
itself, so steady-state sampling is just a probe loop.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import CalibrationResult, calibrate_threshold
from repro.core.primitives import Prober
from repro.virt.process import GuestProcess

#: Paper Fig. 4: any fixed threshold in [600, 900] works; the midpoint is
#: the no-calibration default.
DEFAULT_THRESHOLD_CYCLES = 750


@dataclass(frozen=True)
class DevTlbProbeOutcome:
    """One probe observation."""

    latency_cycles: int
    evicted: bool
    timestamp: int


class DsaDevTlbAttack:
    """Prime+Probe on the DevTLB's completion-record sub-entry."""

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int = 0,
        threshold: int | None = None,
    ) -> None:
        self.process = process
        self.prober = Prober(process, wq_id=wq_id)
        self.comp_va = process.comp_record()
        self.threshold = threshold if threshold is not None else DEFAULT_THRESHOLD_CYCLES
        self.calibration: CalibrationResult | None = None
        self.probes = 0
        self.evictions_seen = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def calibrate(self, samples: int = 100) -> CalibrationResult:
        """Derive the hit/miss threshold online (no privileges needed)."""
        self.calibration = calibrate_threshold(self.prober, samples=samples)
        self.threshold = self.calibration.threshold
        return self.calibration

    # ------------------------------------------------------------------
    # The three steps
    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Step 1: load the attacker's completion page into the sub-entry."""
        self.prober.probe_noop(self.comp_va)

    def probe(self) -> DevTlbProbeOutcome:
        """Step 3: re-probe and threshold the latency.

        The probe also re-primes the entry, so callers can loop
        ``idle(); probe()`` without explicit re-priming.
        """
        result = self.prober.probe_noop(self.comp_va)
        evicted = result.latency_cycles >= self.threshold
        self.probes += 1
        if evicted:
            self.evictions_seen += 1
        return DevTlbProbeOutcome(
            latency_cycles=result.latency_cycles,
            evicted=evicted,
            timestamp=self.prober.portal.clock.now,
        )

    @property
    def eviction_rate(self) -> float:
        """Fraction of probes that observed an eviction."""
        return self.evictions_seen / self.probes if self.probes else 0.0
