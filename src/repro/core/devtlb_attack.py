"""``DSA_DevTLB``: the Prime+Probe attack primitive (Section V-B).

Requirements: a work queue bound to the **same engine** as the victim's
(E0 or E1 topology) — nothing else.  The attacker primes the engine's
``comp`` sub-entry with a noop to a chosen completion-record page, idles,
and probes: a latency above the calibrated threshold means the entry was
evicted, i.e. the victim executed *any* DSA operation on that engine
(every operation writes a completion record, and data operations also
touch src/dst sub-entries).

A convenient property of single-slot sub-entries is that the probe
doubles as the next prime: a missing entry is refilled by the probe
itself, so steady-state sampling is just a probe loop.

Calibration runs through :func:`~repro.core.calibration.calibrate_with_recovery`
(health-checked, bounded retry), and an optional
:class:`~repro.core.calibration.ThresholdMonitor` watches live probe
latencies so long runs can detect threshold drift and recalibrate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.calibration import (
    CalibrationPolicy,
    CalibrationResult,
    ThresholdMonitor,
    calibrate_with_recovery,
)
from repro.core.primitives import Prober
from repro.virt.process import GuestProcess

#: Paper Fig. 4: any fixed threshold in [600, 900] works; the midpoint is
#: the no-calibration default.
DEFAULT_THRESHOLD_CYCLES = 750


@dataclass(frozen=True)
class DevTlbProbeOutcome:
    """One probe observation."""

    latency_cycles: int
    evicted: bool
    timestamp: int


class DsaDevTlbAttack:
    """Prime+Probe on the DevTLB's completion-record sub-entry.

    *probe_timeout_cycles* bounds each probe's completion poll (see
    :class:`~repro.core.primitives.Prober`); leave it ``None`` unless the
    run expects lost submissions.
    """

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int = 0,
        threshold: int | None = None,
        probe_timeout_cycles: int | None = None,
    ) -> None:
        self.process = process
        self.prober = Prober(
            process, wq_id=wq_id, wait_timeout_cycles=probe_timeout_cycles
        )
        self.comp_va = process.comp_record()
        self.threshold = threshold if threshold is not None else DEFAULT_THRESHOLD_CYCLES
        self.calibration: CalibrationResult | None = None
        self.monitor: ThresholdMonitor | None = None
        self.recalibrations = 0
        self.probes = 0
        self.evictions_seen = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def calibrate(
        self, samples: int = 100, policy: CalibrationPolicy | None = None
    ) -> CalibrationResult:
        """Derive the hit/miss threshold online (no privileges needed).

        Retries unhealthy passes per *policy*; raises
        :class:`~repro.errors.CalibrationError` when the budget runs out.
        """
        self.calibration = calibrate_with_recovery(
            self.prober, samples=samples, policy=policy
        )
        self.threshold = self.calibration.threshold
        if self.monitor is not None:
            self.monitor.reset(self.threshold)
        return self.calibration

    def enable_drift_monitor(self, **kwargs) -> ThresholdMonitor:
        """Attach a :class:`ThresholdMonitor` fed by every probe."""
        self.monitor = ThresholdMonitor(self.threshold, **kwargs)
        return self.monitor

    @property
    def drift_detected(self) -> bool:
        """Whether the monitor (if enabled) currently signals drift."""
        return self.monitor is not None and self.monitor.drifting

    def recalibrate(self, samples: int = 100) -> CalibrationResult:
        """Re-derive the threshold after drift and reset the monitor."""
        self.recalibrations += 1
        return self.calibrate(samples=samples)

    # ------------------------------------------------------------------
    # The three steps
    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Step 1: load the attacker's completion page into the sub-entry."""
        self.prober.probe_noop(self.comp_va)

    def probe(self) -> DevTlbProbeOutcome:
        """Step 3: re-probe and threshold the latency.

        The probe also re-primes the entry, so callers can loop
        ``idle(); probe()`` without explicit re-priming.
        """
        result = self.prober.probe_noop(self.comp_va)
        evicted = result.latency_cycles >= self.threshold
        self.probes += 1
        if evicted:
            self.evictions_seen += 1
        if self.monitor is not None:
            self.monitor.observe(result.latency_cycles)
        return DevTlbProbeOutcome(
            latency_cycles=result.latency_cycles,
            evicted=evicted,
            timestamp=self.prober.portal.clock.now,
        )

    @property
    def eviction_rate(self) -> float:
        """Fraction of probes that observed an eviction."""
        return self.evictions_seen / self.probes if self.probes else 0.0
