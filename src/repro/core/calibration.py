"""Hit/miss threshold calibration.

The paper reports that any fixed threshold between 600 and 900 cycles
separates DevTLB hits from misses in all four environments (Fig. 4).  An
attacker without Perfmon access derives that threshold online: probe the
same completion-record page twice (the second probe is a guaranteed hit),
then evict it with a probe to a different page and re-probe (a guaranteed
miss), repeating for statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.primitives import Prober


@dataclass(frozen=True)
class CalibrationResult:
    """Latency distributions and the derived decision threshold."""

    hit_latencies: np.ndarray
    miss_latencies: np.ndarray
    threshold: int

    @property
    def hit_mean(self) -> float:
        """Mean hit latency (cycles)."""
        return float(self.hit_latencies.mean())

    @property
    def miss_mean(self) -> float:
        """Mean miss latency (cycles)."""
        return float(self.miss_latencies.mean())

    @property
    def separation(self) -> float:
        """Gap between the means (cycles); larger is easier to threshold."""
        return self.miss_mean - self.hit_mean

    @property
    def overlap_error(self) -> float:
        """Fraction of samples that the threshold misclassifies."""
        wrong = int((self.hit_latencies >= self.threshold).sum())
        wrong += int((self.miss_latencies < self.threshold).sum())
        total = len(self.hit_latencies) + len(self.miss_latencies)
        return wrong / total if total else 0.0

    def classify(self, latency: int) -> bool:
        """``True`` when *latency* indicates a miss (eviction)."""
        return latency >= self.threshold


def calibrate_threshold(prober: Prober, samples: int = 100) -> CalibrationResult:
    """Measure hit/miss latency distributions and pick a threshold.

    The threshold is the midpoint between the 95th hit percentile and the
    5th miss percentile — robust to the occasional noise spike without
    assuming either distribution's shape.
    """
    if samples < 2:
        raise ValueError(f"calibration needs at least 2 samples, got {samples}")
    target = prober.fresh_comp()
    evictor = prober.fresh_comp()

    hits = np.empty(samples, dtype=np.int64)
    misses = np.empty(samples, dtype=np.int64)
    prober.probe_noop(target)  # initial fill
    for i in range(samples):
        hits[i] = prober.probe_noop(target).latency_cycles  # same page: hit
        prober.probe_noop(evictor)  # evict the comp sub-entry
        misses[i] = prober.probe_noop(target).latency_cycles  # miss + refill

    high_hit = float(np.percentile(hits, 95))
    low_miss = float(np.percentile(misses, 5))
    threshold = int(round((high_hit + low_miss) / 2))
    return CalibrationResult(
        hit_latencies=hits, miss_latencies=misses, threshold=threshold
    )
