"""Hit/miss threshold calibration.

The paper reports that any fixed threshold between 600 and 900 cycles
separates DevTLB hits from misses in all four environments (Fig. 4).  An
attacker without Perfmon access derives that threshold online: probe the
same completion-record page twice (the second probe is a guaranteed hit),
then evict it with a probe to a different page and re-probe (a guaranteed
miss), repeating for statistics.

On a noisy or fault-prone host a single calibration pass can come back
useless — injected completion errors inflate the hit tail, preemption
bursts thin the samples.  :func:`calibrate_with_recovery` wraps the basic
pass in a health-checked retry loop (:class:`CalibrationPolicy`), and
:class:`ThresholdMonitor` watches live probe latencies for threshold
drift so an attack can trigger recalibration mid-run.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.core.primitives import Prober
from repro.errors import (
    CalibrationError,
    CompletionTimeoutError,
    QueueFullError,
    TranslationFault,
)

#: Errors a calibration pass may hit on a fault-injected host; each one
#: voids the pass rather than the whole calibration.
_TRANSIENT_ERRORS = (QueueFullError, CompletionTimeoutError, TranslationFault)


@dataclass(frozen=True)
class CalibrationPolicy:
    """Health requirements and retry budget for threshold calibration.

    Attributes
    ----------
    min_separation_cycles:
        Minimum gap between hit and miss means for the threshold to be
        trusted (the paper's band is ~300 cycles wide; half of that is a
        conservative floor).
    max_overlap_error:
        Maximum tolerated fraction of calibration samples the derived
        threshold misclassifies.
    max_attempts:
        Total calibration passes before giving up.
    sample_growth:
        Multiplier applied to the sample count on each retry.
    trim_fraction:
        Fraction of the slowest hits and fastest misses discarded on
        retry passes — sheds fault-inflated outliers without assuming a
        distribution shape.
    """

    min_separation_cycles: float = 150.0
    max_overlap_error: float = 0.12
    max_attempts: int = 4
    sample_growth: float = 1.5
    trim_fraction: float = 0.1

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.sample_growth < 1.0:
            raise ValueError(f"sample_growth must be >= 1, got {self.sample_growth}")
        if not 0.0 <= self.trim_fraction < 0.5:
            raise ValueError(
                f"trim_fraction must be in [0, 0.5), got {self.trim_fraction}"
            )


@dataclass(frozen=True)
class CalibrationResult:
    """Latency distributions and the derived decision threshold."""

    hit_latencies: np.ndarray
    miss_latencies: np.ndarray
    threshold: int

    @property
    def hit_mean(self) -> float:
        """Mean hit latency (cycles)."""
        return float(self.hit_latencies.mean())

    @property
    def miss_mean(self) -> float:
        """Mean miss latency (cycles)."""
        return float(self.miss_latencies.mean())

    @property
    def separation(self) -> float:
        """Gap between the means (cycles); larger is easier to threshold."""
        return self.miss_mean - self.hit_mean

    @property
    def overlap_error(self) -> float:
        """Fraction of samples that the threshold misclassifies."""
        wrong = int((self.hit_latencies >= self.threshold).sum())
        wrong += int((self.miss_latencies < self.threshold).sum())
        total = len(self.hit_latencies) + len(self.miss_latencies)
        return wrong / total if total else 0.0

    def healthy(self, policy: CalibrationPolicy | None = None) -> bool:
        """Whether this calibration satisfies *policy* (default policy if
        ``None``)."""
        policy = policy or CalibrationPolicy()
        return (
            self.separation >= policy.min_separation_cycles
            and self.overlap_error <= policy.max_overlap_error
        )

    def classify(self, latency: int) -> bool:
        """``True`` when *latency* indicates a miss (eviction)."""
        return latency >= self.threshold


def _trim(values: np.ndarray, fraction: float, high: bool) -> np.ndarray:
    """Drop the highest (*high*) or lowest fraction of *values*."""
    drop = int(len(values) * fraction)
    if drop == 0:
        return values
    ordered = np.sort(values)
    return ordered[:-drop] if high else ordered[drop:]


def calibrate_threshold(
    prober: Prober, samples: int = 100, trim_fraction: float = 0.0
) -> CalibrationResult:
    """Measure hit/miss latency distributions and pick a threshold.

    The threshold is the midpoint between the 95th hit percentile and the
    5th miss percentile — robust to the occasional noise spike without
    assuming either distribution's shape.  With *trim_fraction* > 0 the
    slowest hits and fastest misses are discarded first, which sheds
    outliers left behind by injected faults or preemption bursts.
    """
    if samples < 2:
        raise ValueError(f"calibration needs at least 2 samples, got {samples}")
    if not 0.0 <= trim_fraction < 0.5:
        raise ValueError(f"trim_fraction must be in [0, 0.5), got {trim_fraction}")
    target = prober.fresh_comp()
    evictor = prober.fresh_comp()

    hits = np.empty(samples, dtype=np.int64)
    misses = np.empty(samples, dtype=np.int64)
    prober.probe_noop(target)  # initial fill
    for i in range(samples):
        hits[i] = prober.probe_noop(target).latency_cycles  # same page: hit
        prober.probe_noop(evictor)  # evict the comp sub-entry
        misses[i] = prober.probe_noop(target).latency_cycles  # miss + refill

    hits = _trim(hits, trim_fraction, high=True)
    misses = _trim(misses, trim_fraction, high=False)
    high_hit = float(np.percentile(hits, 95))
    low_miss = float(np.percentile(misses, 5))
    threshold = int(round((high_hit + low_miss) / 2))
    return CalibrationResult(
        hit_latencies=hits, miss_latencies=misses, threshold=threshold
    )


def calibrate_with_recovery(
    prober: Prober,
    samples: int = 100,
    policy: CalibrationPolicy | None = None,
) -> CalibrationResult:
    """Calibrate until the result passes *policy*'s health checks.

    Each failed pass retries with ``sample_growth``-times more samples
    and outlier trimming enabled; transient probe errors (queue-full,
    completion timeout, unresolved page fault) void the pass rather than
    the calibration.  Raises :class:`~repro.errors.CalibrationError`
    carrying the best unhealthy result when the retry budget runs out.
    """
    policy = policy or CalibrationPolicy()
    best: CalibrationResult | None = None
    last_error: Exception | None = None
    current = samples
    for attempt in range(policy.max_attempts):
        trim = policy.trim_fraction if attempt else 0.0
        try:
            result = calibrate_threshold(prober, samples=current, trim_fraction=trim)
        except _TRANSIENT_ERRORS as exc:
            last_error = exc
        else:
            if result.healthy(policy):
                return result
            if best is None or result.overlap_error < best.overlap_error:
                best = result
        current = max(current + 1, int(round(current * policy.sample_growth)))
    detail = f"; last transient error: {last_error}" if last_error else ""
    raise CalibrationError(
        f"calibration unhealthy after {policy.max_attempts} attempts "
        f"(need separation >= {policy.min_separation_cycles:.0f} cycles and "
        f"overlap <= {policy.max_overlap_error:.0%}){detail}",
        best=best,
    )


class ThresholdMonitor:
    """Watches live probe latencies for threshold drift.

    A healthy threshold sits in the dead zone between the hit and miss
    clusters, so almost no latency lands *near* it.  When environmental
    drift (or an injected fault storm) moves a cluster toward the
    threshold, the fraction of ambiguous samples — those within
    ``band_cycles`` of the threshold — rises.  :attr:`drifting` flips
    once that fraction exceeds ``ambiguous_limit`` over the sliding
    window, signalling the attack to recalibrate.
    """

    def __init__(
        self,
        threshold: int,
        band_cycles: int = 120,
        window: int = 256,
        ambiguous_limit: float = 0.25,
        min_samples: int = 64,
    ) -> None:
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if not 0.0 < ambiguous_limit <= 1.0:
            raise ValueError(
                f"ambiguous_limit must be in (0, 1], got {ambiguous_limit}"
            )
        self.threshold = threshold
        self.band_cycles = band_cycles
        self.ambiguous_limit = ambiguous_limit
        self.min_samples = min(min_samples, window)
        self._window: deque[bool] = deque(maxlen=window)
        self.observed = 0
        self.ambiguous = 0

    def observe(self, latency: int) -> bool:
        """Record one probe latency; return whether it was ambiguous."""
        ambiguous = abs(latency - self.threshold) <= self.band_cycles
        self._window.append(ambiguous)
        self.observed += 1
        if ambiguous:
            self.ambiguous += 1
        return ambiguous

    @property
    def ambiguous_fraction(self) -> float:
        """Ambiguous fraction over the current window."""
        if not self._window:
            return 0.0
        return sum(self._window) / len(self._window)

    @property
    def drifting(self) -> bool:
        """Whether the window shows enough ambiguity to recalibrate."""
        return (
            len(self._window) >= self.min_samples
            and self.ambiguous_fraction > self.ambiguous_limit
        )

    def reset(self, threshold: int | None = None) -> None:
        """Clear the window (after recalibrating to *threshold*)."""
        if threshold is not None:
            self.threshold = threshold
        self._window.clear()
