"""DSAssassin's attack core.

The paper's two primitives plus the measurement plumbing they share:

* :mod:`repro.core.primitives` — the probe descriptors of Listing 1
  (noop / memcmp / memcpy / dualcast) with polled-latency measurement.
* :mod:`repro.core.calibration` — hit/miss threshold calibration.
* :mod:`repro.core.devtlb_attack` — ``DSA_DevTLB``: Prime+Probe on the
  completion-record sub-entry (Section V-B).
* :mod:`repro.core.swq_attack` — ``DSA_SWQ``: Congest+Probe via the
  ``EFLAGS.ZF`` answer of DMWr (Section V-C).
* :mod:`repro.core.sampling` — 10 µs sampling loops and slot aggregation
  used by every trace-collection attack (Sections VI-B/C/D).
"""

from repro.core.calibration import (
    CalibrationPolicy,
    CalibrationResult,
    ThresholdMonitor,
    calibrate_threshold,
    calibrate_with_recovery,
)
from repro.core.devtlb_attack import DevTlbProbeOutcome, DsaDevTlbAttack
from repro.core.primitives import Prober
from repro.core.sampling import DevTlbSampler, SamplerConfig, SwqSampler
from repro.core.swq_attack import DsaSwqAttack, SwqRoundResult

__all__ = [
    "CalibrationPolicy",
    "CalibrationResult",
    "DevTlbProbeOutcome",
    "DevTlbSampler",
    "DsaDevTlbAttack",
    "DsaSwqAttack",
    "Prober",
    "SamplerConfig",
    "SwqRoundResult",
    "SwqSampler",
    "ThresholdMonitor",
    "calibrate_threshold",
    "calibrate_with_recovery",
]
