"""The microbenchmark probe primitives of Listing 1.

A :class:`Prober` owns a guest process's probe buffers and issues the four
representative descriptors the paper uses for reverse engineering:

====================  =====================================================
``probe_noop``        writes only the completion record (``comp`` entry)
``probe_memcmp``      reads ``src`` and ``src2`` (COMPVAL opcode)
``probe_memcpy``      reads ``src``, writes ``dst``
``probe_dualcast``    reads ``src``, writes ``dst`` and ``dst2``
====================  =====================================================

Each probe submits through the process's portal and polls the completion
record, returning the ``rdtsc``-measured latency — the unprivileged signal
every attack thresholds.
"""

from __future__ import annotations

from repro.dsa.descriptor import (
    make_dualcast,
    make_memcmp,
    make_memcpy,
    make_noop,
)
from repro.dsa.portal import ProbeResult
from repro.virt.process import GuestProcess


class Prober:
    """Issues probe descriptors on behalf of one process.

    Parameters
    ----------
    process:
        The probing process (must have opened *wq_id*).
    wq_id:
        The work queue to submit through.
    size:
        Transfer size for the data probes (small keeps probes fast; the
        DevTLB only cares about the page).
    """

    def __init__(self, process: GuestProcess, wq_id: int = 0, size: int = 64) -> None:
        self.process = process
        self.portal = process.portal(wq_id)
        self.size = size
        self.probes_issued = 0
        self._noop_cache: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Buffer helpers
    # ------------------------------------------------------------------
    def fresh_page(self, huge: bool = False) -> int:
        """Map a new page (guaranteed distinct DevTLB tag)."""
        return self.process.buffer(huge=huge)

    def fresh_comp(self) -> int:
        """Map a new completion-record page."""
        return self.process.comp_record()

    # ------------------------------------------------------------------
    # Probes (latency in cycles, as measured by rdtsc around the poll)
    # ------------------------------------------------------------------
    def probe_noop(self, comp: int) -> ProbeResult:
        """Touch only the ``comp`` sub-entry."""
        self.probes_issued += 1
        descriptor = self._noop_cache.get(comp)
        if descriptor is None:
            descriptor = make_noop(self.process.pasid, comp)
            self._noop_cache[comp] = descriptor
        return self.portal.submit_wait(descriptor)

    def probe_memcmp(self, src: int, src2: int, comp: int) -> ProbeResult:
        """Touch ``src`` and ``src2`` (Listing 1)."""
        self.probes_issued += 1
        return self.portal.submit_wait(
            make_memcmp(self.process.pasid, src, src2, self.size, comp)
        )

    def probe_memcpy(self, src: int, dst: int, comp: int) -> ProbeResult:
        """Touch ``src`` (read) and ``dst`` (write)."""
        self.probes_issued += 1
        return self.portal.submit_wait(
            make_memcpy(self.process.pasid, src, dst, self.size, comp)
        )

    def probe_dualcast(self, src: int, dst: int, dst2: int, comp: int) -> ProbeResult:
        """Touch ``src``, ``dst``, and ``dst2``."""
        self.probes_issued += 1
        return self.portal.submit_wait(
            make_dualcast(self.process.pasid, src, dst, dst2, self.size, comp)
        )
