"""The microbenchmark probe primitives of Listing 1.

A :class:`Prober` owns a guest process's probe buffers and issues the four
representative descriptors the paper uses for reverse engineering:

====================  =====================================================
``probe_noop``        writes only the completion record (``comp`` entry)
``probe_memcmp``      reads ``src`` and ``src2`` (COMPVAL opcode)
``probe_memcpy``      reads ``src``, writes ``dst``
``probe_dualcast``    reads ``src``, writes ``dst`` and ``dst2``
====================  =====================================================

Each probe submits through the process's portal and polls the completion
record, returning the ``rdtsc``-measured latency — the unprivileged signal
every attack thresholds.

Probes survive transient failures: a full queue backs off and resubmits,
a lost submission (observable only with ``wait_timeout_cycles`` set) or a
descriptor completing with a fault status is retried up to
``max_retries`` times before the failure is surfaced to the caller.
"""

from __future__ import annotations

from repro.dsa.completion import CompletionStatus
from repro.dsa.descriptor import (
    Descriptor,
    make_dualcast,
    make_memcmp,
    make_memcpy,
    make_noop,
)
from repro.dsa.portal import ProbeResult
from repro.errors import CompletionTimeoutError, QueueFullError
from repro.virt.process import GuestProcess


class Prober:
    """Issues probe descriptors on behalf of one process.

    Parameters
    ----------
    process:
        The probing process (must have opened *wq_id*).
    wq_id:
        The work queue to submit through.
    size:
        Transfer size for the data probes (small keeps probes fast; the
        DevTLB only cares about the page).
    max_retries:
        Resubmissions allowed per probe after a transient failure.
    retry_backoff_cycles:
        Initial wait after a queue-full rejection; doubles per retry.
    wait_timeout_cycles:
        Bound on the completion poll.  ``None`` (the default) polls
        forever — correct on a congested-but-honest device, where a
        probe can legitimately sit behind a victim's bulk transfer.
        Chaos runs set a finite bound so dropped submissions surface as
        :class:`~repro.errors.CompletionTimeoutError` and get retried.
    """

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int = 0,
        size: int = 64,
        max_retries: int = 3,
        retry_backoff_cycles: int = 2_000,
        wait_timeout_cycles: int | None = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        self.process = process
        self.portal = process.portal(wq_id)
        self.size = size
        self.max_retries = max_retries
        self.retry_backoff_cycles = retry_backoff_cycles
        self.wait_timeout_cycles = wait_timeout_cycles
        self.probes_issued = 0
        self.retries_used = 0
        self.probe_failures = 0
        self._noop_cache: dict[int, object] = {}

    # ------------------------------------------------------------------
    # Buffer helpers
    # ------------------------------------------------------------------
    def fresh_page(self, huge: bool = False) -> int:
        """Map a new page (guaranteed distinct DevTLB tag)."""
        return self.process.buffer(huge=huge)

    def fresh_comp(self) -> int:
        """Map a new completion-record page."""
        return self.process.comp_record()

    # ------------------------------------------------------------------
    # Resilient submission
    # ------------------------------------------------------------------
    def _submit_probe(self, descriptor: Descriptor) -> ProbeResult:
        """Submit with bounded retry on transient failures.

        Queue-full rejections back off (doubling) before resubmitting;
        completion timeouts resubmit immediately (the original write was
        lost in flight); a completion record carrying a fault status is
        retried while budget remains, then returned as-is so the caller
        sees the failure.  Exhausting the budget on exceptions re-raises
        the last one.
        """
        backoff = self.retry_backoff_cycles
        last_error: Exception | None = None
        result: ProbeResult | None = None
        attempts = self.max_retries + 1
        for attempt in range(attempts):
            if attempt:
                self.retries_used += 1
            try:
                result = self.portal.submit_wait(
                    descriptor, timeout_cycles=self.wait_timeout_cycles
                )
            except QueueFullError as exc:
                last_error = exc
                self.probe_failures += 1
                self.portal.clock.advance(backoff)
                self.portal.device.advance_to(self.portal.clock.now)
                backoff *= 2
                continue
            except CompletionTimeoutError as exc:
                last_error = exc
                self.probe_failures += 1
                continue
            record = result.record
            if (
                record is not None
                and record.status
                in (CompletionStatus.PAGE_FAULT, CompletionStatus.INVALID_FLAGS)
                and attempt < attempts - 1
            ):
                self.probe_failures += 1
                continue
            return result
        if result is not None:
            return result
        assert last_error is not None
        raise last_error

    # ------------------------------------------------------------------
    # Probes (latency in cycles, as measured by rdtsc around the poll)
    # ------------------------------------------------------------------
    def probe_noop(self, comp: int) -> ProbeResult:
        """Touch only the ``comp`` sub-entry."""
        self.probes_issued += 1
        descriptor = self._noop_cache.get(comp)
        if descriptor is None:
            descriptor = make_noop(self.process.pasid, comp)
            self._noop_cache[comp] = descriptor
        return self._submit_probe(descriptor)

    def probe_memcmp(self, src: int, src2: int, comp: int) -> ProbeResult:
        """Touch ``src`` and ``src2`` (Listing 1)."""
        self.probes_issued += 1
        return self._submit_probe(
            make_memcmp(self.process.pasid, src, src2, self.size, comp)
        )

    def probe_memcpy(self, src: int, dst: int, comp: int) -> ProbeResult:
        """Touch ``src`` (read) and ``dst`` (write)."""
        self.probes_issued += 1
        return self._submit_probe(
            make_memcpy(self.process.pasid, src, dst, self.size, comp)
        )

    def probe_dualcast(self, src: int, dst: int, dst2: int, comp: int) -> ProbeResult:
        """Touch ``src``, ``dst``, and ``dst2``."""
        self.probes_issued += 1
        return self._submit_probe(
            make_dualcast(self.process.pasid, src, dst, dst2, self.size, comp)
        )
