"""``DSA_SWQ``: the timer-free Congest+Probe primitive (Section V-C).

Requirements: the attacker shares the victim's **shared work queue** (E0
topology).  Each round:

1. **Congest** — submit one large memcpy to anchor the head of the SWQ
   (it executes on the engine but holds its queue slot until completion),
   then ``wq_size - 2`` simple descriptors, leaving exactly **one** free
   slot.  ``wq_size`` is read with unprivileged ``accel-config``.
2. **Idle** — wait a window shorter than the anchor's execution time.
3. **Probe** — ``enqcmd`` one more descriptor and read ``EFLAGS.ZF``:
   ZF set means the victim consumed the last slot during the idle window
   (bit 1); ZF clear means the slot was still free (bit 0).

No timing measurement is involved anywhere — the paper's point is that
DMWr's accept/retry answer alone is a complete side channel.

After the probe the queue is saturated either way, so each anchor yields
one observation; the round length (and hence the sampling rate) is set by
the anchor's transfer size.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dsa.accel_config import AccelConfig
from repro.dsa.descriptor import Descriptor, make_memcpy
from repro.dsa.opcodes import DescriptorFlags, Opcode
from repro.errors import ConfigurationError
from repro.virt.process import GuestProcess

#: Default anchor transfer size: ~500 us of engine time at the model's
#: 30 GB/s memcpy throughput — long enough to hold a congestion window
#: across an idle period, short enough for kilobit-scale covert rates.
DEFAULT_ANCHOR_BYTES = 8 << 20


@dataclass(frozen=True)
class SwqRoundResult:
    """One congest-idle-probe round."""

    victim_detected: bool
    round_start: int
    probe_time: int


class DsaSwqAttack:
    """Congest+Probe on a shared work queue."""

    def __init__(
        self,
        process: GuestProcess,
        wq_id: int = 0,
        anchor_bytes: int = DEFAULT_ANCHOR_BYTES,
    ) -> None:
        self.process = process
        self.portal = process.portal(wq_id)
        self.wq_id = wq_id
        self.anchor_bytes = anchor_bytes
        # Unprivileged read — exactly what the paper's attacker does.
        self.wq_size = AccelConfig(self.portal.device, privileged=False).wq_size(wq_id)
        if self.wq_size < 3:
            raise ConfigurationError(
                f"SWQ attack needs wq_size >= 3, got {self.wq_size}"
            )
        self._anchor_src = process.buffer(anchor_bytes)
        self._anchor_dst = process.buffer(anchor_bytes)
        self._anchor_comp = process.comp_record()
        self._anchor_ticket = None
        self._saturated_early = False
        self.rounds = 0
        self.detections = 0
        self.anchor_resubmits = 0

    # ------------------------------------------------------------------
    # The three steps
    # ------------------------------------------------------------------
    def congest(self, anchor_bytes: int | None = None) -> None:
        """Step 1: anchor + fillers, leaving exactly one free slot.

        Must be called with the queue drained (the first round, or after
        :meth:`wait_drain`).  *anchor_bytes* overrides the default anchor
        size for this round (bounded by the pre-mapped buffers).
        """
        if anchor_bytes is None:
            anchor_bytes = self.anchor_bytes
        if anchor_bytes > self.anchor_bytes:
            raise ConfigurationError(
                f"anchor of {anchor_bytes} bytes exceeds the pre-mapped "
                f"{self.anchor_bytes}-byte buffers"
            )
        anchor = make_memcpy(
            self.process.pasid,
            self._anchor_src,
            self._anchor_dst,
            anchor_bytes,
            self._anchor_comp,
        )
        for _ in range(3):
            if self.portal.enqcmd(anchor):
                raise ConfigurationError(
                    "SWQ not drained before congest(); call wait_drain() between rounds"
                )
            if self.portal.last_ticket is not None:
                break
            # Accepted but no ticket: the portal write was dropped in
            # flight.  An un-anchored round would never saturate, so
            # resubmit — the queue is drained, slots are free.
            self.anchor_resubmits += 1
        self._anchor_ticket = self.portal.last_ticket
        filler = Descriptor(
            opcode=Opcode.NOOP, pasid=self.process.pasid, flags=DescriptorFlags.NONE
        )
        self._saturated_early = False
        for _ in range(self.wq_size - 2):
            if self.portal.enqcmd(filler):
                # The queue filled before we armed it: a victim descriptor
                # (or a straggler from the last round) already holds a
                # slot.  Treat the round as an early detection.
                self._saturated_early = True
                break

    def probe(self) -> bool:
        """Step 3: ``enqcmd`` and read ZF.

        Returns ``True`` when the victim submitted during the idle window
        (the queue was already full).  Purely flag-based — no ``rdtsc``.
        """
        self.rounds += 1
        if self._saturated_early:
            self._saturated_early = False
            self.detections += 1
            return True
        probe_desc = Descriptor(
            opcode=Opcode.NOOP, pasid=self.process.pasid, flags=DescriptorFlags.NONE
        )
        zf = self.portal.enqcmd(probe_desc)
        if zf:
            self.detections += 1
        return zf

    def wait_drain(self, margin_cycles: int | None = None) -> None:
        """Wait until the anchor (and everything queued behind it) completed.

        The margin covers the fillers and probe descriptor executing after
        the anchor on the serial engine.
        """
        if margin_cycles is None:
            margin_cycles = 12_000 + 1_600 * self.wq_size
        if self._anchor_ticket is not None:
            self.portal.wait(self._anchor_ticket)
            self._anchor_ticket = None
        clock = self.portal.clock
        clock.advance(margin_cycles)
        self.portal.device.advance_to(clock.now)

    def run_round(
        self, idle_cycles: int, timeline=None, anchor_bytes: int | None = None
    ) -> SwqRoundResult:
        """One full congest-idle-probe round.

        *timeline*, when given, is consulted during the idle window so
        scheduled victim actions interleave correctly.
        """
        clock = self.portal.clock
        start = clock.now
        self.congest(anchor_bytes=anchor_bytes)
        target = clock.now + idle_cycles
        if timeline is not None:
            timeline.idle_until(target)
        else:
            clock.advance_to(target)
        self.portal.device.advance_to(clock.now)
        detected = self.probe()
        probe_time = clock.now
        self.wait_drain()
        if timeline is not None:
            timeline.run_until(clock.now)
        return SwqRoundResult(
            victim_detected=detected, round_start=start, probe_time=probe_time
        )

    @property
    def detection_rate(self) -> float:
        """Fraction of rounds that detected a victim submission."""
        return self.detections / self.rounds if self.rounds else 0.0
