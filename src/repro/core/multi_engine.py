"""Whole-device monitoring: one DevTLB observer per engine.

A realistic attacker does not know which engine its target will land on
(and a busy host runs victims on several).  :class:`MultiEngineMonitor`
maintains one Prime+Probe observer per engine the attacker can reach and
samples them round-robin, producing per-engine activity streams — the
device-wide version of the single-engine sampler, and the natural front
end for the reconnaissance helpers in :mod:`repro.core.recon`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.hw.units import us_to_cycles
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline


@dataclass(frozen=True)
class EngineActivity:
    """Aggregated observations for one engine."""

    wq_id: int
    samples: int
    evictions: int

    @property
    def activity_rate(self) -> float:
        """Fraction of samples that saw activity."""
        return self.evictions / self.samples if self.samples else 0.0


class MultiEngineMonitor:
    """Round-robin DevTLB observers across every reachable engine.

    Parameters
    ----------
    attacker:
        The attacking process; must have opened a portal per queue in
        *wq_ids* (one queue per engine gives engine resolution).
    wq_ids:
        Queues to observe through.
    """

    def __init__(
        self,
        attacker: GuestProcess,
        wq_ids: list[int],
        calibration_samples: int = 30,
    ) -> None:
        if not wq_ids:
            raise ValueError("the monitor needs at least one queue")
        self.attacks = {}
        for wq_id in wq_ids:
            attack = DsaDevTlbAttack(attacker, wq_id=wq_id)
            attack.calibrate(samples=calibration_samples)
            attack.prime()
            self.attacks[wq_id] = attack

    def sample_all(self, timeline: Timeline, gap_us: float = 2.0) -> dict[int, bool]:
        """One probe per engine; returns {wq_id: evicted}."""
        observations = {}
        for wq_id, attack in self.attacks.items():
            observations[wq_id] = attack.probe().evicted
            timeline.idle_until(timeline.clock.now + us_to_cycles(gap_us))
        return observations

    def watch(
        self, timeline: Timeline, duration_us: float, period_us: float = 20.0
    ) -> dict[int, EngineActivity]:
        """Sample every engine for *duration_us*; return per-engine stats."""
        counts = {wq_id: 0 for wq_id in self.attacks}
        samples = 0
        deadline = timeline.clock.now + us_to_cycles(duration_us)
        while timeline.clock.now < deadline:
            for wq_id, evicted in self.sample_all(timeline).items():
                counts[wq_id] += int(evicted)
            samples += 1
            timeline.idle_until(
                min(timeline.clock.now + us_to_cycles(period_us), deadline)
            )
        return {
            wq_id: EngineActivity(wq_id=wq_id, samples=samples, evictions=count)
            for wq_id, count in counts.items()
        }

    def busiest(self, activity: dict[int, EngineActivity]) -> int:
        """The queue whose engine showed the most activity."""
        return max(activity.values(), key=lambda a: a.activity_rate).wq_id
