"""Classification metrics: accuracy, confusion matrix, precision/recall/F1."""

from __future__ import annotations

import numpy as np


def accuracy(labels: np.ndarray, predictions: np.ndarray) -> float:
    """Top-1 accuracy."""
    labels = np.asarray(labels)
    predictions = np.asarray(predictions)
    if labels.shape != predictions.shape:
        raise ValueError("labels and predictions must align")
    if labels.size == 0:
        raise ValueError("cannot score zero samples")
    return float((labels == predictions).mean())


def confusion_matrix(
    labels: np.ndarray, predictions: np.ndarray, classes: int
) -> np.ndarray:
    """Row = true class, column = predicted class, raw counts."""
    matrix = np.zeros((classes, classes), dtype=np.int64)
    for true, predicted in zip(np.asarray(labels), np.asarray(predictions)):
        matrix[int(true), int(predicted)] += 1
    return matrix


def precision_recall_f1(
    true_positives: int, false_positives: int, false_negatives: int
) -> tuple[float, float, float]:
    """Event-detection metrics from raw counts (keystroke evaluation)."""
    precision = (
        true_positives / (true_positives + false_positives)
        if true_positives + false_positives
        else 0.0
    )
    recall = (
        true_positives / (true_positives + false_negatives)
        if true_positives + false_negatives
        else 0.0
    )
    f1 = (
        2 * precision * recall / (precision + recall) if precision + recall else 0.0
    )
    return precision, recall, f1


def f1_score(true_positives: int, false_positives: int, false_negatives: int) -> float:
    """Just the F1 from raw counts."""
    return precision_recall_f1(true_positives, false_positives, false_negatives)[2]


def macro_f1(labels: np.ndarray, predictions: np.ndarray, classes: int) -> float:
    """Unweighted mean of per-class F1 scores."""
    matrix = confusion_matrix(labels, predictions, classes)
    scores = []
    for c in range(classes):
        tp = int(matrix[c, c])
        fp = int(matrix[:, c].sum() - tp)
        fn = int(matrix[c, :].sum() - tp)
        scores.append(f1_score(tp, fp, fn))
    return float(np.mean(scores))
