"""NumPy-from-scratch machine learning substrate.

The paper classifies side-channel traces with an Attention-based BiLSTM
(two BiLSTM layers, additive attention pooling, dropout, softmax).  No
deep-learning framework is available offline, so the full model — forward
pass, analytic backward pass, and the Adam optimizer — is implemented
here on NumPy alone, together with a fast nearest-centroid baseline used
for quick sanity checks.
"""

from repro.ml.baseline import LogisticRegressionClassifier, NearestCentroidClassifier
from repro.ml.features import MultiTraceVoter, summary_features
from repro.ml.openworld import UNKNOWN, OpenWorldClassifier, OpenWorldScores
from repro.ml.layers import (
    AdditiveAttention,
    BiLstmLayer,
    Dense,
    Dropout,
    LstmCell,
    softmax,
    softmax_cross_entropy,
)
from repro.ml.metrics import (
    accuracy,
    confusion_matrix,
    f1_score,
    precision_recall_f1,
)
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.optim import Adam
from repro.ml.train import TrainConfig, Trainer, train_test_split

__all__ = [
    "Adam",
    "AdditiveAttention",
    "AttentionBiLstmClassifier",
    "BiLstmLayer",
    "Dense",
    "Dropout",
    "LogisticRegressionClassifier",
    "LstmCell",
    "MultiTraceVoter",
    "NearestCentroidClassifier",
    "OpenWorldClassifier",
    "OpenWorldScores",
    "TrainConfig",
    "UNKNOWN",
    "summary_features",
    "Trainer",
    "accuracy",
    "confusion_matrix",
    "f1_score",
    "precision_recall_f1",
    "softmax",
    "softmax_cross_entropy",
    "train_test_split",
]
