"""The Attention-BiLSTM trace classifier (Section VI-B).

Architecture, following the paper: an input projection, **two BiLSTM
layers**, an additive **attention** pooling that weights informative time
steps, **dropout** between components, and a softmax output layer.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import (
    AdditiveAttention,
    BiLstmLayer,
    Dense,
    Dropout,
    softmax,
    softmax_cross_entropy,
)


class AttentionBiLstmClassifier:
    """Sequence classifier over side-channel traces.

    Parameters
    ----------
    classes:
        Number of output classes.
    hidden:
        Hidden size of each LSTM direction.
    attention_size:
        Width of the attention scoring space.
    dropout:
        Dropout rate applied after each BiLSTM layer.
    rng:
        Generator for initialization and dropout masks.
    """

    def __init__(
        self,
        classes: int,
        hidden: int = 24,
        attention_size: int = 24,
        dropout: float = 0.2,
        rng: np.random.Generator | None = None,
        input_features: int = 1,
    ) -> None:
        if classes < 2:
            raise ValueError(f"need at least 2 classes, got {classes}")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.classes = classes
        self.lstm1 = BiLstmLayer(input_features, hidden, rng)
        self.drop1 = Dropout(dropout, rng)
        self.lstm2 = BiLstmLayer(2 * hidden, hidden, rng)
        self.drop2 = Dropout(dropout, rng)
        self.attention = AdditiveAttention(2 * hidden, attention_size, rng)
        self.head = Dense(2 * hidden, classes, rng)
        self._layers = [
            self.lstm1,
            self.drop1,
            self.lstm2,
            self.drop2,
            self.attention,
            self.head,
        ]

    # ------------------------------------------------------------------
    # Forward / backward
    # ------------------------------------------------------------------
    def set_training(self, training: bool) -> None:
        """Toggle dropout."""
        self.drop1.training = training
        self.drop2.training = training

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Logits for a ``(batch, T)`` or ``(batch, T, F)`` trace batch."""
        if x.ndim == 2:
            x = x[:, :, None]
        h = self.lstm1.forward(x)
        h = self.drop1.forward(h)
        h = self.lstm2.forward(h)
        h = self.drop2.forward(h)
        context = self.attention.forward(h)
        return self.head.forward(context)

    def backward(self, grad_logits: np.ndarray) -> None:
        """Backprop the loss gradient through the whole stack."""
        grad = self.head.backward(grad_logits)
        grad = self.attention.backward(grad)
        grad = self.drop2.backward(grad)
        grad = self.lstm2.backward(grad)
        grad = self.drop1.backward(grad)
        self.lstm1.backward(grad)

    def loss(self, x: np.ndarray, labels: np.ndarray) -> tuple[float, np.ndarray]:
        """Forward + cross-entropy; returns (loss, grad_logits)."""
        logits = self.forward(x)
        return softmax_cross_entropy(logits, labels)

    # ------------------------------------------------------------------
    # Inference
    # ------------------------------------------------------------------
    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        """Class probabilities (evaluation mode)."""
        was_training = self.drop1.training
        self.set_training(False)
        probabilities = softmax(self.forward(x), axis=1)
        self.set_training(was_training)
        return probabilities

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard class predictions."""
        return self.predict_proba(x).argmax(axis=1)

    # ------------------------------------------------------------------
    # Optimizer plumbing
    # ------------------------------------------------------------------
    def params(self) -> list[np.ndarray]:
        """Every trainable array, in a stable order."""
        out: list[np.ndarray] = []
        for layer in self._layers:
            out.extend(layer.params())
        return out

    def grads(self) -> list[np.ndarray]:
        """Gradient arrays aligned with :meth:`params`."""
        out: list[np.ndarray] = []
        for layer in self._layers:
            out.extend(layer.grads())
        return out

    def parameter_count(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for p in self.params())
