"""Fast classical baselines.

Used for quick sanity checks in tests and as the comparison point in the
classification benchmarks — if the BiLSTM cannot beat a nearest-centroid
model, something is wrong with the training, not the data.
"""

from __future__ import annotations

import numpy as np

from repro.ml.layers import softmax


class NearestCentroidClassifier:
    """Classify by Euclidean distance to per-class mean traces."""

    def __init__(self) -> None:
        self._centroids: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "NearestCentroidClassifier":
        """Compute class centroids."""
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y)
        if len(x) != len(y):
            raise ValueError("x and y must align")
        self._classes = np.unique(y)
        self._centroids = np.stack([x[y == cls].mean(axis=0) for cls in self._classes])
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Nearest-centroid labels."""
        if self._centroids is None:
            raise RuntimeError("fit() must run before predict()")
        x = np.asarray(x, dtype=np.float64)
        distances = ((x[:, None, :] - self._centroids[None, :, :]) ** 2).sum(axis=2)
        return self._classes[distances.argmin(axis=1)]


class LogisticRegressionClassifier:
    """Multinomial logistic regression trained by full-batch gradient descent."""

    def __init__(
        self,
        learning_rate: float = 0.5,
        epochs: int = 300,
        l2: float = 1e-4,
    ) -> None:
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.l2 = l2
        self._weight: np.ndarray | None = None
        self._bias: np.ndarray | None = None
        self._classes: np.ndarray | None = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegressionClassifier":
        """Gradient-descent training on standardized features."""
        x = self._standardize(np.asarray(x, dtype=np.float64), fit=True)
        y = np.asarray(y)
        self._classes = np.unique(y)
        index = {cls: i for i, cls in enumerate(self._classes)}
        labels = np.array([index[cls] for cls in y])
        samples, features = x.shape
        classes = len(self._classes)
        self._weight = np.zeros((features, classes))
        self._bias = np.zeros(classes)
        onehot = np.zeros((samples, classes))
        onehot[np.arange(samples), labels] = 1.0
        for _ in range(self.epochs):
            probabilities = softmax(x @ self._weight + self._bias, axis=1)
            grad = x.T @ (probabilities - onehot) / samples + self.l2 * self._weight
            self._weight -= self.learning_rate * grad
            self._bias -= self.learning_rate * (probabilities - onehot).mean(axis=0)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Hard labels."""
        if self._weight is None:
            raise RuntimeError("fit() must run before predict()")
        x = self._standardize(np.asarray(x, dtype=np.float64), fit=False)
        logits = x @ self._weight + self._bias
        return self._classes[logits.argmax(axis=1)]

    def _standardize(self, x: np.ndarray, fit: bool) -> np.ndarray:
        if fit:
            self._mean = x.mean(axis=0)
            self._std = x.std(axis=0)
            self._std[self._std == 0] = 1.0
        return (x - self._mean) / self._std
