"""The Adam optimizer."""

from __future__ import annotations

import numpy as np


class Adam:
    """Adam (Kingma & Ba) over a fixed list of parameter arrays.

    Parameters and their gradient arrays are matched by position; the
    gradient arrays must be the same objects across steps (layers
    overwrite them in place on each backward pass).
    """

    def __init__(
        self,
        params: list[np.ndarray],
        grads: list[np.ndarray],
        learning_rate: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        epsilon: float = 1e-8,
        clip_norm: float | None = 5.0,
    ) -> None:
        if len(params) != len(grads):
            raise ValueError("params and grads must align")
        if learning_rate <= 0:
            raise ValueError("learning_rate must be positive")
        self.params = params
        self.grads = grads
        self.learning_rate = learning_rate
        self.beta1 = beta1
        self.beta2 = beta2
        self.epsilon = epsilon
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p) for p in params]
        self._v = [np.zeros_like(p) for p in params]
        self._step = 0

    def global_gradient_norm(self) -> float:
        """L2 norm across every gradient array."""
        total = sum(float((g**2).sum()) for g in self.grads)
        return float(np.sqrt(total))

    def step(self) -> None:
        """Apply one update (with optional global-norm clipping)."""
        self._step += 1
        scale = 1.0
        if self.clip_norm is not None:
            norm = self.global_gradient_norm()
            if norm > self.clip_norm:
                scale = self.clip_norm / (norm + 1e-12)
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for param, grad, m, v in zip(self.params, self.grads, self._m, self._v):
            g = grad * scale
            m *= self.beta1
            m += (1.0 - self.beta1) * g
            v *= self.beta2
            v += (1.0 - self.beta2) * g**2
            update = (m / bias1) / (np.sqrt(v / bias2) + self.epsilon)
            param -= self.learning_rate * update
