"""Engineered trace features and multi-trace voting.

The paper leaves the confusable-site problem (canva.com vs. notion.com)
as future work.  Two standard refinements implemented here:

* :func:`summary_features` — hand-crafted per-trace features (moments,
  burst structure, spectrum, autocorrelation) that complement the
  BiLSTM's sequential view and power the fast baselines.
* :class:`MultiTraceVoter` — when the attacker can observe several
  visits/inferences of the same victim, averaging class probabilities
  across traces sharpens the decision considerably (error decays roughly
  exponentially in the number of traces for independent errors).
"""

from __future__ import annotations

import numpy as np

from repro.ml.model import AttentionBiLstmClassifier


def summary_features(traces: np.ndarray, spectrum_bins: int = 8) -> np.ndarray:
    """Per-trace engineered features.

    Input ``(samples, T)``; output ``(samples, F)`` with, per trace:
    total activity, mean, std, peak, active-slot fraction, burst count
    (0→nonzero transitions), time-to-first-activity, center of mass,
    the first *spectrum_bins* FFT magnitudes, and autocorrelation at
    lags 1/2/4.
    """
    x = np.asarray(traces, dtype=np.float64)
    if x.ndim != 2:
        raise ValueError(f"traces must be (samples, T), got {x.shape}")
    samples, steps = x.shape
    active = x > 0

    total = x.sum(axis=1)
    mean = x.mean(axis=1)
    std = x.std(axis=1)
    peak = x.max(axis=1)
    active_fraction = active.mean(axis=1)
    bursts = (np.diff(active.astype(np.int8), axis=1) == 1).sum(axis=1)
    first_active = np.where(
        active.any(axis=1), np.argmax(active, axis=1), steps
    ).astype(np.float64)
    positions = np.arange(steps)
    center_of_mass = (x * positions).sum(axis=1) / np.maximum(total, 1e-9)

    spectrum = np.abs(np.fft.rfft(x, axis=1))[:, 1 : spectrum_bins + 1]
    if spectrum.shape[1] < spectrum_bins:
        pad = np.zeros((samples, spectrum_bins - spectrum.shape[1]))
        spectrum = np.concatenate([spectrum, pad], axis=1)

    def autocorrelation(lag: int) -> np.ndarray:
        if steps <= lag:
            return np.zeros(samples)
        left = x[:, :-lag] - mean[:, None]
        right = x[:, lag:] - mean[:, None]
        denominator = np.maximum(std**2 * (steps - lag), 1e-9)
        return (left * right).sum(axis=1) / denominator

    columns = [
        total, mean, std, peak, active_fraction, bursts.astype(np.float64),
        first_active, center_of_mass,
    ]
    features = np.column_stack(
        columns + [spectrum] + [autocorrelation(lag)[:, None] for lag in (1, 2, 4)]
    )
    return features


class MultiTraceVoter:
    """Average class probabilities across several traces of one victim."""

    def __init__(self, classifier: AttentionBiLstmClassifier, mean: float, std: float) -> None:
        self.classifier = classifier
        self._mean = mean
        self._std = std if std else 1.0

    @classmethod
    def from_trainer(cls, trainer) -> "MultiTraceVoter":
        """Build from a fitted :class:`~repro.ml.train.Trainer`."""
        if not hasattr(trainer, "_mean"):
            raise RuntimeError("the trainer has not been fitted")
        return cls(trainer.model, trainer._mean, trainer._std)

    def predict(self, traces: np.ndarray) -> int:
        """One label for a stack of ``(k, T)`` traces of the same victim."""
        x = (np.asarray(traces, dtype=np.float64) - self._mean) / self._std
        if x.ndim == 1:
            x = x[None, :]
        probabilities = self.classifier.predict_proba(x)
        return int(probabilities.mean(axis=0).argmax())

    def confidence(self, traces: np.ndarray) -> float:
        """Posterior mass of the winning class after averaging."""
        x = (np.asarray(traces, dtype=np.float64) - self._mean) / self._std
        if x.ndim == 1:
            x = x[None, :]
        averaged = self.classifier.predict_proba(x).mean(axis=0)
        return float(averaged.max())
