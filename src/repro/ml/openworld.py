"""Open-world classification.

The paper's fingerprinting studies are closed-world (every test trace
belongs to a trained class).  Real attackers face an *open world*: the
victim may visit a site — or run a model — the attacker never profiled.
The standard fix is confidence thresholding: reject a prediction whose
posterior mass falls below a threshold calibrated on held-out known
traces, trading a little known-class recall for the ability to say
"unknown".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.model import AttentionBiLstmClassifier

#: Label returned for rejected (out-of-world) traces.
UNKNOWN = -1


@dataclass(frozen=True)
class OpenWorldScores:
    """Evaluation of an open-world split."""

    known_accuracy: float
    unknown_rejection_rate: float

    @property
    def balanced(self) -> float:
        """Mean of known-class accuracy and unknown rejection."""
        return (self.known_accuracy + self.unknown_rejection_rate) / 2


class OpenWorldClassifier:
    """Confidence-thresholded wrapper around the BiLSTM."""

    def __init__(
        self,
        classifier: AttentionBiLstmClassifier,
        mean: float,
        std: float,
        threshold: float = 0.5,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ValueError(f"threshold must be in (0, 1), got {threshold}")
        self.classifier = classifier
        self.threshold = threshold
        self._mean = mean
        self._std = std if std else 1.0

    @classmethod
    def from_trainer(cls, trainer, threshold: float = 0.5) -> "OpenWorldClassifier":
        """Build from a fitted :class:`~repro.ml.train.Trainer`."""
        if not hasattr(trainer, "_mean"):
            raise RuntimeError("the trainer has not been fitted")
        return cls(trainer.model, trainer._mean, trainer._std, threshold)

    def _proba(self, traces: np.ndarray) -> np.ndarray:
        x = (np.asarray(traces, dtype=np.float64) - self._mean) / self._std
        if x.ndim == 1:
            x = x[None, :]
        return self.classifier.predict_proba(x)

    def predict(self, traces: np.ndarray) -> np.ndarray:
        """Labels with :data:`UNKNOWN` for low-confidence traces."""
        probabilities = self._proba(traces)
        labels = probabilities.argmax(axis=1)
        confident = probabilities.max(axis=1) >= self.threshold
        return np.where(confident, labels, UNKNOWN)

    def calibrate_threshold(
        self, known_traces: np.ndarray, target_known_recall: float = 0.9
    ) -> float:
        """Pick the largest threshold keeping *target_known_recall* of the
        held-out known traces accepted; installs and returns it."""
        if not 0.0 < target_known_recall <= 1.0:
            raise ValueError("target_known_recall must be in (0, 1]")
        confidences = np.sort(self._proba(known_traces).max(axis=1))
        index = int(np.floor((1.0 - target_known_recall) * len(confidences)))
        index = min(index, len(confidences) - 1)
        threshold = float(min(max(confidences[index] - 1e-9, 1e-6), 1 - 1e-6))
        self.threshold = threshold
        return threshold

    def evaluate(
        self,
        known_traces: np.ndarray,
        known_labels: np.ndarray,
        unknown_traces: np.ndarray,
    ) -> OpenWorldScores:
        """Score known-class accuracy and unknown rejection."""
        known_predictions = self.predict(known_traces)
        known_accuracy = float(
            (known_predictions == np.asarray(known_labels)).mean()
        )
        unknown_predictions = self.predict(unknown_traces)
        rejection = float((unknown_predictions == UNKNOWN).mean())
        return OpenWorldScores(
            known_accuracy=known_accuracy, unknown_rejection_rate=rejection
        )
