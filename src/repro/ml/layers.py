"""Neural-network layers with analytic gradients.

Conventions: inputs are ``(batch, time, features)`` float64 arrays; every
layer exposes ``forward`` (and keeps the cache it needs), ``backward``
(returning the gradient w.r.t. its input), and ``params()`` /
``grads()`` aligned lists for the optimizer.
"""

from __future__ import annotations

import numpy as np


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    expx = np.exp(x[~positive])
    out[~positive] = expx / (1.0 + expx)
    return out


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Stable softmax along *axis*."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def softmax_cross_entropy(
    logits: np.ndarray, labels: np.ndarray
) -> tuple[float, np.ndarray]:
    """Mean cross-entropy loss and its gradient w.r.t. *logits*.

    *labels* are integer class indices of shape ``(batch,)``.
    """
    if logits.ndim != 2:
        raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
    batch = logits.shape[0]
    probabilities = softmax(logits, axis=1)
    picked = probabilities[np.arange(batch), labels]
    loss = float(-np.log(np.clip(picked, 1e-12, None)).mean())
    grad = probabilities.copy()
    grad[np.arange(batch), labels] -= 1.0
    return loss, grad / batch


def _glorot(rng: np.random.Generator, fan_in: int, fan_out: int) -> np.ndarray:
    scale = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-scale, scale, size=(fan_in, fan_out))


class Dense:
    """Fully connected layer ``y = x @ W + b``."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator) -> None:
        self.weight = _glorot(rng, in_features, out_features)
        self.bias = np.zeros(out_features)
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Apply the affine map (works on any leading shape)."""
        self._input = x
        return x @ self.weight + self.bias

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Accumulate parameter grads; return grad w.r.t. the input."""
        x = self._input
        flat_x = x.reshape(-1, x.shape[-1])
        flat_g = grad_output.reshape(-1, grad_output.shape[-1])
        self.grad_weight[...] = flat_x.T @ flat_g
        self.grad_bias[...] = flat_g.sum(axis=0)
        return grad_output @ self.weight.T

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias]


class LstmCell:
    """One-direction LSTM over a full sequence.

    Gate order in the stacked weight matrices: input, forget, output,
    candidate.  The forget-gate bias starts at 1 (standard trick for
    gradient flow on long traces).
    """

    def __init__(self, in_features: int, hidden: int, rng: np.random.Generator) -> None:
        self.in_features = in_features
        self.hidden = hidden
        self.w_x = _glorot(rng, in_features, 4 * hidden)
        self.w_h = _glorot(rng, hidden, 4 * hidden)
        self.bias = np.zeros(4 * hidden)
        self.bias[hidden : 2 * hidden] = 1.0
        self.grad_w_x = np.zeros_like(self.w_x)
        self.grad_w_h = np.zeros_like(self.w_h)
        self.grad_bias = np.zeros_like(self.bias)
        self._cache: dict | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the sequence; return hidden states ``(batch, T, hidden)``."""
        batch, steps, _ = x.shape
        hidden = self.hidden
        h = np.zeros((batch, hidden))
        c = np.zeros((batch, hidden))
        hs = np.zeros((batch, steps, hidden))
        cache = {"x": x, "i": [], "f": [], "o": [], "g": [], "c": [], "h_prev": [], "c_prev": []}
        for t in range(steps):
            cache["h_prev"].append(h)
            cache["c_prev"].append(c)
            z = x[:, t, :] @ self.w_x + h @ self.w_h + self.bias
            i = sigmoid(z[:, :hidden])
            f = sigmoid(z[:, hidden : 2 * hidden])
            o = sigmoid(z[:, 2 * hidden : 3 * hidden])
            g = np.tanh(z[:, 3 * hidden :])
            c = f * c + i * g
            h = o * np.tanh(c)
            hs[:, t, :] = h
            for key, value in zip("ifog", (i, f, o, g)):
                cache[key].append(value)
            cache["c"].append(c)
        self._cache = cache
        return hs

    def backward(self, grad_hs: np.ndarray) -> np.ndarray:
        """Backprop through time; return grad w.r.t. the input sequence."""
        cache = self._cache
        x = cache["x"]
        batch, steps, _ = x.shape
        hidden = self.hidden
        self.grad_w_x[...] = 0.0
        self.grad_w_h[...] = 0.0
        self.grad_bias[...] = 0.0
        grad_x = np.zeros_like(x)
        dh_next = np.zeros((batch, hidden))
        dc_next = np.zeros((batch, hidden))
        for t in range(steps - 1, -1, -1):
            i, f, o, g = (cache[k][t] for k in "ifog")
            c = cache["c"][t]
            c_prev = cache["c_prev"][t]
            h_prev = cache["h_prev"][t]
            tanh_c = np.tanh(c)
            dh = grad_hs[:, t, :] + dh_next
            do = dh * tanh_c
            dc = dh * o * (1.0 - tanh_c**2) + dc_next
            di = dc * g
            dg = dc * i
            df = dc * c_prev
            dc_next = dc * f
            dz = np.concatenate(
                [
                    di * i * (1.0 - i),
                    df * f * (1.0 - f),
                    do * o * (1.0 - o),
                    dg * (1.0 - g**2),
                ],
                axis=1,
            )
            self.grad_w_x += x[:, t, :].T @ dz
            self.grad_w_h += h_prev.T @ dz
            self.grad_bias += dz.sum(axis=0)
            grad_x[:, t, :] = dz @ self.w_x.T
            dh_next = dz @ self.w_h.T
        return grad_x

    def params(self) -> list[np.ndarray]:
        return [self.w_x, self.w_h, self.bias]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_w_x, self.grad_w_h, self.grad_bias]


class BiLstmLayer:
    """Bidirectional LSTM: forward and reversed passes, concatenated."""

    def __init__(self, in_features: int, hidden: int, rng: np.random.Generator) -> None:
        self.forward_cell = LstmCell(in_features, hidden, rng)
        self.backward_cell = LstmCell(in_features, hidden, rng)
        self.hidden = hidden

    @property
    def out_features(self) -> int:
        """Concatenated output width."""
        return 2 * self.hidden

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Return ``(batch, T, 2*hidden)``."""
        fwd = self.forward_cell.forward(x)
        bwd = self.backward_cell.forward(x[:, ::-1, :])[:, ::-1, :]
        return np.concatenate([fwd, bwd], axis=2)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        hidden = self.hidden
        grad_fwd = self.forward_cell.backward(grad_output[:, :, :hidden])
        grad_bwd = self.backward_cell.backward(grad_output[:, ::-1, hidden:])[:, ::-1, :]
        return grad_fwd + grad_bwd

    def params(self) -> list[np.ndarray]:
        return self.forward_cell.params() + self.backward_cell.params()

    def grads(self) -> list[np.ndarray]:
        return self.forward_cell.grads() + self.backward_cell.grads()


class AdditiveAttention:
    """Additive (Bahdanau-style) attention pooling over time.

    ``score_t = v . tanh(h_t @ W + b)``; the output is the
    attention-weighted sum of the hidden states.
    """

    def __init__(self, in_features: int, attention_size: int, rng: np.random.Generator) -> None:
        self.weight = _glorot(rng, in_features, attention_size)
        self.bias = np.zeros(attention_size)
        self.v = _glorot(rng, attention_size, 1)[:, 0]
        self.grad_weight = np.zeros_like(self.weight)
        self.grad_bias = np.zeros_like(self.bias)
        self.grad_v = np.zeros_like(self.v)
        self._cache: tuple | None = None
        self.last_attention: np.ndarray | None = None

    def forward(self, h: np.ndarray) -> np.ndarray:
        """Pool ``(batch, T, F)`` into ``(batch, F)``."""
        u = np.tanh(h @ self.weight + self.bias)  # (B, T, A)
        scores = u @ self.v  # (B, T)
        alpha = softmax(scores, axis=1)
        context = np.einsum("bt,btf->bf", alpha, h)
        self._cache = (h, u, alpha)
        self.last_attention = alpha
        return context

    def backward(self, grad_context: np.ndarray) -> np.ndarray:
        h, u, alpha = self._cache
        # context = sum_t alpha_t h_t
        grad_alpha = np.einsum("bf,btf->bt", grad_context, h)
        grad_h = alpha[:, :, None] * grad_context[:, None, :]
        # softmax backward
        inner = (grad_alpha * alpha).sum(axis=1, keepdims=True)
        grad_scores = alpha * (grad_alpha - inner)  # (B, T)
        # scores = u @ v
        self.grad_v[...] = np.einsum("bt,bta->a", grad_scores, u)
        grad_u = grad_scores[:, :, None] * self.v[None, None, :]
        grad_pre = grad_u * (1.0 - u**2)  # tanh'
        flat_h = h.reshape(-1, h.shape[-1])
        flat_pre = grad_pre.reshape(-1, grad_pre.shape[-1])
        self.grad_weight[...] = flat_h.T @ flat_pre
        self.grad_bias[...] = flat_pre.sum(axis=0)
        grad_h += grad_pre @ self.weight.T
        return grad_h

    def params(self) -> list[np.ndarray]:
        return [self.weight, self.bias, self.v]

    def grads(self) -> list[np.ndarray]:
        return [self.grad_weight, self.grad_bias, self.grad_v]


class Dropout:
    """Inverted dropout; identity in evaluation mode."""

    def __init__(self, rate: float, rng: np.random.Generator) -> None:
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng
        self.training = True
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask

    def params(self) -> list[np.ndarray]:
        return []

    def grads(self) -> list[np.ndarray]:
        return []
