"""Training loop and dataset utilities."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.ml.metrics import accuracy
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.optim import Adam


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.2,
    rng: np.random.Generator | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Stratified shuffle split (per-class proportions preserved).

    The paper uses 80/20 splits throughout.
    """
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    if len(x) != len(y):
        raise ValueError("x and y must align")
    rng = rng if rng is not None else np.random.default_rng(0)
    train_idx: list[int] = []
    test_idx: list[int] = []
    for cls in np.unique(y):
        members = np.flatnonzero(y == cls)
        rng.shuffle(members)
        cut = max(int(round(len(members) * test_fraction)), 1)
        test_idx.extend(members[:cut])
        train_idx.extend(members[cut:])
    train_idx = np.array(sorted(train_idx))
    test_idx = np.array(sorted(test_idx))
    return x[train_idx], y[train_idx], x[test_idx], y[test_idx]


def standardize_traces(x: np.ndarray) -> np.ndarray:
    """Zero-mean unit-variance scaling using global statistics."""
    x = np.asarray(x, dtype=np.float64)
    std = x.std()
    return (x - x.mean()) / (std if std > 0 else 1.0)


@dataclass(frozen=True)
class TrainConfig:
    """Training hyperparameters."""

    epochs: int = 30
    batch_size: int = 32
    learning_rate: float = 3e-3
    seed: int = 0
    #: Stop early once training accuracy reaches this level.
    early_stop_train_accuracy: float = 0.999


@dataclass
class TrainResult:
    """Per-epoch history and the final state."""

    losses: list[float] = field(default_factory=list)
    train_accuracies: list[float] = field(default_factory=list)

    @property
    def epochs_run(self) -> int:
        """How many epochs actually executed."""
        return len(self.losses)


class Trainer:
    """Minibatch Adam trainer for the Attention-BiLSTM."""

    def __init__(
        self, model: AttentionBiLstmClassifier, config: TrainConfig | None = None
    ) -> None:
        self.model = model
        self.config = config or TrainConfig()
        self.optimizer = Adam(
            model.params(), model.grads(), learning_rate=self.config.learning_rate
        )
        self.rng = np.random.default_rng(self.config.seed)

    def fit(self, x: np.ndarray, y: np.ndarray) -> TrainResult:
        """Train on ``(samples, T)`` traces with integer labels."""
        x = np.asarray(x, dtype=np.float64)
        # Remember the training statistics: predictions (possibly single
        # traces) must be scaled with *these*, not their own.
        self._mean = float(x.mean())
        self._std = float(x.std()) or 1.0
        x = (x - self._mean) / self._std
        y = np.asarray(y)
        result = TrainResult()
        count = len(x)
        for _ in range(self.config.epochs):
            order = self.rng.permutation(count)
            epoch_loss = 0.0
            batches = 0
            self.model.set_training(True)
            for start in range(0, count, self.config.batch_size):
                batch = order[start : start + self.config.batch_size]
                loss, grad = self.model.loss(x[batch], y[batch])
                self.model.backward(grad)
                self.optimizer.step()
                epoch_loss += loss
                batches += 1
            result.losses.append(epoch_loss / batches)
            train_accuracy = accuracy(y, self.predict(x, already_standardized=True))
            result.train_accuracies.append(train_accuracy)
            if train_accuracy >= self.config.early_stop_train_accuracy:
                break
        self.model.set_training(False)
        return result

    def predict(self, x: np.ndarray, already_standardized: bool = False) -> np.ndarray:
        """Predict in evaluation mode, batched to bound memory.

        Inputs are scaled with the statistics remembered from :meth:`fit`.
        """
        if not already_standardized:
            if not hasattr(self, "_mean"):
                raise RuntimeError("fit() must run before predict()")
            x = (np.asarray(x, dtype=np.float64) - self._mean) / self._std
        outputs = []
        for start in range(0, len(x), 256):
            outputs.append(self.model.predict(x[start : start + 256]))
        return np.concatenate(outputs)

    def evaluate(self, x: np.ndarray, y: np.ndarray) -> float:
        """Top-1 accuracy on held-out data."""
        return accuracy(np.asarray(y), self.predict(x))
