"""Trace-dataset persistence.

The paper's artifact collects datasets for hours (the full top-100 sweep
takes "approximately a day") and analyzes them offline.  This module
gives collections a stable on-disk form: traces + labels + class names +
free-form metadata in one ``.npz``, with the metadata JSON-encoded so the
file stays self-describing.

Writes are crash-safe: the archive is staged in memory and lands via the
atomic temp-file + ``os.replace`` path, so a kill mid-save leaves either
the previous file or the new one — never a truncated zip.  Loads verify
archive structure and an embedded content checksum and raise
:class:`~repro.errors.DatasetCorruptionError` on anything torn,
truncated, or hand-edited.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.errors import DatasetCorruptionError
from repro.experiments.checkpoint import atomic_write_bytes

#: Format marker stored in every file.
FORMAT_VERSION = 1

_REQUIRED_KEYS = ("traces", "labels", "class_names", "metadata")


def _content_sha256(traces: np.ndarray, labels: np.ndarray) -> str:
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(traces).tobytes())
    digest.update(np.ascontiguousarray(labels).tobytes())
    return digest.hexdigest()


@dataclass
class TraceDataset:
    """An in-memory labeled trace collection."""

    traces: np.ndarray  # (samples, T)
    labels: np.ndarray  # (samples,)
    class_names: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.traces = np.asarray(self.traces)
        self.labels = np.asarray(self.labels)
        if self.traces.ndim != 2:
            raise ValueError(f"traces must be (samples, T), got {self.traces.shape}")
        if len(self.traces) != len(self.labels):
            raise ValueError("traces and labels must align")
        if self.labels.size and self.labels.max() >= len(self.class_names):
            raise ValueError("a label exceeds the class-name table")

    @property
    def samples(self) -> int:
        """Number of traces."""
        return len(self.traces)

    @property
    def slots(self) -> int:
        """Trace length."""
        return int(self.traces.shape[1])

    def class_counts(self) -> dict[str, int]:
        """Traces per class name."""
        return {
            name: int((self.labels == index).sum())
            for index, name in enumerate(self.class_names)
        }

    def subset(self, class_indices: list[int]) -> "TraceDataset":
        """A new dataset restricted to *class_indices* (relabeled 0..k)."""
        mapping = {old: new for new, old in enumerate(class_indices)}
        mask = np.isin(self.labels, class_indices)
        return TraceDataset(
            traces=self.traces[mask],
            labels=np.array([mapping[int(label)] for label in self.labels[mask]]),
            class_names=tuple(self.class_names[i] for i in class_indices),
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Atomically write the dataset to *path* (``.npz``).

        The archive is serialized to memory first and then written via
        temp-file + ``os.replace``; a reader never observes a partial
        zip.  The stored metadata embeds a SHA-256 of the trace/label
        bytes that :meth:`load` verifies.
        """
        path = Path(path)
        if path.suffix != ".npz":
            path = path.with_suffix(path.suffix + ".npz")
        buffer = io.BytesIO()
        np.savez_compressed(
            buffer,
            traces=self.traces,
            labels=self.labels,
            class_names=np.array(self.class_names, dtype=object),
            metadata=json.dumps(
                {
                    "format_version": FORMAT_VERSION,
                    "content_sha256": _content_sha256(self.traces, self.labels),
                    **self.metadata,
                }
            ),
        )
        atomic_write_bytes(path, buffer.getvalue())
        return path

    @classmethod
    def load(cls, path: str | Path) -> "TraceDataset":
        """Read a dataset written by :meth:`save`, verifying integrity.

        Raises :class:`~repro.errors.DatasetCorruptionError` (a
        ``ValueError`` subclass) when the archive is truncated, missing
        arrays, carries an unknown format version, or fails its embedded
        content checksum.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"no dataset at {path}")
        try:
            with np.load(path, allow_pickle=True) as archive:
                missing = [k for k in _REQUIRED_KEYS if k not in archive.files]
                if missing:
                    raise DatasetCorruptionError(
                        f"{path}: archive is missing arrays {missing} — "
                        "truncated or not a trace dataset"
                    )
                try:
                    metadata = json.loads(str(archive["metadata"]))
                except json.JSONDecodeError as exc:
                    raise DatasetCorruptionError(
                        f"{path}: embedded metadata is not valid JSON: {exc}"
                    ) from exc
                version = metadata.pop("format_version", None)
                if version != FORMAT_VERSION:
                    raise DatasetCorruptionError(
                        f"unsupported dataset format version {version!r}"
                    )
                expected = metadata.pop("content_sha256", None)
                traces = archive["traces"]
                labels = archive["labels"]
                if expected is not None:
                    actual = _content_sha256(traces, labels)
                    if actual != expected:
                        raise DatasetCorruptionError(
                            f"{path}: content checksum mismatch "
                            f"(stored {expected[:12]}…, computed {actual[:12]}…)"
                        )
                return cls(
                    traces=traces,
                    labels=labels,
                    class_names=tuple(str(n) for n in archive["class_names"]),
                    metadata=metadata,
                )
        except (
            zipfile.BadZipFile, pickle.UnpicklingError, EOFError, OSError
        ) as exc:
            raise DatasetCorruptionError(
                f"{path}: unreadable archive ({exc}) — torn write or "
                "truncated copy"
            ) from exc

    @classmethod
    def merge(cls, first: "TraceDataset", second: "TraceDataset") -> "TraceDataset":
        """Concatenate two collections with identical class tables."""
        if first.class_names != second.class_names:
            raise ValueError("datasets have different class tables")
        if first.slots != second.slots:
            raise ValueError("datasets have different trace lengths")
        return cls(
            traces=np.concatenate([first.traces, second.traces]),
            labels=np.concatenate([first.labels, second.labels]),
            class_names=first.class_names,
            metadata={**second.metadata, **first.metadata},
        )

    @classmethod
    def merge_many(cls, datasets: Sequence["TraceDataset"]) -> "TraceDataset":
        """Fold :meth:`merge` over *datasets* (at least one).

        The natural way to combine the segments of an interrupted
        collection sweep: load the dataset of each run-directory segment
        and merge them into the artifact an uninterrupted run would have
        produced.
        """
        if not datasets:
            raise ValueError("merge_many needs at least one dataset")
        merged = datasets[0]
        for dataset in datasets[1:]:
            merged = cls.merge(merged, dataset)
        return merged

    @classmethod
    def load_partial(
        cls, paths: Iterable[str | Path], strict: bool = False
    ) -> "TraceDataset":
        """Load and merge whichever of *paths* exist and pass validation.

        Built for crash recovery: point it at the artifact files of
        several partial runs and get one dataset back.  Corrupt or
        missing files are skipped (or re-raised with ``strict=True``);
        if nothing loads, the first error propagates.
        """
        loaded: list[TraceDataset] = []
        first_error: Exception | None = None
        for path in paths:
            try:
                loaded.append(cls.load(path))
            except (DatasetCorruptionError, FileNotFoundError) as exc:
                if strict:
                    raise
                first_error = first_error or exc
        if not loaded:
            raise first_error or FileNotFoundError(
                "load_partial: no dataset paths given"
            )
        return cls.merge_many(loaded)
