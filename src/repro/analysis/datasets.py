"""Trace-dataset persistence.

The paper's artifact collects datasets for hours (the full top-100 sweep
takes "approximately a day") and analyzes them offline.  This module
gives collections a stable on-disk form: traces + labels + class names +
free-form metadata in one ``.npz``, with the metadata JSON-encoded so the
file stays self-describing.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

#: Format marker stored in every file.
FORMAT_VERSION = 1


@dataclass
class TraceDataset:
    """An in-memory labeled trace collection."""

    traces: np.ndarray  # (samples, T)
    labels: np.ndarray  # (samples,)
    class_names: tuple[str, ...]
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.traces = np.asarray(self.traces)
        self.labels = np.asarray(self.labels)
        if self.traces.ndim != 2:
            raise ValueError(f"traces must be (samples, T), got {self.traces.shape}")
        if len(self.traces) != len(self.labels):
            raise ValueError("traces and labels must align")
        if self.labels.size and self.labels.max() >= len(self.class_names):
            raise ValueError("a label exceeds the class-name table")

    @property
    def samples(self) -> int:
        """Number of traces."""
        return len(self.traces)

    @property
    def slots(self) -> int:
        """Trace length."""
        return int(self.traces.shape[1])

    def class_counts(self) -> dict[str, int]:
        """Traces per class name."""
        return {
            name: int((self.labels == index).sum())
            for index, name in enumerate(self.class_names)
        }

    def subset(self, class_indices: list[int]) -> "TraceDataset":
        """A new dataset restricted to *class_indices* (relabeled 0..k)."""
        mapping = {old: new for new, old in enumerate(class_indices)}
        mask = np.isin(self.labels, class_indices)
        return TraceDataset(
            traces=self.traces[mask],
            labels=np.array([mapping[int(label)] for label in self.labels[mask]]),
            class_names=tuple(self.class_names[i] for i in class_indices),
            metadata=dict(self.metadata),
        )

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save(self, path: str | Path) -> Path:
        """Write the dataset to *path* (``.npz``)."""
        path = Path(path)
        np.savez_compressed(
            path,
            traces=self.traces,
            labels=self.labels,
            class_names=np.array(self.class_names, dtype=object),
            metadata=json.dumps(
                {"format_version": FORMAT_VERSION, **self.metadata}
            ),
        )
        return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")

    @classmethod
    def load(cls, path: str | Path) -> "TraceDataset":
        """Read a dataset written by :meth:`save`."""
        with np.load(Path(path), allow_pickle=True) as archive:
            metadata = json.loads(str(archive["metadata"]))
            version = metadata.pop("format_version", None)
            if version != FORMAT_VERSION:
                raise ValueError(
                    f"unsupported dataset format version {version!r}"
                )
            return cls(
                traces=archive["traces"],
                labels=archive["labels"],
                class_names=tuple(str(n) for n in archive["class_names"]),
                metadata=metadata,
            )

    @classmethod
    def merge(cls, first: "TraceDataset", second: "TraceDataset") -> "TraceDataset":
        """Concatenate two collections with identical class tables."""
        if first.class_names != second.class_names:
            raise ValueError("datasets have different class tables")
        if first.slots != second.slots:
            raise ValueError("datasets have different trace lengths")
        return cls(
            traces=np.concatenate([first.traces, second.traces]),
            labels=np.concatenate([first.labels, second.labels]),
            class_names=first.class_names,
            metadata={**second.metadata, **first.metadata},
        )
