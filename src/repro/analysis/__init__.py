"""Analysis utilities: statistics, keystroke evaluation, reporting."""

from repro.analysis.keystroke_eval import KeystrokeEvaluation, evaluate_keystrokes
from repro.analysis.reporting import format_histogram, format_table
from repro.analysis.stats import confidence_interval_95, geometric_mean, summarize

__all__ = [
    "KeystrokeEvaluation",
    "confidence_interval_95",
    "evaluate_keystrokes",
    "format_histogram",
    "format_table",
    "geometric_mean",
    "summarize",
]
