"""Keystroke-detection scoring (Section VI-C).

Ground-truth keystrokes and attacker-detected events are matched
greedily in time order within a tolerance window; the paper reports
precision, recall, F1, and the standard deviation of the matched
timestamp differences (in ms).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hw.units import DEFAULT_TSC_HZ
from repro.ml.metrics import precision_recall_f1

#: Detections further than this from any keystroke count as false
#: positives (half the minimum plausible inter-key gap).
DEFAULT_TOLERANCE_MS = 40.0


@dataclass(frozen=True)
class KeystrokeEvaluation:
    """Scored detection run."""

    true_positives: int
    false_positives: int
    false_negatives: int
    precision: float
    recall: float
    f1: float
    #: Standard deviation of (detected - actual) for matched events, ms.
    timestamp_std_ms: float
    #: Mean absolute timing error of matched events, ms.
    timestamp_mae_ms: float

    @property
    def detections(self) -> int:
        """Total events the attacker reported."""
        return self.true_positives + self.false_positives

    @property
    def ground_truth(self) -> int:
        """Total real keystrokes."""
        return self.true_positives + self.false_negatives


def evaluate_keystrokes(
    truth_cycles: np.ndarray,
    detected_cycles: np.ndarray,
    tolerance_ms: float = DEFAULT_TOLERANCE_MS,
    tsc_hz: int = DEFAULT_TSC_HZ,
) -> KeystrokeEvaluation:
    """Match detections to ground truth and score them.

    Greedy one-to-one matching in time order: each ground-truth event
    takes the nearest unmatched detection within the tolerance.
    """
    truth = np.sort(np.asarray(truth_cycles, dtype=np.float64))
    detected = np.sort(np.asarray(detected_cycles, dtype=np.float64))
    tolerance = tolerance_ms * 1e-3 * tsc_hz

    matched_errors: list[float] = []
    used = np.zeros(len(detected), dtype=bool)
    for event in truth:
        candidates = np.flatnonzero(
            (~used) & (np.abs(detected - event) <= tolerance)
        )
        if candidates.size == 0:
            continue
        best = candidates[np.abs(detected[candidates] - event).argmin()]
        used[best] = True
        matched_errors.append(float(detected[best] - event))

    true_positives = len(matched_errors)
    false_positives = int((~used).sum())
    false_negatives = len(truth) - true_positives
    precision, recall, f1 = precision_recall_f1(
        true_positives, false_positives, false_negatives
    )
    if matched_errors:
        errors_ms = np.array(matched_errors) / tsc_hz * 1e3
        std_ms = float(errors_ms.std(ddof=1)) if len(errors_ms) > 1 else 0.0
        mae_ms = float(np.abs(errors_ms).mean())
    else:
        std_ms = float("nan")
        mae_ms = float("nan")
    return KeystrokeEvaluation(
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
        precision=precision,
        recall=recall,
        f1=f1,
        timestamp_std_ms=std_ms,
        timestamp_mae_ms=mae_ms,
    )
