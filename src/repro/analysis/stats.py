"""Statistics used by the evaluation tables.

Table III reports 95 % confidence intervals around the geometric mean of
the quiet-local measurements and checks that every noisy-environment
sample falls inside them.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats as scipy_stats


def geometric_mean(values: np.ndarray) -> float:
    """Geometric mean (values must be positive)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot average zero samples")
    if np.any(values <= 0):
        raise ValueError("geometric mean requires positive values")
    return float(np.exp(np.log(values).mean()))


def confidence_interval_95(values: np.ndarray) -> tuple[float, float]:
    """Return ``(mean, h)`` such that the 95 % CI is ``mean ± h``.

    Uses the t-distribution (the sample counts in Table III are ~50).
    """
    values = np.asarray(values, dtype=np.float64)
    if values.size < 2:
        raise ValueError("confidence interval needs at least 2 samples")
    mean = float(values.mean())
    sem = float(values.std(ddof=1) / np.sqrt(values.size))
    h = float(sem * scipy_stats.t.ppf(0.975, values.size - 1))
    return mean, h


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    mean: float
    std: float
    median: float
    minimum: float
    maximum: float
    count: int


def summarize(values: np.ndarray) -> Summary:
    """Compute a :class:`Summary`."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot summarize zero samples")
    return Summary(
        mean=float(values.mean()),
        std=float(values.std(ddof=1)) if values.size > 1 else 0.0,
        median=float(np.median(values)),
        minimum=float(values.min()),
        maximum=float(values.max()),
        count=int(values.size),
    )
