"""Plain-text reporting: aligned tables and ASCII histograms.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output readable in a terminal.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned text table."""
    if not headers:
        raise ValueError("a table needs headers")
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    for row in cells:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def format_histogram(
    values: np.ndarray, bins: int = 20, width: int = 50, label: str = ""
) -> str:
    """Render an ASCII histogram (used for the Fig. 4 latency clouds)."""
    values = np.asarray(values, dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot plot zero samples")
    counts, edges = np.histogram(values, bins=bins)
    peak = counts.max() if counts.max() else 1
    lines = [label] if label else []
    for count, low, high in zip(counts, edges, edges[1:]):
        bar = "#" * int(round(count / peak * width))
        lines.append(f"{low:10.0f}-{high:<10.0f} |{bar} {count}")
    return "\n".join(lines)


def format_series(xs: Sequence[object], ys: Sequence[object], name: str) -> str:
    """Render an (x, y) series as rows — the text form of a figure line."""
    if len(xs) != len(ys):
        raise ValueError("series lengths differ")
    lines = [f"series: {name}"]
    for x, y in zip(xs, ys):
        lines.append(f"  {x}\t{y}")
    return "\n".join(lines)
