"""Guest processes.

A guest process owns an address space inside its VM and may open the DSA,
which assigns it a PASID (the SVM path: no IOVA mapping, the device walks
the process page table) and maps a work-queue portal into its address
space.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dsa.portal import Portal
from repro.errors import ConfigurationError
from repro.hw.pagetable import AddressSpace
from repro.hw.units import PAGE_SIZE


@dataclass
class GuestProcess:
    """One process inside a VM.

    Created through :meth:`repro.virt.vm.VirtualMachine.spawn_process`;
    portals are opened through the hypervisor so PASID assignment and
    binding happen in one place.
    """

    name: str
    vm_name: str
    space: AddressSpace
    pasid: int
    portals: dict[int, Portal] = field(default_factory=dict)

    def portal(self, wq_id: int = 0) -> Portal:
        """The portal this process opened for *wq_id*."""
        portal = self.portals.get(wq_id)
        if portal is None:
            raise ConfigurationError(
                f"process {self.name!r} has not opened WQ {wq_id}"
            )
        return portal

    def buffer(self, size: int = PAGE_SIZE, huge: bool = False) -> int:
        """Map a fresh zeroed buffer and return its virtual address."""
        return self.space.mmap(size, huge=huge)

    def comp_record(self) -> int:
        """Map a page usable as a completion-record target."""
        return self.space.mmap(PAGE_SIZE)

    def write(self, va: int, data: bytes) -> None:
        """Write into the process's memory."""
        self.space.write(va, data)

    def read(self, va: int, size: int) -> bytes:
        """Read from the process's memory."""
        return self.space.read(va, size)
