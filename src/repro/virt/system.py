"""The cloud host and the paper's attack topologies.

:class:`CloudSystem` is the top-level builder: one physical host (memory,
TSC, a DSA behind VT-d scalable mode) running multiple VMs.  The
hypervisor role is folded into this class: it allocates PASIDs, installs
PASID-table bindings, and maps work-queue portals into guests
(scalable-IOV / SR-IOV pass-through, where guest submissions land directly
in the physical queue "with near native performance").

:class:`AttackTopology` reproduces the three reverse-engineering
configurations of Fig. 5 plus the two attack configurations of Fig. 7:

=====  =============================================================
E0     attacker and victim share one SWQ on one engine (``DSA_SWQ``)
E1     separate WQs bound to the *same* engine (``DSA_DevTLB``)
E2     separate WQs on *separate* engines (control: no leakage)
=====  =============================================================
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass

import numpy as np

from repro.ats.pasid import PasidAllocator
from repro.dsa.device import DsaDevice, DsaDeviceConfig
from repro.dsa.portal import Portal
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan
from repro.hw.clock import TscClock
from repro.hw.memory import PhysicalMemory
from repro.hw.noise import Environment
from repro.hw.pagetable import AddressSpace
from repro.hw.units import GIB
from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline
from repro.virt.vm import VirtualMachine


class AttackTopology(enum.Enum):
    """The E0/E1/E2 configurations of Fig. 5."""

    E0_SHARED_WQ_SHARED_ENGINE = "e0"
    E1_SEPARATE_WQ_SHARED_ENGINE = "e1"
    E2_SEPARATE_WQ_SEPARATE_ENGINE = "e2"


@dataclass(frozen=True)
class TopologyHandles:
    """What a topology setup hands back to the experiment."""

    attacker: GuestProcess
    victim: GuestProcess
    attacker_wq: int
    victim_wq: int
    shared_engine: bool


class CloudSystem:
    """One physical host: memory, clock, DSA, hypervisor, and VMs."""

    def __init__(
        self,
        seed: int = 2026,
        environment: Environment = Environment.LOCAL,
        device_config: DsaDeviceConfig | None = None,
        memory_bytes: int = 8 * GIB,
        fault_plan: FaultPlan | None = None,
        invariants: str | None = None,
        invariant_monitor: "object | None" = None,
    ) -> None:
        self.seed = seed
        self.memory = PhysicalMemory(total_bytes=memory_bytes)
        self.clock = TscClock()
        self.rng = np.random.default_rng(seed)
        config = device_config or DsaDeviceConfig()
        if config.environment is not environment:
            config = DsaDeviceConfig(
                engine_count=config.engine_count,
                total_wq_entries=config.total_wq_entries,
                devtlb=config.devtlb,
                timing=config.timing,
                arbiter_policy=config.arbiter_policy,
                environment=environment,
            )
        self.device = DsaDevice(self.memory, self.clock, self.rng, config)
        self.timeline = Timeline(self.clock)
        self.pasid_allocator = PasidAllocator()
        self.vms: dict[str, VirtualMachine] = {}
        self._next_vm_base = 0x10_0000_0000
        self.fault_injector: FaultInjector | None = None
        if fault_plan is not None:
            self.attach_faults(fault_plan.build_injector())
        self.invariant_monitor = None
        if invariant_monitor is not None:
            self.attach_invariants(invariant_monitor)
        else:
            # Opt-in monitoring: an explicit ``invariants=`` mode wins;
            # otherwise the REPRO_INVARIANTS environment variable turns
            # the monitor on globally (as scripts/run_chaos.sh does with
            # ``strict``).  ``off``/empty leaves the hot path untouched.
            mode = (
                invariants
                if invariants is not None
                else os.environ.get("REPRO_INVARIANTS", "off")
            )
            if mode and mode.strip().lower() != "off":
                from repro.invariants.monitor import InvariantMonitor

                self.attach_invariants(InvariantMonitor(mode=mode))

    def attach_faults(self, injector: FaultInjector) -> FaultInjector:
        """Hook *injector* into the device, engines, PRS, and timeline."""
        injector.attach_system(self)
        return injector

    def attach_invariants(self, monitor):
        """Hook *monitor* into the device, DevTLB, agent, and clock.

        The monitor adopts this system's seed (for replayable violation
        reports) and installs itself as ``self.invariant_monitor``.
        """
        monitor.attach_system(self)
        return monitor

    # ------------------------------------------------------------------
    # VM / process lifecycle
    # ------------------------------------------------------------------
    def create_vm(self, name: str) -> VirtualMachine:
        """Boot a VM (an isolation domain)."""
        if name in self.vms:
            raise ConfigurationError(f"VM {name!r} already exists")
        vm = VirtualMachine(name=name, system=self, base_va=self._next_vm_base)
        self._next_vm_base += 0x10_0000_0000
        self.vms[name] = vm
        return vm

    def _create_process(self, vm: VirtualMachine, name: str) -> GuestProcess:
        space = AddressSpace(self.memory, base_va=vm.base_va)
        pasid = self.pasid_allocator.allocate()
        self.device.bind_process(pasid, space)
        return GuestProcess(name=name, vm_name=vm.name, space=space, pasid=pasid)

    def open_portal(self, process: GuestProcess, wq_id: int) -> Portal:
        """Map a WQ portal into *process* (the scalable-IOV open path)."""
        portal = Portal(self.device, wq_id=wq_id, pasid=process.pasid)
        process.portals[wq_id] = portal
        return portal

    def destroy_process(self, process: GuestProcess) -> None:
        """Tear a process down: unbind its PASID and scrub the IOTLB.

        Mirrors the driver's release path: the PASID-table entry is
        removed, the IOMMU's IOTLB gets a PASID-selective invalidation,
        and the PASID returns to the allocator.  Deliberately **not**
        touched: the DevTLB — the device offers no PASID-selective
        DevTLB invalidation, so a translation cached for the dead
        process lingers until the sub-entry is naturally evicted (one
        more symptom of the isolation gap the paper exploits).
        """
        vm = self.vms.get(process.vm_name)
        if vm is None or vm.processes.get(process.name) is not process:
            raise ConfigurationError(
                f"process {process.name!r} is not live on this host"
            )
        self.device.advance_to(self.clock.now)
        self.device.agent.invalidate_pasid(process.pasid)
        self.device.pasid_table.unbind(process.pasid)
        self.pasid_allocator.release(process.pasid)
        process.portals.clear()
        del vm.processes[process.name]

    # ------------------------------------------------------------------
    # Environment control (noise experiments)
    # ------------------------------------------------------------------
    def set_environment(self, environment: Environment) -> None:
        """Switch the host's noise environment."""
        self.device.set_environment(environment)

    # ------------------------------------------------------------------
    # Canned topologies
    # ------------------------------------------------------------------
    def setup_topology(
        self,
        topology: AttackTopology,
        wq_size: int = 16,
    ) -> TopologyHandles:
        """Configure queues/groups and boot the attacker and victim VMs.

        Must be called on a freshly constructed system (queues cannot be
        reconfigured while live).
        """
        device = self.device
        if topology is AttackTopology.E0_SHARED_WQ_SHARED_ENGINE:
            device.configure_group(0, (0,))
            device.configure_wq(
                WorkQueueConfig(wq_id=0, size=wq_size, mode=WqMode.SHARED, group_id=0)
            )
            attacker_wq = victim_wq = 0
            shared_engine = True
        elif topology is AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE:
            device.configure_group(0, (0,))
            device.configure_wq(
                WorkQueueConfig(wq_id=0, size=wq_size, mode=WqMode.SHARED, group_id=0)
            )
            device.configure_wq(
                WorkQueueConfig(wq_id=1, size=wq_size, mode=WqMode.SHARED, group_id=0)
            )
            attacker_wq, victim_wq = 0, 1
            shared_engine = True
        elif topology is AttackTopology.E2_SEPARATE_WQ_SEPARATE_ENGINE:
            device.configure_group(0, (0,))
            device.configure_group(1, (1,))
            device.configure_wq(
                WorkQueueConfig(wq_id=0, size=wq_size, mode=WqMode.SHARED, group_id=0)
            )
            device.configure_wq(
                WorkQueueConfig(wq_id=1, size=wq_size, mode=WqMode.SHARED, group_id=1)
            )
            attacker_wq, victim_wq = 0, 1
            shared_engine = False
        else:  # pragma: no cover - enum is exhaustive
            raise ConfigurationError(f"unknown topology {topology}")

        attacker_vm = self.create_vm("attacker-vm")
        victim_vm = self.create_vm("victim-vm")
        attacker = attacker_vm.spawn_process("attacker")
        victim = victim_vm.spawn_process("victim")
        self.open_portal(attacker, attacker_wq)
        self.open_portal(victim, victim_wq)
        return TopologyHandles(
            attacker=attacker,
            victim=victim,
            attacker_wq=attacker_wq,
            victim_wq=victim_wq,
            shared_engine=shared_engine,
        )
