"""Virtualization substrate.

Models the cloud host of the paper's threat model (Section V-A, Fig. 7):
virtual machines whose guest processes reach the DSA through scalable-IOV
portal mappings, with PASID-tagged isolation enforced everywhere *except*
the DevTLB and SWQ leaks under study.
"""

from repro.virt.process import GuestProcess
from repro.virt.scheduler import Timeline
from repro.virt.system import AttackTopology, CloudSystem
from repro.virt.vm import VirtualMachine

__all__ = [
    "AttackTopology",
    "CloudSystem",
    "GuestProcess",
    "Timeline",
    "VirtualMachine",
]
