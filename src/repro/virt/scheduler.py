"""Deterministic multi-actor timeline.

Attacker and victim run on different CPU cores (the attacks need no
core co-location), so their actions interleave only through the shared
device and the shared wall clock.  :class:`Timeline` provides that
interleaving deterministically: victim-side actions are scheduled at
absolute timestamps, and the attacker's sampling loop calls
:meth:`Timeline.run_until` before each of its own actions so that
everything the victim "did in the meantime" is applied in order.

An action that falls due while another actor holds the clock (e.g. during
a long probe) is applied as soon as the clock is next consulted — the same
behavior as a process being scheduled slightly late.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

from repro.faults.plan import FaultSite
from repro.hw.clock import TscClock
from repro.hw.units import us_to_cycles

Action = Callable[[], None]


@dataclass(order=True)
class _Event:
    time: int
    sequence: int
    action: Action = field(compare=False)


class Timeline:
    """A time-ordered queue of victim/background actions."""

    def __init__(self, clock: TscClock) -> None:
        self.clock = clock
        self._heap: list[_Event] = []
        self._sequence = 0
        self.executed = 0
        self.fault_injector = None
        self.preemptions = 0
        self.preempted_cycles = 0

    def schedule_at(self, time: int, action: Action) -> None:
        """Run *action* when the timeline reaches absolute cycle *time*."""
        heapq.heappush(self._heap, _Event(time=int(time), sequence=self._sequence, action=action))
        self._sequence += 1

    def schedule_after(self, delay_cycles: int, action: Action) -> None:
        """Run *action* ``delay_cycles`` after the current clock."""
        self.schedule_at(self.clock.now + delay_cycles, action)

    def schedule_after_us(self, delay_us: float, action: Action) -> None:
        """Run *action* ``delay_us`` microseconds from now."""
        self.schedule_after(us_to_cycles(delay_us), action)

    def run_until(self, time: int) -> int:
        """Execute every action due at or before *time*, in order.

        The clock is advanced to each event's timestamp before its action
        runs (never backwards).  Returns the number of actions executed.
        """
        executed = 0
        while self._heap and self._heap[0].time <= time:
            event = heapq.heappop(self._heap)
            self.clock.advance_to(event.time)
            event.action()
            executed += 1
        self.executed += executed
        return executed

    def idle_until(self, time: int) -> None:
        """Idle (the attacker's step-2 wait): run due actions, then park
        the clock at *time*.

        When a fault injector is attached, a ``PREEMPTION`` burst may
        strike the idling actor: it is descheduled for the burst's
        duration and resumes late, while actions belonging to *other*
        actors (the victim's scheduled submissions) still run on time.
        """
        self.run_until(time)
        injector = self.fault_injector
        if injector is not None:
            event = injector.fire(FaultSite.PREEMPTION, timestamp=time)
            if event is not None:
                self.preemptions += 1
                self.preempted_cycles += event.magnitude_cycles
                time += event.magnitude_cycles
                injector.acknowledge(event, action="actor-descheduled")
                self.run_until(time)
        self.clock.advance_to(time)

    def idle_for_us(self, delay_us: float) -> None:
        """Idle for a relative window."""
        self.idle_until(self.clock.now + us_to_cycles(delay_us))

    @property
    def pending(self) -> int:
        """Actions not yet executed."""
        return len(self._heap)

    def next_event_time(self) -> int | None:
        """Timestamp of the next pending action, or ``None``."""
        return self._heap[0].time if self._heap else None

    def clear(self) -> None:
        """Drop all pending actions."""
        self._heap.clear()
