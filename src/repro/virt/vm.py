"""Virtual machines.

A VM is an isolation domain: its processes have private address spaces
(no shared memory with other VMs) and communicate with the outside world
only through the devices the hypervisor exposes.  The attacks in this
library are interesting precisely because they cross this boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.virt.process import GuestProcess

if TYPE_CHECKING:
    from repro.virt.system import CloudSystem


@dataclass
class VirtualMachine:
    """One guest VM on the cloud host."""

    name: str
    system: "CloudSystem"
    base_va: int
    processes: dict[str, GuestProcess] = field(default_factory=dict)

    def spawn_process(self, name: str) -> GuestProcess:
        """Create a guest process with a fresh address space."""
        if name in self.processes:
            raise ConfigurationError(f"VM {self.name!r} already runs {name!r}")
        process = self.system._create_process(self, name)
        self.processes[name] = process
        return process

    def process(self, name: str) -> GuestProcess:
        """Look up a process by name."""
        process = self.processes.get(name)
        if process is None:
            raise ConfigurationError(f"VM {self.name!r} has no process {name!r}")
        return process
