"""Fig. 6 — submission vs. completion latency and the DMWr threshold.

Sweeps memcpy transfer sizes (2^8 .. 2^27 by default) measuring:

* **submission latency** — the enqcmd round trip, which must stay flat
  (~700 cycles) regardless of size or queue state;
* **completion latency** — grows linearly with size once the transfer is
  bandwidth-bound;
* **DMWr contention** — re-running the submissions asynchronously with a
  minimal inter-submission interval, the smallest size at which
  ``EFLAGS.ZF`` ever fires.  The paper observes 2^25 bytes.

The async loop's per-iteration software cost (descriptor modification +
submission + flag check) is a parameter; the paper's observed 2^25-byte
threshold pins it at ~30k cycles (~15 us) on our timing model (see
EXPERIMENTS.md for the calibration argument).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.dsa.descriptor import make_memcpy
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)
from repro.virt.system import AttackTopology, CloudSystem


@dataclass(frozen=True)
class SizePoint:
    """Measurements for one transfer size."""

    size_bytes: int
    submission_cycles: float
    completion_cycles: float
    async_contention: bool


@dataclass(frozen=True)
class Fig6Result:
    """The full sweep."""

    points: tuple[SizePoint, ...]

    @property
    def submission_is_flat(self) -> bool:
        """Max/min submission latency within 1.5x across the sweep."""
        values = [p.submission_cycles for p in self.points]
        return max(values) / min(values) < 1.5

    @property
    def contention_threshold(self) -> int | None:
        """Smallest size showing async ZF contention (paper: 2^25)."""
        for point in self.points:
            if point.async_contention:
                return point.size_bytes
        return None

    @property
    def completion_is_monotone(self) -> bool:
        """Completion latency grows with size."""
        values = [p.completion_cycles for p in self.points]
        return all(b >= a for a, b in zip(values, values[1:]))


def _measure_sync(system: CloudSystem, size: int, repeats: int) -> tuple[float, float]:
    victim = system.vms["victim-vm"].process("victim")
    portal = victim.portal(0)
    src = victim.buffer(max(size, 4096))
    dst = victim.buffer(max(size, 4096))
    comp = victim.comp_record()
    submissions = []
    completions = []
    for _ in range(repeats):
        descriptor = make_memcpy(victim.pasid, src, dst, size, comp)
        before = system.clock.now
        portal.enqcmd(descriptor)
        submissions.append(system.clock.now - before)
        ticket = portal.last_ticket
        start = system.clock.rdtsc()
        portal.wait(ticket)
        completions.append(system.clock.rdtsc() - start)
    return float(np.mean(submissions)), float(np.mean(completions))


def _measure_async_contention(
    size: int, wq_size: int, burst: int, iteration_cycles: int, seed: int
) -> bool:
    """Async resubmission with minimal interval; True if any ZF fires."""
    system = CloudSystem(seed=seed)
    system.setup_topology(
        AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=wq_size
    )
    victim = system.vms["victim-vm"].process("victim")
    portal = victim.portal(0)
    src = victim.buffer(max(size, 4096))
    dst = victim.buffer(max(size, 4096))
    comp = victim.comp_record()
    descriptor = make_memcpy(victim.pasid, src, dst, size, comp)
    saw_zf = False
    for _ in range(burst):
        # "Reusing prior descriptors with minimal modification": the
        # iteration cost beyond the enqcmd itself.
        system.clock.advance(iteration_cycles)
        saw_zf |= portal.enqcmd(descriptor)
    return saw_zf


def _measure_size(
    exponent: int, repeats: int, wq_size: int, iteration_cycles: int, seed: int
) -> SizePoint:
    size = 1 << exponent
    system = CloudSystem(seed=seed)
    system.setup_topology(
        AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, wq_size=wq_size
    )
    submission, completion = _measure_sync(system, size, repeats)
    contention = _measure_async_contention(
        size, wq_size, burst=wq_size + 2, iteration_cycles=iteration_cycles,
        seed=seed,
    )
    return SizePoint(
        size_bytes=size,
        submission_cycles=submission,
        completion_cycles=completion,
        async_contention=contention,
    )


def trial_plan(
    min_exp: int = 8,
    max_exp: int = 27,
    repeats: int = 20,
    wq_size: int = 128,
    iteration_cycles: int = 30_000,
    seed: int = 6,
) -> ExperimentPlan:
    """One checkpointable trial per transfer size (fresh system each).

    The DMWr-threshold claim needs the *whole* size axis, so every size
    is required in ``finalize``.
    """
    exponents = list(range(min_exp, max_exp + 1))
    keys = [f"size/2^{exponent}" for exponent in exponents]
    trials = tuple(
        TrialSpec(
            key=key,
            fn=lambda exponent=exponent: _measure_size(
                exponent, repeats, wq_size, iteration_cycles, seed
            ),
        )
        for key, exponent in zip(keys, exponents)
    )

    def finalize(results: dict) -> Fig6Result:
        return Fig6Result(points=tuple(require_all(results, keys, "fig06")))

    return ExperimentPlan(
        name="fig06",
        seed=seed,
        config=dict(
            min_exp=min_exp,
            max_exp=max_exp,
            repeats=repeats,
            wq_size=wq_size,
            iteration_cycles=iteration_cycles,
            seed=seed,
        ),
        trials=trials,
        finalize=finalize,
        min_successes=len(trials),
    )


def run(
    min_exp: int = 8,
    max_exp: int = 27,
    repeats: int = 20,
    wq_size: int = 128,
    iteration_cycles: int = 30_000,
    seed: int = 6,
) -> Fig6Result:
    """Run the sweep over sizes 2^min_exp .. 2^max_exp."""
    return execute_plan(
        trial_plan(
            min_exp=min_exp,
            max_exp=max_exp,
            repeats=repeats,
            wq_size=wq_size,
            iteration_cycles=iteration_cycles,
            seed=seed,
        )
    )


def report(result: Fig6Result) -> str:
    """The figure as a table."""
    rows = [
        [
            f"2^{int(np.log2(p.size_bytes))}",
            f"{p.submission_cycles:.0f}",
            f"{p.completion_cycles:.0f}",
            "ZF" if p.async_contention else "-",
        ]
        for p in result.points
    ]
    table = format_table(
        ["size", "submission (cyc)", "completion (cyc)", "async contention"], rows
    )
    threshold = result.contention_threshold
    threshold_text = (
        f"2^{int(np.log2(threshold))}" if threshold else "none observed"
    )
    return (
        "Fig. 6 — memcpy submission/completion latency\n"
        + table
        + f"\nsubmission flat: {result.submission_is_flat}; "
        f"completion monotone: {result.completion_is_monotone}; "
        f"contention threshold: {threshold_text} (paper: 2^25)"
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
