"""Table IV — comparison with prior cross-core / cross-VM attacks.

Prior-work rows carry the numbers published in the cited papers (they are
*constants* of the comparison, not measurements); the two DSAssassin rows
are filled live from this reproduction's own measurements.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.covert.channel import run_devtlb_covert_channel, run_swq_covert_channel
from repro.experiments import fig12_keystrokes
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)


@dataclass(frozen=True)
class ComparisonRow:
    """One attack family's columns (blank = not reported by that work)."""

    work: str
    co_location: str
    wf_accuracy: str
    keystroke_f1: str
    keystroke_std_ms: str
    covert_capacity: str
    covert_error: str
    survives_pasid: str


#: Published numbers from the compared works (Table IV of the paper).
PRIOR_WORK = (
    ComparisonRow(
        work="IPI [51]", co_location="CPU", wf_accuracy="80.4% (F1)",
        keystroke_f1="97.9%", keystroke_std_ms="6.15",
        covert_capacity="3.45 kbps", covert_error="18.9%", survives_pasid="n/a",
    ),
    ComparisonRow(
        work="DEVIOUS [36]", co_location="Device", wf_accuracy="98.9%",
        keystroke_f1="", keystroke_std_ms="",
        covert_capacity="2.16 kbps", covert_error="2.18%", survives_pasid="no",
    ),
    ComparisonRow(
        work="(M)WAIT [65]", co_location="CPU", wf_accuracy="78%",
        keystroke_f1="", keystroke_std_ms="10.08",
        covert_capacity="697 bps", covert_error="0%", survives_pasid="n/a",
    ),
)


@dataclass(frozen=True)
class Table4Result:
    """Prior rows plus our measured rows."""

    rows: tuple[ComparisonRow, ...]

    @property
    def ours(self) -> tuple[ComparisonRow, ...]:
        """The two DSAssassin rows."""
        return tuple(r for r in self.rows if r.work.startswith("This work"))

    @property
    def devtlb_fastest_covert(self) -> bool:
        """Headline: the DevTLB channel beats every prior capacity."""
        def kbps(text: str) -> float:
            if not text:
                return 0.0
            value, unit = text.split()
            return float(value) * (1.0 if unit == "kbps" else 1e-3)

        ours = max(kbps(r.covert_capacity) for r in self.ours)
        prior = max(kbps(r.covert_capacity) for r in PRIOR_WORK)
        return ours > prior


def trial_plan(
    covert_bits: int = 192,
    keystrokes: int = 192,
    wf_accuracy_percent: float | None = None,
    seed: int = 44,
) -> ExperimentPlan:
    """One checkpointable trial per measured quantity (all required —
    a comparison table with holes in our own rows is not an artifact)."""
    measurements = {
        "covert/devtlb": lambda: run_devtlb_covert_channel(
            payload_bits=covert_bits, seed=seed
        ),
        "covert/swq": lambda: run_swq_covert_channel(
            payload_bits=covert_bits, seed=seed
        ),
        "keystrokes": lambda: fig12_keystrokes.run(
            keystrokes=keystrokes, seed=seed
        ),
    }
    trials = tuple(TrialSpec(key=key, fn=fn) for key, fn in measurements.items())

    def finalize(results: dict) -> Table4Result:
        devtlb_covert, swq_covert, keystroke = require_all(
            results, list(measurements), "table4"
        )
        return _assemble(
            devtlb_covert, swq_covert, keystroke, wf_accuracy_percent
        )

    return ExperimentPlan(
        name="table4",
        seed=seed,
        config=dict(
            covert_bits=covert_bits,
            keystrokes=keystrokes,
            wf_accuracy_percent=wf_accuracy_percent,
            seed=seed,
        ),
        trials=trials,
        finalize=finalize,
        min_successes=len(trials),
    )


def run(
    covert_bits: int = 192,
    keystrokes: int = 192,
    wf_accuracy_percent: float | None = None,
    seed: int = 44,
) -> Table4Result:
    """Measure our rows and assemble the table.

    *wf_accuracy_percent* may carry a Fig. 11 result to avoid re-running
    the (expensive) fingerprinting pipeline; by default the cell cites
    the Fig. 11 experiment.
    """
    return execute_plan(
        trial_plan(
            covert_bits=covert_bits,
            keystrokes=keystrokes,
            wf_accuracy_percent=wf_accuracy_percent,
            seed=seed,
        )
    )


def _assemble(devtlb_covert, swq_covert, keystroke, wf_accuracy_percent):
    wf_cell = (
        f"{wf_accuracy_percent:.1f}%" if wf_accuracy_percent is not None
        else "see Fig. 11"
    )
    ours = (
        ComparisonRow(
            work="This work (DevTLB)", co_location="Device",
            wf_accuracy=wf_cell,
            keystroke_f1=f"{keystroke.devtlb.evaluation.f1 * 100:.1f}%",
            keystroke_std_ms=f"{keystroke.devtlb.evaluation.timestamp_std_ms:.2f}",
            covert_capacity=f"{devtlb_covert.true_bps / 1e3:.2f} kbps",
            covert_error=f"{devtlb_covert.error_rate * 100:.2f}%",
            survives_pasid="yes",
        ),
        ComparisonRow(
            work="This work (SWQ)", co_location="Device",
            wf_accuracy="",
            keystroke_f1=f"{keystroke.swq.evaluation.f1 * 100:.1f}%",
            keystroke_std_ms=f"{keystroke.swq.evaluation.timestamp_std_ms:.2f}",
            covert_capacity=f"{swq_covert.true_bps / 1e3:.2f} kbps",
            covert_error=f"{swq_covert.error_rate * 100:.2f}%",
            survives_pasid="yes",
        ),
    )
    return Table4Result(rows=PRIOR_WORK + ours)


def report(result: Table4Result) -> str:
    """Table IV as text."""
    rows = [
        [
            r.work, r.co_location, r.wf_accuracy or "-", r.keystroke_f1 or "-",
            r.keystroke_std_ms or "-", r.covert_capacity or "-",
            r.covert_error or "-", r.survives_pasid,
        ]
        for r in result.rows
    ]
    table = format_table(
        ["work", "co-location", "WF acc", "keystroke F1", "std (ms)",
         "covert capacity", "BER", "works under PASID"],
        rows,
    )
    return (
        "Table IV — comparison to prior attacks\n" + table +
        f"\nDevTLB channel fastest covert channel: {result.devtlb_fastest_covert}"
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
