"""Fig. 13 / Section VI-D — LLM inference fingerprinting.

Collects DevTLB-miss traces of the Table II model zoo running inference
behind DTO, using the paper's 8 ms slots, and classifies the model from
a single trace with the Attention-BiLSTM.  The paper reports 98.6 %
validation accuracy over 8 models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.sampling import DevTlbSampler, SamplerConfig
from repro.errors import InsufficientTrialsError
from repro.experiments.runner import ExperimentPlan, TrialSpec, execute_plan
from repro.hw.noise import Environment
from repro.ml.baseline import NearestCentroidClassifier
from repro.ml.metrics import accuracy, confusion_matrix
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.train import TrainConfig, Trainer, train_test_split
from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.dto import DtoRuntime
from repro.workloads.llm import LLM_ZOO, LlmInferenceWorkload, LlmModel


@dataclass(frozen=True)
class LlmSamplerSettings:
    """8 ms slots, as the paper configures for weight-transfer cadence."""

    sample_period_us: float = 160.0
    samples_per_slot: int = 50  # 160 us x 50 = 8 ms per slot
    slots: int = 120

    def sampler_config(self) -> SamplerConfig:
        """As a :class:`SamplerConfig`."""
        return SamplerConfig(
            sample_period_us=self.sample_period_us,
            samples_per_slot=self.samples_per_slot,
            slots=self.slots,
        )

    @property
    def trace_duration_us(self) -> float:
        """Wall-clock span of one trace."""
        return self.sample_period_us * self.samples_per_slot * self.slots


@dataclass(frozen=True)
class Fig13Result:
    """Classification outcome plus one example trace per model."""

    model_names: tuple[str, ...]
    bilstm_accuracy: float
    baseline_accuracy: float
    matrix: np.ndarray
    example_traces: dict[str, np.ndarray]


def collect_llm_trace(
    model: LlmModel,
    seed: int,
    settings: LlmSamplerSettings | None = None,
    environment: Environment = Environment.LOCAL,
) -> np.ndarray:
    """One DevTLB trace of one model's inference."""
    settings = settings or LlmSamplerSettings()
    system = CloudSystem(seed=seed, environment=environment)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
    attack.calibrate(samples=30)

    dto = DtoRuntime(handles.victim, wq_id=handles.victim_wq)
    workload = LlmInferenceWorkload(dto, model, system.rng)
    workload.schedule_inference(
        system.timeline, system.clock.now, duration_us=settings.trace_duration_us
    )
    sampler = DevTlbSampler(attack, system.timeline, settings.sampler_config())
    return sampler.collect_trace()


def trial_plan(
    traces_per_model: int = 8,
    settings: LlmSamplerSettings | None = None,
    models: tuple[LlmModel, ...] = LLM_ZOO,
    seed: int = 1300,
    hidden: int = 12,
    epochs: int = 60,
    environment: Environment = Environment.LOCAL,
) -> ExperimentPlan:
    """One checkpointable trial per (model, trace index).

    Collection dominates cost; training re-runs deterministically in
    ``finalize``.  A model losing every trace aborts — the classifier's
    label table must cover the whole zoo.
    """
    settings = settings or LlmSamplerSettings()

    def trace_key(model: LlmModel, index: int) -> str:
        return f"model/{model.name}/trace/{index}"

    trials = tuple(
        TrialSpec(
            key=trace_key(model, index),
            fn=lambda model=model, label=label, index=index: collect_llm_trace(
                model, seed + label * 1000 + index, settings, environment
            ),
        )
        for label, model in enumerate(models)
        for index in range(traces_per_model)
    )

    def finalize(results: dict) -> Fig13Result:
        traces = []
        labels = []
        examples: dict[str, np.ndarray] = {}
        for label, model in enumerate(models):
            survivors = [
                results[key]
                for index in range(traces_per_model)
                if (key := trace_key(model, index)) in results
            ]
            if not survivors:
                raise InsufficientTrialsError(
                    f"model {model.name!r}: 0/{traces_per_model} traces collected"
                )
            traces.extend(survivors)
            labels.extend([label] * len(survivors))
            examples[model.name] = survivors[0]
        x = np.stack(traces)
        y = np.array(labels)
        x_train, y_train, x_test, y_test = train_test_split(
            x, y, test_fraction=0.2, rng=np.random.default_rng(seed)
        )
        classifier = AttentionBiLstmClassifier(
            classes=len(models), hidden=hidden, rng=np.random.default_rng(seed + 1)
        )
        trainer = Trainer(
            classifier, TrainConfig(epochs=epochs, batch_size=16, seed=seed)
        )
        trainer.fit(x_train, y_train)
        predictions = trainer.predict(x_test)
        baseline = NearestCentroidClassifier().fit(x_train, y_train)
        return Fig13Result(
            model_names=tuple(m.name for m in models),
            bilstm_accuracy=accuracy(y_test, predictions),
            baseline_accuracy=accuracy(y_test, baseline.predict(x_test)),
            matrix=confusion_matrix(y_test, predictions, classes=len(models)),
            example_traces=examples,
        )

    return ExperimentPlan(
        name="fig13",
        seed=seed,
        config=dict(
            traces_per_model=traces_per_model,
            settings=settings,
            models=tuple(m.name for m in models),
            seed=seed,
            hidden=hidden,
            epochs=epochs,
            environment=environment,
        ),
        trials=trials,
        finalize=finalize,
    )


def run(
    traces_per_model: int = 8,
    settings: LlmSamplerSettings | None = None,
    models: tuple[LlmModel, ...] = LLM_ZOO,
    seed: int = 1300,
    hidden: int = 12,
    epochs: int = 60,
    environment: Environment = Environment.LOCAL,
) -> Fig13Result:
    """Collect the dataset, train, and score."""
    return execute_plan(
        trial_plan(
            traces_per_model=traces_per_model,
            settings=settings,
            models=models,
            seed=seed,
            hidden=hidden,
            epochs=epochs,
            environment=environment,
        )
    )


def report(result: Fig13Result) -> str:
    """Accuracy summary plus trace statistics per model."""
    lines = [
        "Fig. 13 / Section VI-D — LLM fingerprinting",
        f"models: {len(result.model_names)}",
        f"Attention-BiLSTM accuracy: {result.bilstm_accuracy * 100:.1f}% "
        f"(paper: 98.6%)",
        f"nearest-centroid baseline: {result.baseline_accuracy * 100:.1f}%",
    ]
    rows = [
        [
            name,
            f"{trace.mean():.1f}",
            f"{trace.max()}",
            f"{(trace > 0).mean() * 100:.0f}%",
        ]
        for name, trace in result.example_traces.items()
    ]
    lines.append(
        format_table(["model", "mean misses/slot", "peak", "active slots"], rows)
    )
    return "\n".join(lines)
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
