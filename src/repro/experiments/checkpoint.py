"""Crash-safe on-disk state for experiment runs.

The paper's headline artifacts are hours-long multi-trial sweeps; a
killed process must not lose completed trials or leave a half-written
file that a later load mistakes for data.  This module provides the
persistence layer the supervised runner builds on:

* **Atomic writes** — every file lands via temp-file + ``fsync`` +
  ``os.replace`` in the same directory, so a reader observes either the
  old content or the new content, never a torn file.
* **Run manifest** (``manifest.json``) — one JSON document per run
  directory recording the experiment name, seed, configuration (and its
  hash, which ``--resume`` validates), fault-plan id, ``git describe``,
  status, per-segment history, and circuit-breaker events.
* **Trial journal** (``journal.jsonl``) — one JSON record per finished
  trial (success or contained failure), rewritten atomically on each
  append.  Successful trials reference a pickled payload under
  ``trials/`` so a resumed run can reload their results verbatim.

Nothing here knows how to *run* trials; see
:mod:`repro.experiments.runner` for supervision and resume logic.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator, Mapping

from repro.errors import CheckpointError

#: Manifest/journal schema version, bumped on incompatible change.
MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
JOURNAL_NAME = "journal.jsonl"
PAYLOAD_DIR = "trials"

#: Manifest ``status`` values.
STATUS_RUNNING = "running"
STATUS_COMPLETED = "completed"
STATUS_INTERRUPTED = "interrupted"
STATUS_DEADLINE = "deadline"
STATUS_INSUFFICIENT = "insufficient"
STATUS_FAILED = "failed"
STATUS_INVARIANT = "invariant"
STATUS_POISONED = "poisoned"


# ----------------------------------------------------------------------
# Atomic write primitives
# ----------------------------------------------------------------------
def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a rename survives a crash."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - exotic filesystems
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync on dirs unsupported
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write *data* to *path* atomically (temp + fsync + ``os.replace``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        tmp.unlink(missing_ok=True)
    _fsync_dir(path.parent)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomic UTF-8 text write."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, payload: Any) -> Path:
    """Atomic canonical-JSON write (sorted keys, trailing newline)."""
    return atomic_write_text(path, canonical_json(payload) + "\n")


def atomic_write_pickle(path: str | Path, payload: Any) -> Path:
    """Atomic pickle write (protocol pinned for stable bytes)."""
    return atomic_write_bytes(path, pickle.dumps(payload, protocol=4))


# ----------------------------------------------------------------------
# Hashing / identity helpers
# ----------------------------------------------------------------------
def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace drift, ``repr``
    fallback for non-JSON values (dataclasses, enums, tuples of them) so
    the same configuration always serializes to the same bytes."""
    return json.dumps(
        payload, sort_keys=True, separators=(",", ":"), default=repr
    )


def config_hash(config: Mapping[str, Any]) -> str:
    """SHA-256 of a configuration mapping's canonical JSON."""
    return hashlib.sha256(canonical_json(dict(config)).encode("utf-8")).hexdigest()


def fault_plan_id(plan: Any) -> str | None:
    """Stable id of a :class:`~repro.faults.plan.FaultPlan` (or ``None``)."""
    if plan is None:
        return None
    digest = hashlib.sha256(
        repr((plan.seed, plan.specs)).encode("utf-8")
    ).hexdigest()
    return f"faultplan-{digest[:16]}"


def git_describe() -> str:
    """``git describe --always --dirty`` of the working tree, or
    ``"unknown"`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty", "--tags"],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=Path(__file__).resolve().parent,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    return out.stdout.strip() or "unknown"


# ----------------------------------------------------------------------
# Run manifest
# ----------------------------------------------------------------------
@dataclass
class RunManifest:
    """The durable identity and status of one run directory."""

    experiment: str
    seed: int
    config: dict[str, Any]
    config_hash: str
    fault_plan: str | None = None
    git_describe: str = "unknown"
    status: str = STATUS_RUNNING
    trials_total: int = 0
    completed: int = 0
    failed: int = 0
    resumed: int = 0
    skipped: int = 0
    exit_code: int | None = None
    segments: list[dict[str, Any]] = field(default_factory=list)
    breaker_events: list[dict[str, Any]] = field(default_factory=list)
    breaker_state: str = "closed"
    poisoned: list[str] = field(default_factory=list)

    def add_segment(self, event: str) -> None:
        """Record one process lifetime touching this run.

        Timestamps route through the runner's injectable
        :func:`~repro.experiments.runner.wall_clock` (imported lazily —
        the runner imports this module at load time), so tests can stamp
        manifests deterministically via ``override_clocks``.
        """
        from repro.experiments.runner import wall_clock

        self.segments.append(
            {"event": event, "pid": os.getpid(), "time": wall_clock()}
        )

    def to_json(self) -> dict[str, Any]:
        """JSON form (config values stringified where needed)."""
        return {
            "format_version": MANIFEST_VERSION,
            "experiment": self.experiment,
            "seed": self.seed,
            "config": json.loads(canonical_json(self.config)),
            "config_hash": self.config_hash,
            "fault_plan": self.fault_plan,
            "git_describe": self.git_describe,
            "status": self.status,
            "trials_total": self.trials_total,
            "completed": self.completed,
            "failed": self.failed,
            "resumed": self.resumed,
            "skipped": self.skipped,
            "exit_code": self.exit_code,
            "segments": self.segments,
            "breaker_events": self.breaker_events,
            "breaker_state": self.breaker_state,
            "poisoned": self.poisoned,
        }

    def save(self, run_dir: str | Path) -> Path:
        """Atomically (re)write ``manifest.json``."""
        return atomic_write_json(Path(run_dir) / MANIFEST_NAME, self.to_json())

    @classmethod
    def load(cls, run_dir: str | Path) -> "RunManifest":
        """Read and validate a manifest written by :meth:`save`."""
        path = Path(run_dir) / MANIFEST_NAME
        if not path.exists():
            raise CheckpointError(f"no run manifest at {path}")
        try:
            raw = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable run manifest {path}: {exc}") from exc
        version = raw.get("format_version")
        if version != MANIFEST_VERSION:
            raise CheckpointError(
                f"unsupported manifest version {version!r} in {path}"
            )
        try:
            return cls(
                experiment=raw["experiment"],
                seed=raw["seed"],
                config=raw["config"],
                config_hash=raw["config_hash"],
                fault_plan=raw.get("fault_plan"),
                git_describe=raw.get("git_describe", "unknown"),
                status=raw.get("status", STATUS_RUNNING),
                trials_total=raw.get("trials_total", 0),
                completed=raw.get("completed", 0),
                failed=raw.get("failed", 0),
                resumed=raw.get("resumed", 0),
                skipped=raw.get("skipped", 0),
                exit_code=raw.get("exit_code"),
                segments=list(raw.get("segments", [])),
                breaker_events=list(raw.get("breaker_events", [])),
                breaker_state=raw.get("breaker_state", "closed"),
                poisoned=list(raw.get("poisoned", [])),
            )
        except KeyError as exc:
            raise CheckpointError(
                f"run manifest {path} is missing field {exc}"
            ) from exc


# ----------------------------------------------------------------------
# Trial journal
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JournalEntry:
    """One finished trial: a success with a payload, or a contained
    failure with its error summary."""

    index: int
    key: str
    status: str  # "ok" | "failed"
    elapsed_s: float
    payload: str | None = None  # run-dir-relative pickle path for "ok"
    error_type: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the trial succeeded."""
        return self.status == "ok"

    def to_json(self) -> dict[str, Any]:
        record = {
            "index": self.index,
            "key": self.key,
            "status": self.status,
            "elapsed_s": self.elapsed_s,
        }
        if self.payload is not None:
            record["payload"] = self.payload
        if self.error_type is not None:
            record["error_type"] = self.error_type
            record["error"] = self.error
        return record

    @classmethod
    def from_json(cls, raw: dict[str, Any]) -> "JournalEntry":
        try:
            return cls(
                index=raw["index"],
                key=raw["key"],
                status=raw["status"],
                elapsed_s=raw["elapsed_s"],
                payload=raw.get("payload"),
                error_type=raw.get("error_type"),
                error=raw.get("error"),
            )
        except KeyError as exc:
            raise CheckpointError(
                f"journal record missing field {exc}: {raw!r}"
            ) from exc


class CheckpointJournal:
    """The per-trial checkpoint journal of one run directory.

    Appends rewrite the whole JSONL file through the atomic path — the
    journal on disk is always a complete, parseable prefix of the run.
    Successful trials pickle their result to ``trials/NNNN-<slug>.pkl``
    (also atomically) before the journal references it, so a crash
    between the two writes leaves an orphan payload, never a dangling
    reference.
    """

    def __init__(self, run_dir: str | Path) -> None:
        self.run_dir = Path(run_dir)
        self.path = self.run_dir / JOURNAL_NAME
        self._entries: dict[str, JournalEntry] = {}

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def entries(self) -> Iterator[JournalEntry]:
        """Entries in plan-index order.

        Index order (not append order) is the canonical order: a sharded
        parallel run journals trials as workers finish them, and sorting
        here is what makes its journal — and everything derived from it,
        like :func:`~repro.experiments.wf_common.dataset_from_run_dir` —
        byte-identical to a serial run's.
        """
        return iter(sorted(self._entries.values(), key=lambda e: e.index))

    def get(self, key: str) -> JournalEntry | None:
        """The entry for *key*, if journaled."""
        return self._entries.get(key)

    # -- persistence ----------------------------------------------------
    @classmethod
    def load(cls, run_dir: str | Path) -> "CheckpointJournal":
        """Read a journal (an absent file is an empty journal)."""
        journal = cls(run_dir)
        if not journal.path.exists():
            return journal
        text = journal.path.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            if not line.strip():
                continue
            try:
                raw = json.loads(line)
            except json.JSONDecodeError as exc:
                raise CheckpointError(
                    f"corrupt journal {journal.path} line {lineno}: {exc}"
                ) from exc
            entry = JournalEntry.from_json(raw)
            journal._entries[entry.key] = entry
        return journal

    def _rewrite(self) -> None:
        lines = [
            canonical_json(entry.to_json()) for entry in self.entries()
        ]
        atomic_write_text(self.path, "\n".join(lines) + ("\n" if lines else ""))

    def record_success(
        self, index: int, key: str, result: Any, elapsed_s: float
    ) -> JournalEntry:
        """Pickle *result* and journal the trial as completed."""
        payload_rel = f"{PAYLOAD_DIR}/{index:04d}.pkl"
        atomic_write_pickle(self.run_dir / payload_rel, result)
        entry = JournalEntry(
            index=index,
            key=key,
            status="ok",
            elapsed_s=round(elapsed_s, 6),
            payload=payload_rel,
        )
        self._entries[key] = entry
        self._rewrite()
        return entry

    def record_failure(
        self, index: int, key: str, error: Exception, elapsed_s: float
    ) -> JournalEntry:
        """Journal a contained trial failure (no payload)."""
        return self.record_failure_info(
            index, key, type(error).__name__, str(error), elapsed_s=elapsed_s
        )

    def record_failure_info(
        self,
        index: int,
        key: str,
        error_type: str,
        error: str,
        elapsed_s: float,
    ) -> JournalEntry:
        """Journal a failure from its summary strings.

        The sharded executor reports failures across a process boundary
        as ``(type name, message)`` rather than exception objects; this
        writes the same record :meth:`record_failure` would.
        """
        entry = JournalEntry(
            index=index,
            key=key,
            status="failed",
            elapsed_s=round(elapsed_s, 6),
            error_type=error_type,
            error=error,
        )
        self._entries[key] = entry
        self._rewrite()
        return entry

    def load_payload(self, key: str) -> Any:
        """Unpickle the stored result of a completed trial."""
        entry = self._entries.get(key)
        if entry is None or not entry.ok or entry.payload is None:
            raise CheckpointError(f"no completed payload for trial {key!r}")
        path = self.run_dir / entry.payload
        if not path.exists():
            raise CheckpointError(
                f"journal references missing payload {path} for trial {key!r}"
            )
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as exc:
            raise CheckpointError(
                f"corrupt trial payload {path} for {key!r}: {exc}"
            ) from exc
