"""Command-line experiment runner.

Regenerate any paper artifact from a shell::

    python -m repro.experiments list
    python -m repro.experiments fig04
    python -m repro.experiments table4
    python -m repro.experiments all
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    fig04_latency,
    fig06_queue_latency,
    fig09_covert,
    fig10_wf_traces,
    fig11_wf_classification,
    fig12_keystrokes,
    fig13_llm,
    fig14_mitigation,
    iotlb_study,
    openworld_wf,
    reverse_engineering,
    table3_noise,
    table4_comparison,
)

#: name -> (module, human description)
EXPERIMENTS = {
    "re": (reverse_engineering, "Section IV reverse-engineering suite"),
    "fig04": (fig04_latency, "Fig. 4 hit/miss latency distributions"),
    "fig06": (fig06_queue_latency, "Fig. 6 submission/completion latency"),
    "fig09": (fig09_covert, "Fig. 9 covert-channel capacity sweep"),
    "fig10": (fig10_wf_traces, "Fig. 10 website miss traces"),
    "fig11": (fig11_wf_classification, "Fig. 11 website classification"),
    "fig12": (fig12_keystrokes, "Fig. 12 SSH keystroke detection"),
    "fig13": (fig13_llm, "Fig. 13 LLM fingerprinting"),
    "fig14": (fig14_mitigation, "Fig. 14 mitigation overhead"),
    "table3": (table3_noise, "Table III noise impact"),
    "table4": (table4_comparison, "Table IV prior-work comparison"),
    "iotlb": (iotlb_study, "IOTLB capacity study (extension)"),
    "openworld": (openworld_wf, "open-world website fingerprinting (extension)"),
}


def run_one(name: str) -> None:
    """Run one experiment and print its report."""
    module, description = EXPERIMENTS[name]
    print(f"=== {name}: {description} ===")
    started = time.time()
    result = module.run()
    print(module.report(result))
    print(f"({time.time() - started:.1f}s)\n")


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "list", "all"],
        help="which artifact to regenerate",
    )
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        run_one(name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
