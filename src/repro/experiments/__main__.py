"""Command-line experiment runner.

Regenerate any paper artifact from a shell::

    python -m repro.experiments list
    python -m repro.experiments fig04
    python -m repro.experiments all

Long sweeps should run checkpointed so a crash, an interrupt, or a
scheduler deadline costs at most one trial::

    python -m repro.experiments table3 --run-dir runs/table3
    # ... SIGTERM / ctrl-C / soft deadline ...
    python -m repro.experiments table3 --resume runs/table3

Supervision flags (single experiment only): ``--run-dir DIR`` journals
every trial into DIR; ``--resume DIR`` continues a previous run after
validating its config hash; ``--deadline S`` stops cleanly before a
wall-clock budget expires; ``--breaker-threshold N`` opens the failure
circuit breaker after N consecutive contained failures; ``--set k=v``
overrides a ``trial_plan`` keyword (values parsed as Python literals);
``--workers N`` shards the trials across N worker processes (``--shard``
picks the partition strategy) with output observation-equivalent to a
serial run — a checkpointed run may even switch worker counts between
``--run-dir`` and ``--resume`` (see docs/parallel.md); ``--executor``
picks the multi-process engine — ``auto`` (the supervised persistent
pool, degrading to the serial loop when parallelism cannot pay on this
host), ``pool`` (the pool, unconditionally), or ``spawn`` (one-shot
spawned shards).

Exit codes (see :mod:`repro.experiments.runner` and docs/robustness.md):

=====  ================================================================
0      artifact produced
1      unexpected error (programming bug — full traceback)
2      command-line usage error
3      fewer successful trials than the plan's floor
4      contained reproduction error outside trial containment
5      checkpoint/resume mismatch (config hash, wrong experiment, ...)
6      a runtime invariant tripped (model or pool state untrusted)
8      the worker pool quarantined poisoned trials (they repeatedly
       killed their workers); everything else is journaled
75     soft deadline hit; run checkpointed — re-run with ``--resume``
130    interrupted (SIGINT/SIGTERM); checkpointed — ``--resume``
=====  ================================================================
"""

from __future__ import annotations

import argparse
import ast
import signal
import sys

from repro.errors import CheckpointError, ReproError, ResumeMismatchError
from repro.experiments import (
    fig04_latency,
    fig06_queue_latency,
    fig09_covert,
    fig10_wf_traces,
    fig11_wf_classification,
    fig12_keystrokes,
    fig13_llm,
    fig14_mitigation,
    iotlb_study,
    openworld_wf,
    reverse_engineering,
    table3_noise,
    table4_comparison,
)
from repro.experiments.checkpoint import (
    STATUS_COMPLETED,
    atomic_write_pickle,
    atomic_write_text,
)
from repro.experiments.parallel import SHARD_STRATEGIES, PlanHandle
from repro.experiments.runner import (
    EXIT_CONFIG_MISMATCH,
    EXIT_INTERRUPTED,
    EXIT_OK,
    EXIT_REPRO,
    BreakerConfig,
    monotonic_clock,
    run_experiment,
)

#: name -> (module, human description)
EXPERIMENTS = {
    "re": (reverse_engineering, "Section IV reverse-engineering suite"),
    "fig04": (fig04_latency, "Fig. 4 hit/miss latency distributions"),
    "fig06": (fig06_queue_latency, "Fig. 6 submission/completion latency"),
    "fig09": (fig09_covert, "Fig. 9 covert-channel capacity sweep"),
    "fig10": (fig10_wf_traces, "Fig. 10 website miss traces"),
    "fig11": (fig11_wf_classification, "Fig. 11 website classification"),
    "fig12": (fig12_keystrokes, "Fig. 12 SSH keystroke detection"),
    "fig13": (fig13_llm, "Fig. 13 LLM fingerprinting"),
    "fig14": (fig14_mitigation, "Fig. 14 mitigation overhead"),
    "table3": (table3_noise, "Table III noise impact"),
    "table4": (table4_comparison, "Table IV prior-work comparison"),
    "iotlb": (iotlb_study, "IOTLB capacity study (extension)"),
    "openworld": (openworld_wf, "open-world website fingerprinting (extension)"),
}


def _parse_overrides(pairs: list[str]) -> dict:
    """``--set key=value`` pairs into ``trial_plan`` keyword arguments.

    Values are parsed as Python literals (``--set seed=7``,
    ``--set sizes=(256,1024)``); anything that is not a literal stays a
    string.
    """
    overrides = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise ValueError(f"--set expects key=value, got {pair!r}")
        try:
            overrides[key] = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            overrides[key] = raw
    return overrides


def run_one(
    name: str,
    overrides: dict | None = None,
    run_dir: str | None = None,
    resume: bool = False,
    deadline: float | None = None,
    breaker_threshold: int | None = None,
    workers: int = 1,
    shard: str = "interleave",
    executor: str = "auto",
) -> int:
    """Run one experiment under supervision; returns its exit code.

    Contained failure modes print a one-line summary instead of a
    traceback — the traceback of every failed *trial* is already in the
    journal (checkpointed runs) or irrelevant to the operator (the
    documented exit code says what to do next).
    """
    module, description = EXPERIMENTS[name]
    print(f"=== {name}: {description} ===")
    started = monotonic_clock()
    breaker = (
        BreakerConfig(failure_threshold=breaker_threshold)
        if breaker_threshold is not None
        else None
    )
    try:
        plan = module.trial_plan(**(overrides or {}))
        outcome = run_experiment(
            plan,
            run_dir=run_dir,
            resume=resume,
            deadline_s=deadline,
            breaker=breaker,
            workers=workers,
            shard_strategy=shard,
            executor=executor,
            # Trial closures do not pickle; shard workers rebuild the
            # plan from the module's trial_plan hook instead.
            plan_source=PlanHandle(module.__name__, dict(overrides or {})),
        )
    except (ResumeMismatchError, CheckpointError) as exc:
        print(f"{name}: checkpoint error: {exc}", file=sys.stderr)
        return EXIT_CONFIG_MISMATCH
    except TypeError as exc:
        # Almost always a bad --set key; argparse conventions say 2.
        print(f"{name}: bad trial_plan arguments: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"{name}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return EXIT_REPRO

    if outcome.status == STATUS_COMPLETED:
        text = module.report(outcome.result)
        print(text)
        print(f"({monotonic_clock() - started:.1f}s)\n")
        if outcome.run_dir is not None:
            atomic_write_text(outcome.run_dir / "report.txt", text + "\n")
            atomic_write_pickle(outcome.run_dir / "result.pkl", outcome.result)
        return EXIT_OK

    summary = (
        f"{type(outcome.error).__name__}: {outcome.error}"
        if outcome.error is not None
        else f"status {outcome.status}"
    )
    print(
        f"{name}: {outcome.status} after {outcome.completed} completed / "
        f"{outcome.failed} failed / {outcome.skipped} skipped trials — "
        f"{summary}",
        file=sys.stderr,
    )
    if outcome.resumable:
        print(
            f"{name}: progress checkpointed; continue with "
            f"--resume {outcome.run_dir}",
            file=sys.stderr,
        )
    return outcome.exit_code


def _install_sigterm_handler() -> None:
    """Turn SIGTERM into ``KeyboardInterrupt`` so a scheduler kill
    checkpoints exactly like ctrl-C (exit 130, resumable)."""

    def _handler(signum, frame):
        raise KeyboardInterrupt

    try:
        signal.signal(signal.SIGTERM, _handler)
    except ValueError:
        pass  # not the main thread (e.g. under a test runner)


def main(argv: list[str] | None = None) -> int:
    """Entry point."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "list", "all"],
        help="which artifact to regenerate",
    )
    parser.add_argument(
        "--run-dir",
        help="checkpoint every trial into this directory (fresh run)",
    )
    parser.add_argument(
        "--resume",
        metavar="RUN_DIR",
        help="continue a checkpointed run from its directory",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        metavar="SECONDS",
        help="soft wall-clock budget: checkpoint and exit 75 before it expires",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        metavar="N",
        help="open the circuit breaker after N consecutive trial failures",
    )
    parser.add_argument(
        "--set",
        dest="overrides",
        action="append",
        default=[],
        metavar="KEY=VALUE",
        help="override a trial_plan keyword (literal-parsed; repeatable)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="shard trials across N worker processes (1 = serial; "
        "results are identical either way)",
    )
    parser.add_argument(
        "--shard",
        choices=sorted(SHARD_STRATEGIES),
        default="interleave",
        help="how --workers partitions trials across processes",
    )
    parser.add_argument(
        "--executor",
        choices=("auto", "pool", "spawn"),
        default="auto",
        help="multi-process engine for --workers: the supervised "
        "persistent pool with cost-model degradation (auto), the pool "
        "unconditionally (pool), or one-shot spawned shards (spawn)",
    )
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name:8s} {description}")
        return 0
    if args.run_dir and args.resume:
        parser.error("--run-dir starts a fresh run; --resume continues one")
    if args.workers < 1:
        parser.error(f"--workers must be >= 1, got {args.workers}")
    supervised = bool(
        args.run_dir or args.resume or args.deadline or args.overrides
        or args.breaker_threshold is not None or args.workers > 1
    )
    if args.experiment == "all" and supervised:
        parser.error("supervision flags apply to a single experiment, not 'all'")

    try:
        overrides = _parse_overrides(args.overrides)
    except ValueError as exc:
        parser.error(str(exc))

    _install_sigterm_handler()
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    worst = EXIT_OK
    for name in names:
        try:
            code = run_one(
                name,
                overrides=overrides,
                run_dir=args.resume or args.run_dir,
                resume=bool(args.resume),
                deadline=args.deadline,
                breaker_threshold=args.breaker_threshold,
                workers=args.workers,
                shard=args.shard,
                executor=args.executor,
            )
        except KeyboardInterrupt:
            # In-memory runs re-raise from require_result-free paths too.
            print(f"{name}: interrupted", file=sys.stderr)
            return EXIT_INTERRUPTED
        worst = max(worst, code)
    return worst


if __name__ == "__main__":
    sys.exit(main())
