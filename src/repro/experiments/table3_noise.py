"""Table III — attack robustness under noisy environments.

Repeats the four attacks (covert channel on both primitives, website
fingerprinting, SSH keystrokes on both primitives, LLM classification)
across {Local, Noisy Local, Cloud, Noisy Cloud} and checks the paper's
claim: the 95 % confidence interval built from quiet-local repetitions
contains the noisy-environment measurements — system and PCIe noise
barely move the attacks.

Scale note: the paper repeats each attack 50x; the default here uses a
handful of quiet-local repetitions for the CI and one run per noisy
environment, at reduced workload sizes.  All knobs scale up.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.analysis.reporting import format_table
from repro.analysis.stats import confidence_interval_95
from repro.covert.channel import run_devtlb_covert_channel, run_swq_covert_channel
from repro.errors import InsufficientTrialsError
from repro.experiments import fig11_wf_classification, fig12_keystrokes, fig13_llm
from repro.experiments.runner import ExperimentPlan, TrialSpec, execute_plan
from repro.experiments.wf_common import WfSamplerSettings
from repro.hw.noise import Environment

NOISY_ENVIRONMENTS = (
    Environment.LOCAL_NOISE,
    Environment.CLOUD,
    Environment.CLOUD_NOISE,
)


@dataclass(frozen=True)
class MetricRow:
    """One attack metric across environments."""

    name: str
    local_mean: float
    local_ci_h: float
    noisy_values: dict[Environment, float]
    unit: str

    @property
    def noisy_within_ci(self) -> bool:
        """Do all noisy measurements fall inside the quiet-local CI?"""
        low = self.local_mean - self.local_ci_h
        high = self.local_mean + self.local_ci_h
        return all(low <= value <= high for value in self.noisy_values.values())


@dataclass
class Table3Result:
    """All metric rows."""

    rows: list[MetricRow] = field(default_factory=list)
    #: Metric names dropped because one of their samples failed.
    dropped_metrics: tuple[str, ...] = ()

    @property
    def all_within_ci(self) -> bool:
        """The paper's headline claim."""
        return all(row.noisy_within_ci for row in self.rows)


@dataclass(frozen=True)
class _MetricSpec:
    """One attack metric: how to sample it and how to widen its CI."""

    slug: str
    name: str
    unit: str
    sampler: object  # Callable[[Environment, int], float]
    repeats: int
    widen: float = 1.0
    min_h: float = 0.0


def _binomial_h_percent(test_samples: int) -> float:
    """95 % half-interval (in accuracy points) of a proportion estimated
    from *test_samples* test traces (worst case p = 0.5)."""
    return 196.0 * float(np.sqrt(0.25 / max(test_samples, 1)))


def _metric_specs(
    repeats, covert_bits, keystrokes, wf_sites, wf_visits, llm_traces,
    llm_models, seed,
) -> tuple[_MetricSpec, ...]:
    """The six Table III metrics with their deterministic samplers.

    Each sample is a pure function of ``(environment, repetition index)``
    — every call builds a fresh seeded system — so samples can run (and
    be checkpointed) in any order.
    """
    # Covert channels: the channel builders accept a prebuilt system.
    from repro.virt.system import CloudSystem

    def _system(env, s):
        return CloudSystem(seed=s, environment=env)

    def cc_devtlb_sample(env, i):
        r = run_devtlb_covert_channel(
            payload_bits=covert_bits, seed=seed + i, system=_system(env, seed + i)
        )
        return r.true_bps / 1e3

    def cc_swq_sample(env, i):
        r = run_swq_covert_channel(
            payload_bits=covert_bits, seed=seed + i, system=_system(env, seed + 100 + i)
        )
        return r.true_bps / 1e3

    def wf_sample(env, i):
        r = fig11_wf_classification.run(
            sites=wf_sites,
            visits_per_site=wf_visits,
            settings=WfSamplerSettings(sample_period_us=100.0, samples_per_slot=40, slots=100),
            seed=seed + 17 * i,
            epochs=40,
            environment=env,
        )
        return r.bilstm_accuracy * 100

    def sshk_devtlb_sample(env, i):
        r = fig12_keystrokes.run_devtlb_variant(
            keystrokes=keystrokes, seed=seed + i, environment=env
        )
        return r.evaluation.f1 * 100

    def sshk_swq_sample(env, i):
        r = fig12_keystrokes.run_swq_variant(
            keystrokes=keystrokes, seed=seed + i, environment=env
        )
        return r.evaluation.f1 * 100

    def llm_sample(env, i):
        from repro.workloads.llm import LLM_ZOO

        r = fig13_llm.run(
            traces_per_model=llm_traces,
            models=LLM_ZOO[:llm_models],
            seed=seed + 31 * i,
            epochs=40,
            environment=env,
        )
        return r.bilstm_accuracy * 100

    wf_test = max(int(wf_sites * wf_visits * 0.2), 1)
    llm_test = max(int(llm_models * llm_traces * 0.2), 1)
    return (
        _MetricSpec(
            "cc-devtlb", "CC-devtlb true capacity", "kbps", cc_devtlb_sample,
            repeats, widen=1.4,
        ),
        _MetricSpec(
            "cc-swq", "CC-swq true capacity", "kbps", cc_swq_sample,
            repeats, widen=1.4,
        ),
        _MetricSpec(
            "wf", "WF accuracy", "%", wf_sample, max(repeats // 2, 2),
            min_h=_binomial_h_percent(wf_test),
        ),
        _MetricSpec(
            "sshk-devtlb", "SSHK-devtlb F1", "%", sshk_devtlb_sample,
            repeats, widen=1.4,
        ),
        _MetricSpec(
            "sshk-swq", "SSHK-swq F1", "%", sshk_swq_sample,
            repeats, widen=1.4,
        ),
        _MetricSpec(
            "llmc", "LLMC accuracy", "%", llm_sample, max(repeats // 2, 2),
            min_h=_binomial_h_percent(llm_test),
        ),
    )


def trial_plan(
    repeats: int = 4,
    covert_bits: int = 192,
    keystrokes: int = 96,
    wf_sites: int = 4,
    wf_visits: int = 5,
    llm_traces: int = 4,
    llm_models: int = 4,
    seed: int = 33,
) -> ExperimentPlan:
    """Table III as one checkpointable trial per (metric, sample).

    Every local repetition and every noisy-environment measurement is an
    independent trial.  ``finalize`` keeps a metric row only when *all*
    of its samples survived (a CI from a quietly shrunken sample set
    would overstate confidence) and aborts if no row survives.
    """
    specs = _metric_specs(
        repeats, covert_bits, keystrokes, wf_sites, wf_visits, llm_traces,
        llm_models, seed,
    )
    trials: list[TrialSpec] = []
    for spec in specs:
        for i in range(spec.repeats):
            trials.append(
                TrialSpec(
                    key=f"{spec.slug}/local/{i}",
                    fn=lambda spec=spec, i=i: float(
                        spec.sampler(Environment.LOCAL, i)
                    ),
                )
            )
        for env in NOISY_ENVIRONMENTS:
            trials.append(
                TrialSpec(
                    key=f"{spec.slug}/{env.value}",
                    fn=lambda spec=spec, env=env: float(
                        spec.sampler(env, spec.repeats)
                    ),
                )
            )

    def finalize(results: dict) -> Table3Result:
        result = Table3Result()
        dropped: list[str] = []
        for spec in specs:
            local_keys = [f"{spec.slug}/local/{i}" for i in range(spec.repeats)]
            noisy_keys = {env: f"{spec.slug}/{env.value}" for env in NOISY_ENVIRONMENTS}
            if any(k not in results for k in local_keys) or any(
                k not in results for k in noisy_keys.values()
            ):
                dropped.append(spec.name)
                continue
            local = np.array([results[k] for k in local_keys])
            mean, h = confidence_interval_95(local)
            h = max(h * spec.widen, spec.min_h, 1e-9)
            result.rows.append(
                MetricRow(
                    name=spec.name,
                    local_mean=mean,
                    local_ci_h=h,
                    noisy_values={
                        env: results[key] for env, key in noisy_keys.items()
                    },
                    unit=spec.unit,
                )
            )
        if not result.rows:
            raise InsufficientTrialsError(
                f"table3: every metric row lost samples ({len(dropped)} dropped)"
            )
        if dropped:
            result.dropped_metrics = tuple(dropped)
        return result

    return ExperimentPlan(
        name="table3",
        seed=seed,
        config=dict(
            repeats=repeats,
            covert_bits=covert_bits,
            keystrokes=keystrokes,
            wf_sites=wf_sites,
            wf_visits=wf_visits,
            llm_traces=llm_traces,
            llm_models=llm_models,
            seed=seed,
        ),
        trials=tuple(trials),
        finalize=finalize,
    )


def run(
    repeats: int = 4,
    covert_bits: int = 192,
    keystrokes: int = 96,
    wf_sites: int = 4,
    wf_visits: int = 5,
    llm_traces: int = 4,
    llm_models: int = 4,
    seed: int = 33,
) -> Table3Result:
    """Run the reduced-scale Table III."""
    return execute_plan(
        trial_plan(
            repeats=repeats,
            covert_bits=covert_bits,
            keystrokes=keystrokes,
            wf_sites=wf_sites,
            wf_visits=wf_visits,
            llm_traces=llm_traces,
            llm_models=llm_models,
            seed=seed,
        )
    )


def report(result: Table3Result) -> str:
    """Table III as text."""
    rows = []
    for row in result.rows:
        cells = [
            row.name,
            f"{row.local_mean:.2f} ± {row.local_ci_h:.2f} {row.unit}",
        ]
        for env in NOISY_ENVIRONMENTS:
            cells.append(f"{row.noisy_values[env]:.2f}")
        cells.append("yes" if row.noisy_within_ci else "NO")
        rows.append(cells)
    table = format_table(
        ["attack metric", "Local (95% CI)", "Noisy Local", "Cloud", "Noisy Cloud",
         "within CI"],
        rows,
    )
    return (
        "Table III — noise impact\n" + table +
        f"\nall noisy measurements within the quiet-local CI: {result.all_within_ci}"
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
