"""Per-table / per-figure experiment harnesses.

Every module exposes ``run(...)`` returning a structured result and a
``report(result)`` producing the text form of the paper's table or
figure.  The benchmarks in ``benchmarks/`` call these entry points.

==================  ====================================================
Module              Paper artifact
==================  ====================================================
reverse_engineering Section IV listings and E0/E1/E2 (Fig. 5)
fig04_latency       Fig. 4 — hit/miss latency across four environments
fig06_queue_latency Fig. 6 — submission vs. completion latency, DMWr ZF
fig09_covert        Fig. 9 — covert-channel capacity sweep
fig10_wf_traces     Fig. 10 — per-site DevTLB miss traces
fig11_wf_classification  Fig. 11 — website classification
fig12_keystrokes    Fig. 12 — SSH keystroke detection
fig13_llm           Fig. 13 — LLM fingerprinting
fig14_mitigation    Fig. 14 — mitigation overhead
table3_noise        Table III — noise impact with confidence intervals
table4_comparison   Table IV — comparison with prior attacks
==================  ====================================================
"""
