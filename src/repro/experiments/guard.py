"""Per-trial failure containment for experiment runners.

A figure built from dozens of independent trials should not abort because
one trial hit a transient fault (a chaos-injected drop, an unhealthy
calibration, a lost submission).  :func:`run_guarded_trials` runs each
trial inside a catch boundary and a shared wall-clock budget: failures
are recorded (not raised), remaining trials are skipped once the budget
is spent, and only a shortfall below the caller's floor aborts the
experiment — via :class:`~repro.errors.InsufficientTrialsError`, never a
silently thinner figure.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import InsufficientTrialsError, ReproError

Trial = Callable[[], Any]


@dataclass(frozen=True)
class TrialFailure:
    """One contained trial failure."""

    index: int
    error: Exception
    elapsed_s: float


@dataclass(frozen=True)
class GuardedRun:
    """Outcome of a guarded trial batch."""

    results: tuple
    failures: tuple[TrialFailure, ...]
    skipped: int
    label: str = ""
    elapsed_s: float = 0.0

    @property
    def attempted(self) -> int:
        """Trials actually executed (successes + failures)."""
        return len(self.results) + len(self.failures)

    @property
    def success_rate(self) -> float:
        """Fraction of attempted trials that succeeded."""
        return len(self.results) / self.attempted if self.attempted else 0.0

    @property
    def complete(self) -> bool:
        """Whether every trial ran and succeeded."""
        return not self.failures and not self.skipped


def run_guarded_trials(
    trials: Sequence[Trial],
    catch: tuple[type[Exception], ...] = (ReproError,),
    max_total_seconds: float | None = None,
    min_successes: int = 1,
    label: str = "experiment",
) -> GuardedRun:
    """Run *trials* (zero-argument callables), containing failures.

    Exceptions matching *catch* are recorded as :class:`TrialFailure`
    entries; anything else propagates (a programming error should still
    crash).  Once *max_total_seconds* of wall-clock time is spent, the
    remaining trials are skipped and counted.  If fewer than
    *min_successes* trials succeed, :class:`InsufficientTrialsError` is
    raised with the failure tally in its message.
    """
    if min_successes < 0:
        raise ValueError(f"min_successes must be >= 0, got {min_successes}")
    if max_total_seconds is not None and max_total_seconds <= 0:
        raise ValueError(
            f"max_total_seconds must be positive or None, got {max_total_seconds}"
        )
    start = time.monotonic()
    results: list[Any] = []
    failures: list[TrialFailure] = []
    skipped = 0
    for index, trial in enumerate(trials):
        if (
            max_total_seconds is not None
            and time.monotonic() - start >= max_total_seconds
        ):
            skipped = len(trials) - index
            break
        trial_start = time.monotonic()
        try:
            results.append(trial())
        except catch as exc:
            failures.append(
                TrialFailure(
                    index=index, error=exc, elapsed_s=time.monotonic() - trial_start
                )
            )
    run = GuardedRun(
        results=tuple(results),
        failures=tuple(failures),
        skipped=skipped,
        label=label,
        elapsed_s=time.monotonic() - start,
    )
    if len(results) < min_successes:
        detail = "; ".join(
            f"trial {f.index}: {type(f.error).__name__}: {f.error}"
            for f in failures[:3]
        )
        raise InsufficientTrialsError(
            f"{label}: {len(results)}/{len(trials)} trials succeeded "
            f"(needed {min_successes}; {len(failures)} failed, {skipped} "
            f"skipped on budget){': ' + detail if detail else ''}"
        )
    return run
