"""Per-trial failure containment for experiment runners.

A figure built from dozens of independent trials should not abort because
one trial hit a transient fault (a chaos-injected drop, an unhealthy
calibration, a lost submission).  :func:`run_guarded_trials` runs each
trial inside a catch boundary and a shared wall-clock budget: failures
are recorded (not raised), remaining trials are skipped once the budget
is spent, and only a shortfall below the caller's floor aborts the
experiment — via :class:`~repro.errors.InsufficientTrialsError`, never a
silently thinner figure.

The loop also exposes three supervision hooks used by the crash-safe
runner (:mod:`repro.experiments.runner`): *skip_trial* bypasses trials
that are already checkpointed or gated off by a circuit breaker, *stop*
halts the batch early (soft-deadline watchdog), and *on_trial_end* fires
after every executed trial so results can be journaled to disk before
the next trial starts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from repro.errors import (
    InsufficientTrialsError,
    InvariantViolation,
    ReproError,
    UnhandledFaultError,
)

Trial = Callable[[], Any]

#: ``GuardedRun.stop_reason`` when the wall-clock budget cut the batch.
STOP_BUDGET = "budget"


@dataclass(frozen=True)
class TrialFailure:
    """One contained trial failure."""

    index: int
    error: Exception
    elapsed_s: float


@dataclass(frozen=True)
class GuardedRun:
    """Outcome of a guarded trial batch."""

    results: tuple
    failures: tuple[TrialFailure, ...]
    skipped: int
    label: str = ""
    elapsed_s: float = 0.0
    #: Why the batch halted early ("" when it ran to the end; ``budget``
    #: for the wall-clock cut; otherwise whatever *stop* returned).
    stop_reason: str = ""
    #: ``(index, reason)`` for trials bypassed by *skip_trial* — already
    #: checkpointed, breaker-gated, etc.  Not counted as skipped.
    bypassed: tuple[tuple[int, str], ...] = ()

    @property
    def attempted(self) -> int:
        """Trials actually executed (successes + failures)."""
        return len(self.results) + len(self.failures)

    @property
    def success_rate(self) -> float:
        """Fraction of attempted trials that succeeded."""
        return len(self.results) / self.attempted if self.attempted else 0.0

    @property
    def complete(self) -> bool:
        """Whether every trial ran and succeeded."""
        return not self.failures and not self.skipped and not self.stop_reason


def _unacknowledged(
    injector: Any,
    fired_before: "dict[Any, int] | None" = None,
    handled_before: "dict[Any, int] | None" = None,
) -> "dict[str, int]":
    """Site-id → count of faults fired with no matching acknowledgement.

    With *before* snapshots the audit covers only the current trial's
    window; without them (per-trial injectors) it covers the injector's
    whole lifetime.
    """
    fired_base = fired_before or {}
    handled_base = handled_before or {}
    gaps: dict[str, int] = {}
    for site, fired in injector.fired_by_site.items():
        fired -= fired_base.get(site, 0)
        handled = injector.handled_by_site.get(site, 0) - handled_base.get(site, 0)
        if fired > handled:
            gaps[site.value] = fired - handled
    return gaps


def run_guarded_trials(
    trials: Sequence[Trial],
    catch: tuple[type[Exception], ...] = (ReproError,),
    max_total_seconds: float | None = None,
    min_successes: int = 1,
    label: str = "experiment",
    skip_trial: Callable[[int], str | None] | None = None,
    stop: Callable[[], str | None] | None = None,
    on_trial_end: Callable[[int, Any, TrialFailure | None, float], None] | None = None,
    fault_injector: Any = None,
) -> GuardedRun:
    """Run *trials* (zero-argument callables), containing failures.

    Exceptions matching *catch* are recorded as :class:`TrialFailure`
    entries; anything else propagates (a programming error should still
    crash).  Once *max_total_seconds* of wall-clock time is spent, the
    remaining trials are skipped and counted.  If fewer than
    *min_successes* trials succeed, :class:`InsufficientTrialsError` is
    raised with the failure tally in its message.

    Supervision hooks (all optional):

    *skip_trial(index)* — return a reason string to bypass that trial
    without executing it (recorded in ``bypassed``), or ``None`` to run
    it.  Bypassed trials count toward neither successes nor failures.

    *stop()* — checked before each trial; a non-``None`` reason halts the
    batch, counts the remaining trials as skipped, and lands in
    ``stop_reason``.

    *on_trial_end(index, result, failure, elapsed_s)* — called after each
    executed trial, with either a result (``failure is None``) or a
    :class:`TrialFailure` (``result is None``) plus the trial's wall
    time.  Exceptions it raises propagate — a checkpoint that cannot be
    written must not be ignored.

    *fault_injector* — a :class:`~repro.faults.injector.FaultInjector`
    (or a zero-argument callable returning one, for trials that build
    their system per trial; return ``None`` to skip the audit).  After
    each *successful* trial the fired-versus-acknowledged ledger is
    audited: faults that fired during the trial with no matching
    :meth:`~repro.faults.injector.FaultInjector.acknowledge` — and no
    invariant trip — convert the green trial into a
    :class:`~repro.errors.UnhandledFaultError` failure.  Chaos runs use
    this to assert "injected faults are either handled or detected —
    never absorbed silently".

    Regardless of *catch*, :class:`~repro.errors.InvariantViolation`
    always propagates: a tripped invariant means the model state (and
    therefore every subsequent trial) can no longer be trusted, so it
    must surface as a distinct run outcome rather than a contained
    per-trial failure.
    """
    if min_successes < 0:
        raise ValueError(f"min_successes must be >= 0, got {min_successes}")
    if max_total_seconds is not None and max_total_seconds <= 0:
        raise ValueError(
            f"max_total_seconds must be positive or None, got {max_total_seconds}"
        )
    # Lazy import: the runner owns the (injectable) host clock and
    # imports this module at load time, so a top-level import would
    # be circular.
    from repro.experiments.runner import monotonic_clock

    start = monotonic_clock()
    results: list[Any] = []
    failures: list[TrialFailure] = []
    bypassed: list[tuple[int, str]] = []
    skipped = 0
    stop_reason = ""
    for index, trial in enumerate(trials):
        if (
            max_total_seconds is not None
            and monotonic_clock() - start >= max_total_seconds
        ):
            skipped = len(trials) - index
            stop_reason = STOP_BUDGET
            break
        if stop is not None:
            reason = stop()
            if reason:
                skipped = len(trials) - index
                stop_reason = reason
                break
        if skip_trial is not None:
            reason = skip_trial(index)
            if reason:
                bypassed.append((index, reason))
                continue
        static_injector = None if callable(fault_injector) else fault_injector
        fired_before = (
            dict(static_injector.fired_by_site)
            if static_injector is not None
            else None
        )
        handled_before = (
            dict(static_injector.handled_by_site)
            if static_injector is not None
            else None
        )
        trial_start = monotonic_clock()
        try:
            result = trial()
        except InvariantViolation:
            raise
        except catch as exc:
            elapsed = monotonic_clock() - trial_start
            failure = TrialFailure(index=index, error=exc, elapsed_s=elapsed)
            failures.append(failure)
            if on_trial_end is not None:
                on_trial_end(index, None, failure, elapsed)
        else:
            elapsed = monotonic_clock() - trial_start
            injector = (
                fault_injector() if callable(fault_injector) else fault_injector
            )
            gaps = (
                _unacknowledged(injector, fired_before, handled_before)
                if injector is not None
                else {}
            )
            if gaps:
                failure = TrialFailure(
                    index=index,
                    error=UnhandledFaultError(unacknowledged=gaps),
                    elapsed_s=elapsed,
                )
                failures.append(failure)
                if on_trial_end is not None:
                    on_trial_end(index, None, failure, elapsed)
            else:
                results.append(result)
                if on_trial_end is not None:
                    on_trial_end(index, result, None, elapsed)
    run = GuardedRun(
        results=tuple(results),
        failures=tuple(failures),
        skipped=skipped,
        label=label,
        elapsed_s=monotonic_clock() - start,
        stop_reason=stop_reason,
        bypassed=tuple(bypassed),
    )
    if len(results) < min_successes:
        detail = "; ".join(
            f"trial {f.index}: {type(f.error).__name__}: {f.error}"
            for f in failures[:3]
        )
        raise InsufficientTrialsError(
            f"{label}: {len(results)}/{len(trials)} trials succeeded "
            f"(needed {min_successes}; {len(failures)} failed, {skipped} "
            f"skipped on budget){': ' + detail if detail else ''}"
        )
    return run
