"""Shared trace-collection pipeline for the fingerprinting attacks.

One trace = one fresh two-VM system: the victim VM replays a workload
(website visit / SSH session / LLM inference) through its DSA-accelerated
path while the attacker VM runs the ``DSA_DevTLB`` sampler on the shared
engine.  Everything interleaves on the shared timeline, so the traces are
measured, not synthesized.

Collection is expressed as independent per-visit trials
(:func:`website_visit_trials`) so the crash-safe runner can checkpoint a
dataset sweep visit-by-visit; :func:`assemble_website_dataset` rebuilds
the ``(x, y)`` arrays from whichever trials succeeded, and
:func:`dataset_from_run_dir` lifts a (possibly partial) checkpointed run
directory into a :class:`~repro.analysis.datasets.TraceDataset`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.analysis.datasets import TraceDataset
from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.sampling import DevTlbSampler, SamplerConfig
from repro.errors import ConfigurationError, InsufficientTrialsError
from repro.experiments.checkpoint import CheckpointJournal, RunManifest
from repro.experiments.parallel import PlanHandle
from repro.experiments.runner import ExperimentPlan, TrialSpec, execute_plan
from repro.hw.noise import Environment
from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.vpp import VppVictim
from repro.workloads.websites import WebsiteProfile, top_sites


@dataclass(frozen=True)
class WfSamplerSettings:
    """Trace geometry for website fingerprinting.

    The paper samples every 10 us and aggregates 400 samples per slot
    (4 ms slots, 250 slots = 1 s).  The reproduction's default keeps the
    same slot duration and trace length but samples every 50 us (80 per
    slot), which cuts simulation cost 5x without changing the slot-count
    feature the classifier consumes.  Pass ``paper_scale=True`` helpers
    where the full geometry is wanted.
    """

    sample_period_us: float = 50.0
    samples_per_slot: int = 80
    slots: int = 250

    def sampler_config(self) -> SamplerConfig:
        """As a :class:`SamplerConfig`."""
        return SamplerConfig(
            sample_period_us=self.sample_period_us,
            samples_per_slot=self.samples_per_slot,
            slots=self.slots,
        )


PAPER_SCALE = WfSamplerSettings(sample_period_us=10.0, samples_per_slot=400, slots=250)


def collect_website_trace(
    profile: WebsiteProfile,
    seed: int,
    settings: WfSamplerSettings | None = None,
    calibration_samples: int = 30,
    environment: Environment = Environment.LOCAL,
) -> np.ndarray:
    """Collect one DevTLB miss-count trace of one website visit."""
    settings = settings or WfSamplerSettings()
    system = CloudSystem(seed=seed, environment=environment)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)

    attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
    attack.calibrate(samples=calibration_samples)

    victim = VppVictim(handles.victim, wq_id=handles.victim_wq)
    packets = profile.generate_visit(system.rng)
    victim.schedule_trace(system.timeline, packets, system.clock.now)

    sampler = DevTlbSampler(attack, system.timeline, settings.sampler_config())
    return sampler.collect_trace()


def visit_trial_key(site: str, visit: int) -> str:
    """Stable checkpoint key of one website visit."""
    return f"site/{site}/visit/{visit}"


def website_visit_trials(
    profiles: list[WebsiteProfile],
    visits_per_site: int,
    settings: WfSamplerSettings | None = None,
    seed: int = 1000,
    environment: Environment = Environment.LOCAL,
    key_prefix: str = "",
) -> list[TrialSpec]:
    """One independent, deterministic trial per (site, visit).

    The trial seed depends only on the site's index and the visit number
    — never on execution order — so a resumed sweep collects exactly the
    traces an uninterrupted one would have.
    """
    settings = settings or WfSamplerSettings()
    specs: list[TrialSpec] = []
    for label, profile in enumerate(profiles):
        for visit in range(visits_per_site):
            specs.append(
                TrialSpec(
                    key=key_prefix + visit_trial_key(profile.name, visit),
                    fn=lambda profile=profile, label=label, visit=visit: (
                        collect_website_trace(
                            profile,
                            seed + label * 10_000 + visit,
                            settings,
                            environment=environment,
                        )
                    ),
                )
            )
    return specs


def assemble_website_dataset(
    profiles: list[WebsiteProfile],
    visits_per_site: int,
    results: dict[str, np.ndarray],
    key_prefix: str = "",
) -> tuple[np.ndarray, np.ndarray]:
    """Rebuild ``(x, y)`` from per-visit trial results.

    A visit whose trial failed is simply absent from *results* and is
    dropped; a site with *no* surviving visit raises
    :class:`~repro.errors.InsufficientTrialsError` — a dataset silently
    missing a class would poison the classifier's label table.
    """
    traces: list[np.ndarray] = []
    labels: list[int] = []
    for label, profile in enumerate(profiles):
        site_traces = [
            results[key]
            for visit in range(visits_per_site)
            if (key := key_prefix + visit_trial_key(profile.name, visit)) in results
        ]
        if not site_traces:
            raise InsufficientTrialsError(
                f"site {profile.name!r}: 0/{visits_per_site} visits succeeded"
            )
        traces.extend(site_traces)
        labels.extend([label] * len(site_traces))
    return np.stack(traces), np.array(labels)


def website_dataset_plan(
    profiles: list[WebsiteProfile],
    visits_per_site: int,
    settings: WfSamplerSettings | None = None,
    seed: int = 1000,
    environment: Environment = Environment.LOCAL,
) -> ExperimentPlan:
    """A dataset sweep as a supervised plan: one trial per (site, visit),
    finalized into the ``(x, y)`` arrays.

    The per-trial seeds match :func:`website_visit_trials`' global
    enumeration, so checkpointed, resumed, serial, and sharded runs of
    the same plan all produce the same arrays.
    """
    settings = settings or WfSamplerSettings()
    trials = website_visit_trials(
        profiles, visits_per_site, settings, seed, environment
    )
    return ExperimentPlan(
        name="wf-dataset",
        seed=seed,
        config={
            "sites": [profile.name for profile in profiles],
            "visits_per_site": visits_per_site,
            "sample_period_us": settings.sample_period_us,
            "samples_per_slot": settings.samples_per_slot,
            "slots": settings.slots,
            "seed": seed,
            "environment": environment.value,
        },
        trials=tuple(trials),
        finalize=lambda results: assemble_website_dataset(
            profiles, visits_per_site, results
        ),
    )


def trial_plan(
    sites: int | list[str] = 5,
    visits_per_site: int = 4,
    sample_period_us: float = 50.0,
    samples_per_slot: int = 80,
    slots: int = 250,
    seed: int = 1000,
    environment: str = "local",
) -> ExperimentPlan:
    """:func:`website_dataset_plan` from picklable primitives only.

    This is the hook a :class:`~repro.experiments.parallel.PlanHandle`
    rebuilds in shard workers: *sites* is a count (the first N of
    :func:`~repro.workloads.websites.top_sites`) or a list of catalog
    site names, *environment* an :class:`~repro.hw.noise.Environment`
    value string.
    """
    if isinstance(sites, int):
        profiles = top_sites(sites)
    else:
        catalog = {profile.name: profile for profile in top_sites(100)}
        missing = [name for name in sites if name not in catalog]
        if missing:
            raise ConfigurationError(
                f"unknown site name(s) {missing}; choose from the "
                "top_sites catalog"
            )
        profiles = [catalog[name] for name in sites]
    return website_dataset_plan(
        profiles,
        visits_per_site,
        WfSamplerSettings(
            sample_period_us=sample_period_us,
            samples_per_slot=samples_per_slot,
            slots=slots,
        ),
        seed=seed,
        environment=Environment(environment),
    )


def collect_website_dataset(
    profiles: list[WebsiteProfile],
    visits_per_site: int,
    settings: WfSamplerSettings | None = None,
    seed: int = 1000,
    environment: Environment = Environment.LOCAL,
    workers: int = 1,
    shard_strategy: str = "interleave",
) -> tuple[np.ndarray, np.ndarray]:
    """Traces and labels for a list of sites.

    Returns ``(x, y)`` with ``x`` of shape ``(successes, slots)``.  A
    visit whose collection fails transiently (calibration, injected
    faults) is dropped rather than aborting the dataset; a site losing
    *every* visit raises
    :class:`~repro.errors.InsufficientTrialsError`.

    With ``workers > 1`` the visits run sharded across processes
    (observation-equivalent to serial; see docs/parallel.md).  The
    profiles must then come from the :func:`top_sites` catalog so the
    workers can rebuild the plan by name.
    """
    settings = settings or WfSamplerSettings()
    plan = website_dataset_plan(
        profiles, visits_per_site, settings, seed, environment
    )
    plan_source = None
    if workers > 1:
        catalog = {profile.name: profile for profile in top_sites(100)}
        alien = [p.name for p in profiles if catalog.get(p.name) != p]
        if alien:
            raise ConfigurationError(
                f"profiles {alien} are not top_sites catalog entries; "
                "sharded workers rebuild the plan by site name — run "
                "serially or supply your own plan via run_experiment"
            )
        plan_source = PlanHandle(
            __name__,
            {
                "sites": [profile.name for profile in profiles],
                "visits_per_site": visits_per_site,
                "sample_period_us": settings.sample_period_us,
                "samples_per_slot": settings.samples_per_slot,
                "slots": settings.slots,
                "seed": seed,
                "environment": environment.value,
            },
        )
    return execute_plan(
        plan, workers=workers, shard_strategy=shard_strategy,
        plan_source=plan_source,
    )


def dataset_from_run_dir(
    run_dir: str | Path, key_prefix: str = ""
) -> TraceDataset:
    """Lift a checkpointed fingerprinting run into a
    :class:`~repro.analysis.datasets.TraceDataset`.

    Works on *partial* runs — interrupted, deadline-stopped, or
    breaker-degraded — returning whatever visits were journaled, so a
    crashed overnight sweep is still analyzable (and mergeable with its
    resumed continuation via :meth:`TraceDataset.merge`).
    """
    journal = CheckpointJournal.load(run_dir)
    manifest = RunManifest.load(run_dir)
    prefix = key_prefix + "site/"
    traces: list[np.ndarray] = []
    names: list[str] = []
    class_names: list[str] = []
    for entry in journal.entries():
        if not entry.ok or not entry.key.startswith(prefix):
            continue
        site = entry.key[len(prefix):].split("/visit/")[0]
        traces.append(np.asarray(journal.load_payload(entry.key)))
        names.append(site)
        if site not in class_names:
            class_names.append(site)
    if not traces:
        raise InsufficientTrialsError(
            f"{run_dir}: no completed visit trials in checkpoint journal"
        )
    labels = np.array([class_names.index(name) for name in names])
    return TraceDataset(
        traces=np.stack(traces),
        labels=labels,
        class_names=tuple(class_names),
        metadata={
            "experiment": manifest.experiment,
            "config_hash": manifest.config_hash,
            "run_status": manifest.status,
            "seed": manifest.seed,
        },
    )
