"""Shared trace-collection pipeline for the fingerprinting attacks.

One trace = one fresh two-VM system: the victim VM replays a workload
(website visit / SSH session / LLM inference) through its DSA-accelerated
path while the attacker VM runs the ``DSA_DevTLB`` sampler on the shared
engine.  Everything interleaves on the shared timeline, so the traces are
measured, not synthesized.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.sampling import DevTlbSampler, SamplerConfig
from repro.experiments.guard import run_guarded_trials
from repro.hw.noise import Environment
from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.vpp import VppVictim
from repro.workloads.websites import WebsiteProfile


@dataclass(frozen=True)
class WfSamplerSettings:
    """Trace geometry for website fingerprinting.

    The paper samples every 10 us and aggregates 400 samples per slot
    (4 ms slots, 250 slots = 1 s).  The reproduction's default keeps the
    same slot duration and trace length but samples every 50 us (80 per
    slot), which cuts simulation cost 5x without changing the slot-count
    feature the classifier consumes.  Pass ``paper_scale=True`` helpers
    where the full geometry is wanted.
    """

    sample_period_us: float = 50.0
    samples_per_slot: int = 80
    slots: int = 250

    def sampler_config(self) -> SamplerConfig:
        """As a :class:`SamplerConfig`."""
        return SamplerConfig(
            sample_period_us=self.sample_period_us,
            samples_per_slot=self.samples_per_slot,
            slots=self.slots,
        )


PAPER_SCALE = WfSamplerSettings(sample_period_us=10.0, samples_per_slot=400, slots=250)


def collect_website_trace(
    profile: WebsiteProfile,
    seed: int,
    settings: WfSamplerSettings | None = None,
    calibration_samples: int = 30,
    environment: Environment = Environment.LOCAL,
) -> np.ndarray:
    """Collect one DevTLB miss-count trace of one website visit."""
    settings = settings or WfSamplerSettings()
    system = CloudSystem(seed=seed, environment=environment)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)

    attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
    attack.calibrate(samples=calibration_samples)

    victim = VppVictim(handles.victim, wq_id=handles.victim_wq)
    packets = profile.generate_visit(system.rng)
    victim.schedule_trace(system.timeline, packets, system.clock.now)

    sampler = DevTlbSampler(attack, system.timeline, settings.sampler_config())
    return sampler.collect_trace()


def collect_website_dataset(
    profiles: list[WebsiteProfile],
    visits_per_site: int,
    settings: WfSamplerSettings | None = None,
    seed: int = 1000,
    environment: Environment = Environment.LOCAL,
) -> tuple[np.ndarray, np.ndarray]:
    """Traces and labels for a list of sites.

    Returns ``(x, y)`` with ``x`` of shape ``(successes, slots)``.  A
    visit whose collection fails transiently (calibration, injected
    faults) is dropped rather than aborting the dataset; a site losing
    *every* visit raises
    :class:`~repro.errors.InsufficientTrialsError`.
    """
    settings = settings or WfSamplerSettings()
    traces = []
    labels = []
    for label, profile in enumerate(profiles):
        trials = [
            lambda visit=visit: collect_website_trace(
                profile,
                seed + label * 10_000 + visit,
                settings,
                environment=environment,
            )
            for visit in range(visits_per_site)
        ]
        guarded = run_guarded_trials(
            trials, min_successes=1, label=f"site {profile.name!r}"
        )
        traces.extend(guarded.results)
        labels.extend([label] * len(guarded.results))
    return np.stack(traces), np.array(labels)
