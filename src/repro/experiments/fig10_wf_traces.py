"""Fig. 10 — DevTLB miss traces of example website visits.

Collects the miss-count-per-slot traces for three example sites across
250 slots, the paper's visual argument that sites have distinguishable
temporal signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_series
from repro.experiments.wf_common import WfSamplerSettings, collect_website_trace
from repro.workloads.websites import WebsiteProfile

#: The example sites plotted (the paper shows three).
EXAMPLE_SITES = ("google.com", "youtube.com", "wikipedia.org")


@dataclass(frozen=True)
class Fig10Result:
    """Traces keyed by site name."""

    traces: dict[str, np.ndarray]
    slots: int

    @property
    def signatures_differ(self) -> bool:
        """Normalized slot histograms differ pairwise by a clear margin."""
        normalized = {}
        for name, trace in self.traces.items():
            total = max(trace.sum(), 1)
            normalized[name] = trace / total
        names = list(normalized)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if np.abs(normalized[a] - normalized[b]).sum() < 0.25:
                    return False
        return True

    @property
    def traces_have_activity(self) -> bool:
        """Every trace captured victim activity."""
        return all(trace.sum() > 0 for trace in self.traces.values())


def run(
    sites: tuple[str, ...] = EXAMPLE_SITES,
    settings: WfSamplerSettings | None = None,
    seed: int = 10,
) -> Fig10Result:
    """Collect one trace per example site."""
    settings = settings or WfSamplerSettings()
    traces = {}
    for index, name in enumerate(sites):
        profile = WebsiteProfile.from_name(name)
        traces[name] = collect_website_trace(profile, seed + index, settings)
    return Fig10Result(traces=traces, slots=settings.slots)


def report(result: Fig10Result) -> str:
    """The figure as per-site slot series (downsampled for readability)."""
    lines = [f"Fig. 10 — DevTLB misses across {result.slots} slots"]
    for name, trace in result.traces.items():
        step = max(len(trace) // 25, 1)
        xs = list(range(0, len(trace), step))
        ys = [int(trace[i]) for i in xs]
        lines.append(format_series(xs, ys, name))
    lines.append(f"signatures distinguishable: {result.signatures_differ}")
    return "\n".join(lines)
