"""Fig. 10 — DevTLB miss traces of example website visits.

Collects the miss-count-per-slot traces for three example sites across
250 slots, the paper's visual argument that sites have distinguishable
temporal signatures.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_series
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)
from repro.experiments.wf_common import WfSamplerSettings, collect_website_trace
from repro.workloads.websites import WebsiteProfile

#: The example sites plotted (the paper shows three).
EXAMPLE_SITES = ("google.com", "youtube.com", "wikipedia.org")


@dataclass(frozen=True)
class Fig10Result:
    """Traces keyed by site name."""

    traces: dict[str, np.ndarray]
    slots: int

    @property
    def signatures_differ(self) -> bool:
        """Normalized slot histograms differ pairwise by a clear margin."""
        normalized = {}
        for name, trace in self.traces.items():
            total = max(trace.sum(), 1)
            normalized[name] = trace / total
        names = list(normalized)
        for i, a in enumerate(names):
            for b in names[i + 1 :]:
                if np.abs(normalized[a] - normalized[b]).sum() < 0.25:
                    return False
        return True

    @property
    def traces_have_activity(self) -> bool:
        """Every trace captured victim activity."""
        return all(trace.sum() > 0 for trace in self.traces.values())


def trial_plan(
    sites: tuple[str, ...] = EXAMPLE_SITES,
    settings: WfSamplerSettings | None = None,
    seed: int = 10,
) -> ExperimentPlan:
    """One checkpointable trial per example site (all required — the
    figure argues sites are *pairwise* distinguishable)."""
    settings = settings or WfSamplerSettings()
    keys = [f"site/{name}" for name in sites]
    trials = tuple(
        TrialSpec(
            key=key,
            fn=lambda name=name, index=index: collect_website_trace(
                WebsiteProfile.from_name(name), seed + index, settings
            ),
        )
        for index, (key, name) in enumerate(zip(keys, sites))
    )

    def finalize(results: dict) -> Fig10Result:
        traces = require_all(results, keys, "fig10")
        return Fig10Result(
            traces=dict(zip(sites, traces)), slots=settings.slots
        )

    return ExperimentPlan(
        name="fig10",
        seed=seed,
        config=dict(sites=sites, settings=settings, seed=seed),
        trials=trials,
        finalize=finalize,
        min_successes=len(trials),
    )


def run(
    sites: tuple[str, ...] = EXAMPLE_SITES,
    settings: WfSamplerSettings | None = None,
    seed: int = 10,
) -> Fig10Result:
    """Collect one trace per example site."""
    return execute_plan(trial_plan(sites=sites, settings=settings, seed=seed))


def report(result: Fig10Result) -> str:
    """The figure as per-site slot series (downsampled for readability)."""
    lines = [f"Fig. 10 — DevTLB misses across {result.slots} slots"]
    for name, trace in result.traces.items():
        step = max(len(trace) // 25, 1)
        xs = list(range(0, len(trace), step))
        ys = [int(trace[i]) for i in xs]
        lines.append(format_series(xs, ys, name))
    lines.append(f"signatures distinguishable: {result.signatures_differ}")
    return "\n".join(lines)
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
