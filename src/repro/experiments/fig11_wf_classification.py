"""Fig. 11 / Section VI-B — website fingerprinting classification.

Collects a DevTLB-trace dataset for *n* sites x *m* visits, trains the
Attention-BiLSTM on an 80/20 split, and reports top-1 accuracy plus the
confusion matrix.  The paper reaches 96.5 % on a 15-site subset and
85.73 % on the full 100-site set with 200 traces per site.

The default scale (15 sites, 12 visits) keeps a single run in benchmark
territory; the full paper scale is a parameter away (and linear in
sites x visits).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.runner import ExperimentPlan, execute_plan
from repro.experiments.wf_common import (
    WfSamplerSettings,
    assemble_website_dataset,
    website_visit_trials,
)
from repro.hw.noise import Environment
from repro.ml.baseline import NearestCentroidClassifier
from repro.ml.metrics import accuracy, confusion_matrix
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.train import TrainConfig, Trainer, train_test_split
from repro.workloads.websites import top_sites


@dataclass(frozen=True)
class Fig11Result:
    """Classification outcome."""

    site_names: tuple[str, ...]
    bilstm_accuracy: float
    baseline_accuracy: float
    matrix: np.ndarray
    test_samples: int


def trial_plan(
    sites: int = 10,
    visits_per_site: int = 10,
    settings: WfSamplerSettings | None = None,
    seed: int = 100,
    hidden: int = 12,
    epochs: int = 60,
    environment: Environment = Environment.LOCAL,
) -> ExperimentPlan:
    """One checkpointable trial per (site, visit); training happens in
    ``finalize`` over whichever visits survived.

    Trace collection dominates the cost (the paper's full sweep takes a
    day), so that is what gets checkpointed; the deterministic training
    pass re-runs on resume.  A failed visit is dropped; a site losing
    every visit aborts via ``assemble_website_dataset``.
    """
    settings = settings or WfSamplerSettings(
        sample_period_us=100.0, samples_per_slot=40, slots=120
    )
    profiles = top_sites(sites)
    trials = website_visit_trials(
        profiles, visits_per_site, settings, seed=seed, environment=environment
    )

    def finalize(results: dict) -> Fig11Result:
        x, y = assemble_website_dataset(profiles, visits_per_site, results)
        x_train, y_train, x_test, y_test = train_test_split(
            x, y, test_fraction=0.2, rng=np.random.default_rng(seed)
        )

        model = AttentionBiLstmClassifier(
            classes=sites, hidden=hidden, rng=np.random.default_rng(seed + 1)
        )
        trainer = Trainer(
            model, TrainConfig(epochs=epochs, batch_size=32, seed=seed + 2)
        )
        trainer.fit(x_train, y_train)
        predictions = trainer.predict(x_test)
        bilstm_accuracy = accuracy(y_test, predictions)

        baseline = NearestCentroidClassifier().fit(x_train, y_train)
        baseline_accuracy = accuracy(y_test, baseline.predict(x_test))

        return Fig11Result(
            site_names=tuple(p.name for p in profiles),
            bilstm_accuracy=bilstm_accuracy,
            baseline_accuracy=baseline_accuracy,
            matrix=confusion_matrix(y_test, predictions, classes=sites),
            test_samples=len(y_test),
        )

    return ExperimentPlan(
        name="fig11",
        seed=seed,
        config=dict(
            sites=sites,
            visits_per_site=visits_per_site,
            settings=settings,
            seed=seed,
            hidden=hidden,
            epochs=epochs,
            environment=environment,
        ),
        trials=tuple(trials),
        finalize=finalize,
    )


def run(
    sites: int = 10,
    visits_per_site: int = 10,
    settings: WfSamplerSettings | None = None,
    seed: int = 100,
    hidden: int = 12,
    epochs: int = 60,
    environment: Environment = Environment.LOCAL,
) -> Fig11Result:
    """Collect, train, and score."""
    return execute_plan(
        trial_plan(
            sites=sites,
            visits_per_site=visits_per_site,
            settings=settings,
            seed=seed,
            hidden=hidden,
            epochs=epochs,
            environment=environment,
        )
    )


def report(result: Fig11Result) -> str:
    """Accuracy summary plus the confusion matrix of the worst classes."""
    lines = [
        "Fig. 11 / Section VI-B — website fingerprinting",
        f"sites: {len(result.site_names)}  test traces: {result.test_samples}",
        f"Attention-BiLSTM top-1 accuracy: {result.bilstm_accuracy * 100:.1f}% "
        f"(paper: 96.5% on 15 sites, 85.7% on 100)",
        f"nearest-centroid baseline:       {result.baseline_accuracy * 100:.1f}%",
    ]
    per_class = result.matrix.diagonal() / np.maximum(result.matrix.sum(axis=1), 1)
    order = np.argsort(per_class)
    rows = [
        [result.site_names[i], f"{per_class[i] * 100:.0f}%",
         int(result.matrix[i].sum())]
        for i in order[:5]
    ]
    lines.append("hardest classes:")
    lines.append(format_table(["site", "recall", "test traces"], rows))
    return "\n".join(lines)
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
