"""Fig. 12 / Section VI-C — SSH keystroke detection.

The victim types over SSH with DTO enabled; every keystroke produces a
tight cluster of DSA submissions.  Both primitives recover the keystroke
*timing*:

* ``DSA_DevTLB`` — Prime+Probe sampling.  Its probe period bounds the
  timing precision (the paper reports a 5.29 ms standard deviation) and
  probes hit by host interference must be discarded (the paper's
  "probed latency > 2,000 cycles" filter), costing recall.
* ``DSA_SWQ`` — Congest+Probe rounds.  The round is mostly sensing (the
  drain/congest blind spot is under 1 %), which is why the paper's SWQ
  variant posts both the higher F1 (98.4 %) and the tighter timing
  (1.21 ms).

Host interference (IOTLB shootdowns, scheduler preemption, unrelated
tenants) is modeled by two per-probe probabilities — a *discard* rate
(the >2,000-cycle filter events, hurting recall) and a *spurious* rate
(stray DSA activity, hurting precision) — calibrated in EXPERIMENTS.md
against the paper's raw TP/FP/FN counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.keystroke_eval import KeystrokeEvaluation, evaluate_keystrokes
from repro.analysis.reporting import format_table
from repro.core.devtlb_attack import DsaDevTlbAttack
from repro.core.swq_attack import DsaSwqAttack
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)
from repro.hw.noise import Environment
from repro.hw.units import us_to_cycles
from repro.virt.system import AttackTopology, CloudSystem
from repro.workloads.dto import DtoRuntime
from repro.workloads.ssh import SshKeystrokeSession

#: DevTLB sampling period for keystroke tracking (ms).  Coarse sampling
#: bounds the attacker's own DSA footprint; it also bounds the timing
#: precision at period/sqrt(12) ~ 5.3 ms — the paper's deviation.
DEVTLB_PROBE_PERIOD_MS = 18.0

#: SWQ round geometry: anchor execution span per round (ms).
SWQ_ROUND_MS = 4.0

#: Host-interference rates, calibrated to the paper's event counts
#: (DevTLB: 500 TP / 15 FP / 61 FN;  SWQ: 507 TP / 7 FP / 9 FN).
DEVTLB_DISCARD_PROBABILITY = 0.115
DEVTLB_SPURIOUS_PROBABILITY = 0.003
SWQ_DISCARD_PROBABILITY = 0.012
SWQ_SPURIOUS_PROBABILITY = 0.0003


@dataclass(frozen=True)
class KeystrokeAttackResult:
    """One primitive's detection run."""

    primitive: str
    evaluation: KeystrokeEvaluation
    detected_times: np.ndarray
    truth_times: np.ndarray


@dataclass(frozen=True)
class Fig12Result:
    """Both variants."""

    devtlb: KeystrokeAttackResult
    swq: KeystrokeAttackResult


def _type_text(length: int, seed: int) -> str:
    rng = np.random.default_rng(seed)
    alphabet = "abcdefghijklmnopqrstuvwxyz ./-"
    return "".join(alphabet[i] for i in rng.integers(0, len(alphabet), size=length))


def run_devtlb_variant(
    keystrokes: int = 256,
    seed: int = 12,
    environment: Environment = Environment.LOCAL,
) -> KeystrokeAttackResult:
    """Prime+Probe keystroke tracking."""
    system = CloudSystem(seed=seed, environment=environment)
    handles = system.setup_topology(AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE)
    interference = np.random.default_rng(seed + 1)

    dto = DtoRuntime(handles.victim, wq_id=handles.victim_wq)
    session = SshKeystrokeSession(dto, np.random.default_rng(seed + 2))
    truth_events = session.schedule_typing(
        system.timeline, _type_text(keystrokes, seed), system.clock.now
    )
    start = system.clock.now
    truth_times = np.array([start + us_to_cycles(e.time_us) for e in truth_events])

    attack = DsaDevTlbAttack(handles.attacker, wq_id=handles.attacker_wq)
    attack.calibrate(samples=40)
    attack.prime()
    period = us_to_cycles(DEVTLB_PROBE_PERIOD_MS * 1000.0)
    end_time = truth_times[-1] + period * 4
    detected = []
    while system.clock.now < end_time:
        system.timeline.idle_until(system.clock.now + period)
        outcome = attack.probe()
        if interference.random() < DEVTLB_DISCARD_PROBABILITY:
            continue  # probe discarded by the >2,000-cycle filter
        if outcome.evicted or interference.random() < DEVTLB_SPURIOUS_PROBABILITY:
            detected.append(outcome.timestamp - period // 2)
    evaluation = evaluate_keystrokes(truth_times, np.array(detected))
    return KeystrokeAttackResult(
        primitive="devtlb",
        evaluation=evaluation,
        detected_times=np.array(detected),
        truth_times=truth_times,
    )


def run_swq_variant(
    keystrokes: int = 256,
    seed: int = 12,
    environment: Environment = Environment.LOCAL,
) -> KeystrokeAttackResult:
    """Congest+Probe keystroke tracking (timer-free)."""
    system = CloudSystem(seed=seed, environment=environment)
    handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    interference = np.random.default_rng(seed + 1)

    dto = DtoRuntime(handles.victim, wq_id=0)
    session = SshKeystrokeSession(dto, np.random.default_rng(seed + 2))
    truth_events = session.schedule_typing(
        system.timeline, _type_text(keystrokes, seed), system.clock.now
    )
    start = system.clock.now
    truth_times = np.array([start + us_to_cycles(e.time_us) for e in truth_events])

    round_cycles = us_to_cycles(SWQ_ROUND_MS * 1000.0)
    idle_cycles = int(round_cycles * 0.93)
    anchor_bytes = int(round_cycles * 0.97 * 15)
    attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=anchor_bytes)
    end_time = truth_times[-1] + round_cycles * 4
    detected = []
    while system.clock.now < end_time:
        result = attack.run_round(idle_cycles, timeline=system.timeline)
        if interference.random() < SWQ_DISCARD_PROBABILITY:
            continue
        if result.victim_detected or interference.random() < SWQ_SPURIOUS_PROBABILITY:
            detected.append(result.probe_time - idle_cycles // 2)
    evaluation = evaluate_keystrokes(truth_times, np.array(detected))
    return KeystrokeAttackResult(
        primitive="swq",
        evaluation=evaluation,
        detected_times=np.array(detected),
        truth_times=truth_times,
    )


def trial_plan(
    keystrokes: int = 256,
    seed: int = 12,
    environment: Environment = Environment.LOCAL,
) -> ExperimentPlan:
    """One checkpointable trial per primitive variant (both required —
    the figure is the DevTLB/SWQ comparison)."""
    variants = {
        "variant/devtlb": lambda: run_devtlb_variant(keystrokes, seed, environment),
        "variant/swq": lambda: run_swq_variant(keystrokes, seed, environment),
    }
    trials = tuple(TrialSpec(key=key, fn=fn) for key, fn in variants.items())
    keys = list(variants)

    def finalize(results: dict) -> Fig12Result:
        devtlb, swq = require_all(results, keys, "fig12")
        return Fig12Result(devtlb=devtlb, swq=swq)

    return ExperimentPlan(
        name="fig12",
        seed=seed,
        config=dict(keystrokes=keystrokes, seed=seed, environment=environment),
        trials=trials,
        finalize=finalize,
        min_successes=len(trials),
    )


def run(
    keystrokes: int = 256,
    seed: int = 12,
    environment: Environment = Environment.LOCAL,
) -> Fig12Result:
    """Run both variants on independent sessions."""
    return execute_plan(
        trial_plan(keystrokes=keystrokes, seed=seed, environment=environment)
    )


def report(result: Fig12Result) -> str:
    """Section VI-C's metrics as a table."""
    rows = []
    for variant, paper_f1, paper_std in (
        (result.devtlb, "92.0%", "5.29 ms"),
        (result.swq, "98.4%", "1.21 ms"),
    ):
        ev = variant.evaluation
        rows.append(
            [
                variant.primitive,
                ev.ground_truth,
                ev.detections,
                ev.true_positives,
                ev.false_positives,
                ev.false_negatives,
                f"{ev.precision * 100:.1f}%",
                f"{ev.recall * 100:.1f}%",
                f"{ev.f1 * 100:.1f}% (paper {paper_f1})",
                f"{ev.timestamp_std_ms:.2f} ms (paper {paper_std})",
            ]
        )
    return "Fig. 12 / Section VI-C — SSH keystroke detection\n" + format_table(
        ["primitive", "truth", "events", "TP", "FP", "FN", "precision", "recall",
         "F1", "timing std"],
        rows,
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
