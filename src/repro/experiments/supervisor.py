"""Supervision primitives for the persistent worker pool.

:mod:`repro.experiments.pool` keeps long-lived worker processes alive
across experiment runs; this module holds the mechanisms that keep that
safe — everything here is process-local, dependency-free, and unit
testable without spawning a single worker:

* :class:`WorkerState` — the supervision state machine each pool member
  moves through (``spawning → healthy → suspect → respawning``, with
  ``retired`` as the terminal state and pool-level ``degraded-serial``
  when parallelism stops paying); documented in ``docs/parallel.md``.
* :class:`HeartbeatBoard` — a tiny shared-memory scoreboard, one slot
  per worker: beat counter, host timestamp, current trial, current
  shard.  The parent's hung-worker watchdog reads it; workers write it
  between trials (a stalled trial stops beating, which is exactly the
  signal).
* :class:`RespawnBackoff` — capped exponential delay between respawns
  of the same worker slot, so a crash-looping environment cannot burn
  CPU respawning at full speed.
* :class:`PoisonLedger` — strike accounting per trial key: a trial
  that repeatedly takes its worker down is quarantined (manifest-logged,
  exit code 8) instead of wedging the run in a kill/respawn loop.
* :class:`CostModel` — EWMA per-trial cost per plan, backing the
  "does parallelism pay?" decision that triggers graceful degradation
  to the serial loop.
* :func:`interrupt_shield` / :func:`sigterm_as_interrupt` — signal
  plumbing that guarantees checkpoint + manifest flushes complete even
  when SIGINT/SIGTERM lands mid-drain (the PR-5 teardown race).

Host-time reads route through the runner's injectable
:func:`~repro.experiments.runner.monotonic_clock` (the DET002 contract),
so supervision timing is testable with ``override_clocks``.
"""

from __future__ import annotations

import contextlib
import enum
import signal
import struct
import threading
from dataclasses import dataclass, field
from multiprocessing import resource_tracker, shared_memory
from typing import Any, Iterator

from repro.experiments.runner import monotonic_clock

__all__ = [
    "CostModel",
    "HeartbeatBoard",
    "Heartbeat",
    "InterruptLatch",
    "PoisonLedger",
    "PoolConfig",
    "RespawnBackoff",
    "WorkerState",
    "interrupt_shield",
    "sigterm_as_interrupt",
]


class WorkerState(str, enum.Enum):
    """Supervision states of one pool worker slot.

    ``SPAWNING`` covers process start through the worker's first
    ``run-ready`` reply; ``HEALTHY`` workers execute shards and beat the
    heartbeat board; a worker whose heartbeat goes stale turns
    ``SUSPECT`` and — past the hang deadline — is SIGKILLed and parked
    ``RESPAWNING`` until its backoff elapses; ``RETIRED`` is terminal
    (pool shutdown or degradation to serial).
    """

    SPAWNING = "spawning"
    HEALTHY = "healthy"
    SUSPECT = "suspect"
    RESPAWNING = "respawning"
    RETIRED = "retired"


#: Pool-level execution mode recorded when the pool abandons parallelism
#: (cost model says it doesn't pay, or the respawn budget is exhausted)
#: and runs the remaining trials inline in the parent.
DEGRADED_SERIAL = "degraded-serial"


@dataclass(frozen=True)
class PoolConfig:
    """Tuning for one :class:`~repro.experiments.pool.WorkerPool`."""

    #: Capacity of each worker's result ring (bytes of payload stream).
    ring_bytes: int = 1 << 20
    #: How long a worker may sit in ``SPAWNING`` before it is failed.
    spawn_timeout_s: float = 60.0
    #: Heartbeat staleness that turns a shard-running worker ``SUSPECT``.
    hang_suspect_s: float = 5.0
    #: Hard heartbeat deadline: floor for the SIGKILL decision.  The
    #: effective deadline is ``max(hang_floor_s, hang_factor × longest
    #: observed trial)`` — the PR-2 watchdog discipline applied to
    #: worker liveness instead of the run budget.
    hang_floor_s: float = 30.0
    hang_factor: float = 3.0
    #: Respawn backoff: ``min(base × 2^attempt, cap)`` seconds.
    respawn_base_s: float = 0.05
    respawn_cap_s: float = 2.0
    #: Total respawns one run tolerates before degrading to serial.
    respawn_budget: int = 8
    #: Worker-kill strikes before a trial key is quarantined.
    poison_threshold: int = 2
    #: Dynamic shard granularity: pending trials are cut into up to
    #: ``workers × shards_per_worker`` chunks so a respawn requeues a
    #: fraction of the run, not half of it.
    shards_per_worker: int = 4
    #: How long an aborting parent keeps draining finished results.
    drain_s: float = 30.0
    #: Ceiling on a POOL_WORKER_STALL fault when the spec carries no
    #: magnitude (so an undetected stall cannot wedge a worker forever).
    stall_cap_s: float = 120.0

    def __post_init__(self) -> None:
        if self.ring_bytes < 4096:
            raise ValueError(f"ring_bytes must be >= 4096, got {self.ring_bytes}")
        if self.respawn_budget < 0:
            raise ValueError("respawn_budget cannot be negative")
        if self.poison_threshold < 1:
            raise ValueError("poison_threshold must be >= 1")
        if self.shards_per_worker < 1:
            raise ValueError("shards_per_worker must be >= 1")

    def hang_deadline_s(self, longest_trial_s: float) -> float:
        """The SIGKILL deadline given the longest trial seen so far."""
        return max(self.hang_floor_s, self.hang_factor * longest_trial_s)


# ----------------------------------------------------------------------
# Respawn backoff
# ----------------------------------------------------------------------
@dataclass
class RespawnBackoff:
    """Capped exponential backoff for respawning one worker slot."""

    base_s: float = 0.05
    cap_s: float = 2.0
    attempts: int = 0

    def next_delay(self) -> float:
        """Delay before the next respawn; advances the attempt count."""
        delay = min(self.base_s * (2.0 ** self.attempts), self.cap_s)
        self.attempts += 1
        return delay

    def reset(self) -> None:
        """Back to fast respawns (called after a healthy shard)."""
        self.attempts = 0


# ----------------------------------------------------------------------
# Poison ledger
# ----------------------------------------------------------------------
class PoisonLedger:
    """Strike accounting for trials that keep taking workers down.

    Every worker failure blames one trial (the index its heartbeat said
    it was executing).  One strike is forgiven — the trial is retried
    with pool-site chaos suppressed; at *threshold* strikes the trial is
    quarantined: dropped from the run, listed in the manifest's
    ``poisoned`` field, and reflected in exit code 8.
    """

    def __init__(self, threshold: int = 2) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.strikes: dict[str, int] = {}
        self.reasons: dict[str, list[str]] = {}
        self._poisoned: set[str] = set()

    def strike(self, key: str, reason: str) -> bool:
        """Record one strike against *key*; ``True`` once quarantined."""
        self.strikes[key] = self.strikes.get(key, 0) + 1
        self.reasons.setdefault(key, []).append(reason)
        if self.strikes[key] >= self.threshold:
            self._poisoned.add(key)
        return key in self._poisoned

    def is_poisoned(self, key: str) -> bool:
        """Whether *key* has hit the quarantine threshold."""
        return key in self._poisoned

    @property
    def poisoned(self) -> tuple[str, ...]:
        """Quarantined trial keys, sorted (the manifest order)."""
        return tuple(sorted(self._poisoned))

    @property
    def struck(self) -> tuple[str, ...]:
        """Every key with at least one strike, sorted."""
        return tuple(sorted(self.strikes))


# ----------------------------------------------------------------------
# Heartbeat board
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Heartbeat:
    """One worker slot's scoreboard entry, as read by the parent."""

    counter: int
    timestamp: float
    trial: int  # plan index being executed, -1 when idle
    shard: int  # shard id being executed, -1 when idle


#: counter (u64), host timestamp (f64), trial index (i64), shard (i64).
_SLOT = struct.Struct("<Qdqq")


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Detach *shm* from this process's resource tracker.

    Python ≤ 3.12 registers every attached segment with the resource
    tracker, which then *destroys* the parent's segment when the worker
    exits (bpo-38119).  Attach-side handles therefore unregister; only
    the creating process unlinks.
    """
    try:
        resource_tracker.unregister(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # repro-lint: ignore[EXC001] - best-effort detach
        pass


def _retrack(shm: shared_memory.SharedMemory) -> None:
    """Re-register *shm* just before the owner unlinks it.

    When parent and workers share one resource-tracker process (the
    normal multiprocessing arrangement), a worker's :func:`_untrack`
    removes the tracker's only cache entry for the name — the tracker's
    cache is a per-name set, not a refcount — so the owner's later
    ``unlink()`` (which unregisters internally) would make the tracker
    log a spurious ``KeyError``.  Re-registering is idempotent in every
    arrangement, so unlink's unregister always finds its entry.
    """
    try:
        resource_tracker.register(shm._name, "shared_memory")  # type: ignore[attr-defined]
    except Exception:  # repro-lint: ignore[EXC001] - best-effort
        pass


def _open_shared_memory(
    name: str | None, create: bool, size: int = 0
) -> shared_memory.SharedMemory:
    """``SharedMemory`` that never lets an attacher's exit unlink it."""
    try:
        shm = shared_memory.SharedMemory(
            name=name, create=create, size=size, track=create
        )
    except TypeError:  # Python < 3.13: no track= keyword
        shm = shared_memory.SharedMemory(name=name, create=create, size=size)
        if not create:
            _untrack(shm)
    return shm


class HeartbeatBoard:
    """A shared-memory scoreboard with one :class:`Heartbeat` per worker.

    The creating parent owns (and eventually unlinks) the segment;
    workers attach by name and write only their own slot, so no lock is
    needed — the parent tolerates a torn read as at worst one delayed
    staleness decision.  Use as a context manager (or rely on the
    registered finalizer) so the segment is always released.
    """

    def __init__(
        self, slots: int, name: str | None = None, *, _create: bool = True
    ) -> None:
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        self.slot_count = slots
        self._owner = _create
        self._shm = _open_shared_memory(
            name, create=_create, size=slots * _SLOT.size
        )
        if _create:
            self._shm.buf[:] = b"\x00" * (slots * _SLOT.size)
        self._counters = [0] * slots  # writer-local beat counters
        self._closed = False

    @classmethod
    def attach(cls, name: str, slots: int) -> "HeartbeatBoard":
        """Worker-side handle on an existing board."""
        return cls(slots, name=name, _create=False)

    @property
    def name(self) -> str:
        """The shared-memory segment name workers attach to."""
        return self._shm.name

    def beat(self, slot: int, trial: int = -1, shard: int = -1) -> None:
        """Stamp *slot* alive, naming what it is executing right now."""
        self._counters[slot] += 1
        _SLOT.pack_into(
            self._shm.buf,
            slot * _SLOT.size,
            self._counters[slot],
            monotonic_clock(),
            trial,
            shard,
        )

    def read(self, slot: int) -> Heartbeat:
        """The parent-side view of *slot*."""
        counter, timestamp, trial, shard = _SLOT.unpack_from(
            self._shm.buf, slot * _SLOT.size
        )
        return Heartbeat(
            counter=counter, timestamp=timestamp, trial=trial, shard=shard
        )

    def reset(self, slot: int) -> None:
        """Zero *slot* (called by the parent before a respawn)."""
        self._shm.buf[slot * _SLOT.size:(slot + 1) * _SLOT.size] = (
            b"\x00" * _SLOT.size
        )

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            _retrack(self._shm)
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "HeartbeatBoard":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class CostModel:
    """Measured per-trial cost per plan, driving serial-vs-pool choice.

    The pool records an exponentially-weighted moving average of trial
    wall time for every plan name it executes.  Before engaging workers,
    :meth:`parallel_pays` compares the projected pool run (startup +
    dispatch overhead + compute spread over the effective worker count)
    against the projected serial run; when parallelism cannot win — one
    effective CPU, a tiny batch, or measured per-trial cost dwarfed by
    overhead — the pool degrades gracefully to the inline serial loop.
    """

    def __init__(
        self,
        spawn_overhead_s: float = 0.35,
        dispatch_overhead_s: float = 0.003,
        alpha: float = 0.3,
    ) -> None:
        self.spawn_overhead_s = spawn_overhead_s
        self.dispatch_overhead_s = dispatch_overhead_s
        self.alpha = alpha
        self._per_trial_s: dict[str, float] = {}

    def observe(self, plan_name: str, elapsed_s: float) -> None:
        """Feed one completed trial's wall time into the EWMA."""
        previous = self._per_trial_s.get(plan_name)
        if previous is None:
            self._per_trial_s[plan_name] = elapsed_s
        else:
            self._per_trial_s[plan_name] = (
                self.alpha * elapsed_s + (1.0 - self.alpha) * previous
            )

    def estimate(self, plan_name: str) -> float | None:
        """EWMA seconds per trial for *plan_name*, if observed."""
        return self._per_trial_s.get(plan_name)

    def parallel_pays(
        self,
        plan_name: str,
        pending: int,
        workers: int,
        cpu_count: int,
        pool_warm: bool,
    ) -> tuple[bool, str]:
        """``(pays, reason)`` — whether to engage the pool at all."""
        effective = max(1, min(workers, cpu_count))
        if effective <= 1:
            return False, (
                f"effective parallelism is 1 (workers={workers}, "
                f"cpus={cpu_count}): spawned interpreters would time-slice "
                "one core"
            )
        if pending <= 1:
            return False, f"only {pending} pending trial(s)"
        per_trial = self.estimate(plan_name)
        if per_trial is None:
            return True, "no cost data yet; measuring under the pool"
        serial_s = per_trial * pending
        startup_s = 0.0 if pool_warm else self.spawn_overhead_s * workers
        pool_s = (
            startup_s
            + per_trial * pending / effective
            + self.dispatch_overhead_s * pending
        )
        if pool_s >= serial_s:
            return False, (
                f"cost model: pool ≈{pool_s:.3f}s vs serial "
                f"≈{serial_s:.3f}s for {pending} trials at "
                f"{per_trial * 1e3:.1f}ms/trial"
            )
        return True, (
            f"cost model: pool ≈{pool_s:.3f}s beats serial ≈{serial_s:.3f}s"
        )


# ----------------------------------------------------------------------
# Interrupt plumbing
# ----------------------------------------------------------------------
@dataclass
class InterruptLatch:
    """Interrupts delivered while a shield was up."""

    count: int = 0
    signals: list[int] = field(default_factory=list)

    @property
    def interrupted(self) -> bool:
        """Whether at least one SIGINT/SIGTERM was latched."""
        return self.count > 0


def _on_main_thread() -> bool:
    return threading.current_thread() is threading.main_thread()


@contextlib.contextmanager
def interrupt_shield() -> Iterator[InterruptLatch]:
    """Latch SIGINT/SIGTERM instead of raising, for critical sections.

    The parallel/pool parents use this around result draining, worker
    teardown, and the final manifest flush: a second ctrl-C (or a
    scheduler SIGTERM racing the drain) is *recorded* on the returned
    latch — callers poll :attr:`InterruptLatch.interrupted` to cut the
    drain short — but can no longer skip the checkpoint writes that make
    exit 130 resumable.  Off the main thread (where Python forbids
    signal handlers) the shield is a no-op latch.
    """
    latch = InterruptLatch()
    if not _on_main_thread():
        yield latch
        return

    def _handler(signum: int, frame: Any) -> None:
        latch.count += 1
        latch.signals.append(signum)

    previous: dict[int, Any] = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[signum] = signal.signal(signum, _handler)
        except (ValueError, OSError):  # pragma: no cover - exotic hosts
            pass
    try:
        yield latch
    finally:
        for signum, handler in previous.items():
            try:
                signal.signal(signum, handler)
            except (ValueError, OSError):  # pragma: no cover
                pass


@contextlib.contextmanager
def sigterm_as_interrupt() -> Iterator[None]:
    """Deliver SIGTERM as :class:`KeyboardInterrupt` for the duration.

    The CLI installs a process-wide equivalent; this context manager
    gives library callers of the parallel/pool executors the same
    guarantee — a scheduler kill checkpoints exactly like ctrl-C — and
    restores the previous handler on exit.  No-op off the main thread.
    """
    if not _on_main_thread():
        yield
        return

    def _handler(signum: int, frame: Any) -> None:
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, _handler)
    except (ValueError, OSError):  # pragma: no cover - exotic hosts
        yield
        return
    try:
        yield
    finally:
        try:
            signal.signal(signal.SIGTERM, previous)
        except (ValueError, OSError):  # pragma: no cover
            pass
