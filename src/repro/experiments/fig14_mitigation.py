"""Fig. 14 — software-mitigation overhead.

Wraps :func:`repro.mitigation.overhead.mitigation_overhead_sweep`: the
``dsa-perf-micros``-style native loop and the DTO loop across transfer
sizes, quiet vs. scrubbed.  The paper reports up to 15.7 % (native) and
17.9 % (DTO) degradation at 256 B, fading as transfers grow.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.reporting import format_table
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)
from repro.mitigation.overhead import OverheadRow, mitigation_overhead_sweep

#: The paper's sweep: 256 B up to 64 KiB.
DEFAULT_SIZES = (256, 1024, 4096, 16384, 65536)


@dataclass(frozen=True)
class Fig14Result:
    """The sweep's rows."""

    rows: tuple[OverheadRow, ...]

    def max_overhead(self, path: str) -> float:
        """Worst-case degradation for one path."""
        values = [r.overhead_percent for r in self.rows if r.path == path]
        if not values:
            raise KeyError(path)
        return max(values)

    @property
    def overhead_shrinks_with_size(self) -> bool:
        """Smallest size suffers the most on both paths."""
        for path in ("dsa", "dto"):
            series = sorted(
                (r for r in self.rows if r.path == path), key=lambda r: r.size_bytes
            )
            if series[0].overhead_percent < series[-1].overhead_percent:
                return False
        return True


def trial_plan(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    iterations: int = 150,
    scrub_period_us: float = 4.6,
    seed: int = 99,
) -> ExperimentPlan:
    """One checkpointable trial per transfer size.

    The sweep builds a fresh identically-seeded system per (size, path)
    cell, so per-size trials measure exactly what the monolithic sweep
    did.  All sizes are required — the figure's claim is the trend.
    """
    keys = [f"size/{size}" for size in sizes]
    trials = tuple(
        TrialSpec(
            key=key,
            fn=lambda size=size: mitigation_overhead_sweep(
                [size],
                iterations=iterations,
                scrub_period_us=scrub_period_us,
                seed=seed,
            ),
        )
        for key, size in zip(keys, sizes)
    )

    def finalize(results: dict) -> Fig14Result:
        per_size = require_all(results, keys, "fig14")
        return Fig14Result(
            rows=tuple(row for rows in per_size for row in rows)
        )

    return ExperimentPlan(
        name="fig14",
        seed=seed,
        config=dict(
            sizes=sizes,
            iterations=iterations,
            scrub_period_us=scrub_period_us,
            seed=seed,
        ),
        trials=trials,
        finalize=finalize,
        min_successes=len(trials),
    )


def run(
    sizes: tuple[int, ...] = DEFAULT_SIZES,
    iterations: int = 150,
    scrub_period_us: float = 4.6,
    seed: int = 99,
) -> Fig14Result:
    """Run the sweep."""
    return execute_plan(
        trial_plan(
            sizes=sizes,
            iterations=iterations,
            scrub_period_us=scrub_period_us,
            seed=seed,
        )
    )


def report(result: Fig14Result) -> str:
    """The figure as a table."""
    rows = [
        [
            r.size_bytes,
            r.path,
            f"{r.baseline_gbps:.3f}",
            f"{r.mitigated_gbps:.3f}",
            f"{r.overhead_percent:.1f}%",
        ]
        for r in result.rows
    ]
    table = format_table(
        ["size (B)", "path", "baseline (GB/s)", "mitigated (GB/s)", "overhead"], rows
    )
    return (
        "Fig. 14 — DevTLB-scrubbing mitigation overhead\n"
        + table
        + f"\nmax overhead: dsa {result.max_overhead('dsa'):.1f}% "
        f"(paper: 15.7%), dto {result.max_overhead('dto'):.1f}% (paper: 17.9%); "
        f"shrinks with size: {result.overhead_shrinks_with_size}"
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
