"""Extension study: reverse-engineering the IOTLB behind the DevTLB.

The paper warms the IOTLB before measuring (Section IV-B) but never
characterizes it.  The same unprivileged toolkit can: probe with a
working set of K distinct completion pages cycled round-robin.  Every
probe misses the single-slot DevTLB (K >= 2 guarantees that), so its
latency is dominated by what happens at the translation agent — an IOTLB
hit (fast) or a full page walk (slow).  Sweeping K exposes the IOTLB
capacity as a latency knee: below capacity, steady-state probes pay only
the ATS round trip; above it, the round-robin pattern defeats LRU
entirely and every probe pays a walk.

This demonstrates the model end-to-end (the knee lands at the configured
64 sets x 8 ways) and documents a practical recipe for the real device.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.primitives import Prober
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)
from repro.virt.system import AttackTopology, CloudSystem

#: Working-set sizes swept (pages).
DEFAULT_WORKING_SETS = (32, 64, 128, 256, 384, 512, 640, 768, 1024)


@dataclass(frozen=True)
class WorkingSetPoint:
    """Steady-state miss-probe latency for one working-set size."""

    pages: int
    mean_latency_cycles: float


@dataclass(frozen=True)
class IotlbStudyResult:
    """The sweep plus the inferred capacity."""

    points: tuple[WorkingSetPoint, ...]
    configured_capacity: int

    @property
    def inferred_capacity(self) -> int | None:
        """Last working-set size before the latency knee."""
        latencies = [p.mean_latency_cycles for p in self.points]
        baseline = latencies[0]
        for previous, point in zip(self.points, self.points[1:]):
            if point.mean_latency_cycles > baseline + 200:
                return previous.pages
        return None

    @property
    def knee_matches_configuration(self) -> bool:
        """The inferred capacity brackets the true one within the sweep."""
        inferred = self.inferred_capacity
        if inferred is None:
            return False
        larger = [p.pages for p in self.points if p.pages > inferred]
        upper = min(larger) if larger else inferred
        return inferred <= self.configured_capacity <= upper


def trial_plan(
    working_sets: tuple[int, ...] = DEFAULT_WORKING_SETS,
    passes: int = 3,
    seed: int = 77,
) -> ExperimentPlan:
    """The sweep as a single checkpointable trial.

    Unlike the per-point figures, this study deliberately shares one
    system across working-set sizes (allocation state is part of what it
    probes), so the natural atomic unit is the whole sweep — a crash
    loses at most one sweep, not a day of dataset collection.
    """
    trials = (
        TrialSpec(key="sweep", fn=lambda: _sweep(working_sets, passes, seed)),
    )

    def finalize(results: dict) -> IotlbStudyResult:
        (result,) = require_all(results, ["sweep"], "iotlb")
        return result

    return ExperimentPlan(
        name="iotlb",
        seed=seed,
        config=dict(working_sets=working_sets, passes=passes, seed=seed),
        trials=trials,
        finalize=finalize,
        min_successes=1,
    )


def run(
    working_sets: tuple[int, ...] = DEFAULT_WORKING_SETS,
    passes: int = 3,
    seed: int = 77,
) -> IotlbStudyResult:
    """Run the working-set sweep."""
    return execute_plan(
        trial_plan(working_sets=working_sets, passes=passes, seed=seed)
    )


def _sweep(
    working_sets: tuple[int, ...],
    passes: int,
    seed: int,
) -> IotlbStudyResult:
    system = CloudSystem(seed=seed)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    attacker = system.vms["attacker-vm"].process("attacker")
    prober = Prober(attacker, wq_id=0)
    iotlb = system.device.agent.iotlb
    capacity = iotlb.sets * iotlb.ways

    points = []
    for pages in working_sets:
        addresses = [prober.fresh_comp() for _ in range(pages)]
        latencies: list[int] = []
        for pass_index in range(passes):
            for address in addresses:
                latency = prober.probe_noop(address).latency_cycles
                if pass_index == passes - 1:
                    latencies.append(latency)
        points.append(
            WorkingSetPoint(
                pages=pages, mean_latency_cycles=float(np.mean(latencies))
            )
        )
    return IotlbStudyResult(points=tuple(points), configured_capacity=capacity)


def report(result: IotlbStudyResult) -> str:
    """The sweep as a table."""
    rows = [
        [p.pages, f"{p.mean_latency_cycles:.0f}"] for p in result.points
    ]
    table = format_table(["working set (pages)", "probe latency (cyc)"], rows)
    return (
        "IOTLB capacity study (extension)\n"
        + table
        + f"\ninferred capacity: {result.inferred_capacity} pages "
        f"(configured: {result.configured_capacity}); "
        f"knee brackets configuration: {result.knee_matches_configuration}"
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
