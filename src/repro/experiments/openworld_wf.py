"""Extension: open-world website fingerprinting.

The paper's Fig. 11 is closed-world.  Here the attacker trains on a
*monitored* subset of sites, calibrates a confidence threshold on held-out
known traces, and is then shown a mixture of monitored and unmonitored
visits — the question becomes "which monitored site, if any?".  Reported
metrics follow the open-world WF literature: known-class accuracy (with
rejection counting as an error) and unknown rejection rate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.experiments.runner import ExperimentPlan, execute_plan
from repro.experiments.wf_common import (
    WfSamplerSettings,
    assemble_website_dataset,
    website_visit_trials,
)
from repro.ml.model import AttentionBiLstmClassifier
from repro.ml.openworld import OpenWorldClassifier, OpenWorldScores
from repro.ml.train import TrainConfig, Trainer, train_test_split
from repro.workloads.websites import top_sites


@dataclass(frozen=True)
class OpenWorldWfResult:
    """Outcome of the open-world run."""

    monitored_sites: tuple[str, ...]
    unmonitored_sites: tuple[str, ...]
    threshold: float
    scores: OpenWorldScores
    closed_world_accuracy: float


#: Checkpoint-key prefix separating unmonitored-world visits from the
#: monitored training set in one journal.
UNMONITORED_PREFIX = "un/"


def trial_plan(
    monitored: int = 5,
    unmonitored: int = 4,
    visits_per_site: int = 8,
    settings: WfSamplerSettings | None = None,
    seed: int = 700,
    epochs: int = 60,
    hidden: int = 10,
    target_known_recall: float = 0.85,
) -> ExperimentPlan:
    """Open-world WF as per-visit trials over both worlds.

    Monitored and unmonitored visits share one journal (unmonitored keys
    carry :data:`UNMONITORED_PREFIX`); training, threshold calibration,
    and open-world scoring all live in ``finalize`` so a resumed run
    trains on exactly the traces an uninterrupted one would have.
    """
    settings = settings or WfSamplerSettings(
        sample_period_us=100.0, samples_per_slot=40, slots=100
    )
    profiles = top_sites(monitored + unmonitored)
    monitored_profiles = profiles[:monitored]
    unmonitored_profiles = profiles[monitored:]
    unmonitored_visits = max(visits_per_site // 2, 2)

    trials = website_visit_trials(
        monitored_profiles, visits_per_site, settings, seed=seed
    ) + website_visit_trials(
        unmonitored_profiles, unmonitored_visits, settings,
        seed=seed + 50_000, key_prefix=UNMONITORED_PREFIX,
    )

    def finalize(results: dict) -> OpenWorldWfResult:
        x, y = assemble_website_dataset(
            monitored_profiles, visits_per_site, results
        )
        x_train, y_train, x_test, y_test = train_test_split(
            x, y, test_fraction=0.25, rng=np.random.default_rng(seed)
        )
        model = AttentionBiLstmClassifier(
            classes=monitored, hidden=hidden, rng=np.random.default_rng(seed + 1)
        )
        trainer = Trainer(
            model,
            TrainConfig(
                epochs=epochs, batch_size=16, seed=seed + 2,
                early_stop_train_accuracy=1.01,
            ),
        )
        trainer.fit(x_train, y_train)
        closed_world = trainer.evaluate(x_test, y_test)

        open_world = OpenWorldClassifier.from_trainer(trainer)
        threshold = open_world.calibrate_threshold(
            x_train, target_known_recall=target_known_recall
        )

        unknown_x, _ = assemble_website_dataset(
            unmonitored_profiles, unmonitored_visits, results,
            key_prefix=UNMONITORED_PREFIX,
        )
        scores = open_world.evaluate(x_test, y_test, unknown_x)
        return OpenWorldWfResult(
            monitored_sites=tuple(p.name for p in monitored_profiles),
            unmonitored_sites=tuple(p.name for p in unmonitored_profiles),
            threshold=threshold,
            scores=scores,
            closed_world_accuracy=closed_world,
        )

    return ExperimentPlan(
        name="openworld",
        seed=seed,
        config=dict(
            monitored=monitored,
            unmonitored=unmonitored,
            visits_per_site=visits_per_site,
            settings=settings,
            seed=seed,
            epochs=epochs,
            hidden=hidden,
            target_known_recall=target_known_recall,
        ),
        trials=tuple(trials),
        finalize=finalize,
    )


def run(
    monitored: int = 5,
    unmonitored: int = 4,
    visits_per_site: int = 8,
    settings: WfSamplerSettings | None = None,
    seed: int = 700,
    epochs: int = 60,
    hidden: int = 10,
    target_known_recall: float = 0.85,
) -> OpenWorldWfResult:
    """Collect, train on the monitored world, evaluate openly."""
    return execute_plan(
        trial_plan(
            monitored=monitored,
            unmonitored=unmonitored,
            visits_per_site=visits_per_site,
            settings=settings,
            seed=seed,
            epochs=epochs,
            hidden=hidden,
            target_known_recall=target_known_recall,
        )
    )


def report(result: OpenWorldWfResult) -> str:
    """Text summary."""
    rows = [
        ["closed-world accuracy", f"{result.closed_world_accuracy * 100:.1f}%"],
        ["confidence threshold", f"{result.threshold:.3f}"],
        ["open-world known accuracy", f"{result.scores.known_accuracy * 100:.1f}%"],
        ["unknown rejection rate", f"{result.scores.unknown_rejection_rate * 100:.1f}%"],
        ["balanced score", f"{result.scores.balanced * 100:.1f}%"],
    ]
    return (
        "Open-world website fingerprinting (extension)\n"
        f"monitored: {', '.join(result.monitored_sites)}\n"
        f"unmonitored: {', '.join(result.unmonitored_sites)}\n"
        + format_table(["metric", "value"], rows)
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
