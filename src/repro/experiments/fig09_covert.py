"""Fig. 9 — covert-channel raw capacity sweep.

For each primitive, sweeps the bit window (i.e. the raw signalling rate)
and reports raw capacity, bit error rate, and true capacity.  The paper's
headline points: the DevTLB channel peaks at 17.19 kbps true capacity
with 4.63 % error; the SWQ channel reaches 4.02 kbps at 13.11 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.covert.channel import (
    run_devtlb_covert_channel,
    run_swq_covert_channel,
)
from repro.covert.protocol import CovertConfig
from repro.experiments.runner import ExperimentPlan, TrialSpec, execute_plan

#: Bit windows swept for the DevTLB channel (us).
DEVTLB_WINDOWS_US = (150.0, 100.0, 60.0, 42.5, 32.0, 25.0)

#: Bit windows swept for the SWQ channel (us).
SWQ_WINDOWS_US = (260.0, 180.0, 110.0, 80.0)


@dataclass(frozen=True)
class SweepPoint:
    """One (primitive, rate) measurement."""

    primitive: str
    bit_window_us: float
    raw_bps: float
    error_rate: float
    true_bps: float


@dataclass(frozen=True)
class Fig9Result:
    """Both sweeps."""

    points: tuple[SweepPoint, ...]

    def best(self, primitive: str) -> SweepPoint:
        """Highest true capacity for one primitive."""
        candidates = [p for p in self.points if p.primitive == primitive]
        if not candidates:
            raise KeyError(primitive)
        return max(candidates, key=lambda p: p.true_bps)

    @property
    def error_grows_with_rate(self) -> bool:
        """Within each primitive, the fastest window has more error than
        the slowest (the Fig. 9 trade-off)."""
        for primitive in sorted({p.primitive for p in self.points}):
            series = sorted(
                (p for p in self.points if p.primitive == primitive),
                key=lambda p: p.raw_bps,
            )
            if series[-1].error_rate <= series[0].error_rate:
                return False
        return True


def _trial_key(primitive: str, window: float, run_index: int) -> str:
    return f"{primitive}/w{window:g}/r{run_index}"


def trial_plan(
    payload_bits: int = 192,
    runs: int = 3,
    seed: int = 2026,
    devtlb_windows: tuple[float, ...] = DEVTLB_WINDOWS_US,
    swq_windows: tuple[float, ...] = SWQ_WINDOWS_US,
) -> ExperimentPlan:
    """Both sweeps as one checkpointable trial per (primitive, window, run).

    Each trial seeds its own fresh system from the run seed and its run
    index only, so the sweep resumes deterministically.  Per-run failures
    are contained by the runner (a sync loss on a noisy rung is data, not
    a crash): a window with zero surviving runs is dropped from the sweep
    in ``finalize`` instead of aborting the whole figure.
    """
    sweeps = (
        ("devtlb", run_devtlb_covert_channel, devtlb_windows, payload_bits, {}),
        (
            "swq",
            run_swq_covert_channel,
            swq_windows,
            min(payload_bits, 128),
            dict(sender_jitter_us=27.5, preamble_ones=16, preamble_burst_bits=4),
        ),
    )
    trials: list[TrialSpec] = []
    for primitive, run_fn, windows, bits, config_kwargs in sweeps:
        for window in windows:
            for run_index in range(runs):
                trials.append(
                    TrialSpec(
                        key=_trial_key(primitive, window, run_index),
                        fn=lambda run_fn=run_fn, window=window, bits=bits,
                        run_index=run_index, config_kwargs=config_kwargs: run_fn(
                            payload_bits=bits,
                            seed=seed + run_index,
                            config=CovertConfig(
                                bit_window_us=window, **config_kwargs
                            ),
                        ),
                    )
                )

    def finalize(results: dict) -> Fig9Result:
        points: list[SweepPoint] = []
        for primitive, _run_fn, windows, _bits, _kwargs in sweeps:
            for window in windows:
                survivors = [
                    results[key]
                    for run_index in range(runs)
                    if (key := _trial_key(primitive, window, run_index)) in results
                ]
                if not survivors:
                    continue
                points.append(
                    SweepPoint(
                        primitive=primitive,
                        bit_window_us=window,
                        raw_bps=survivors[0].raw_bps,
                        error_rate=float(np.mean([r.error_rate for r in survivors])),
                        true_bps=float(np.mean([r.true_bps for r in survivors])),
                    )
                )
        return Fig9Result(points=tuple(points))

    return ExperimentPlan(
        name="fig09",
        seed=seed,
        config=dict(
            payload_bits=payload_bits,
            runs=runs,
            seed=seed,
            devtlb_windows=devtlb_windows,
            swq_windows=swq_windows,
        ),
        trials=tuple(trials),
        finalize=finalize,
    )


def run(
    payload_bits: int = 192,
    runs: int = 3,
    seed: int = 2026,
    devtlb_windows: tuple[float, ...] = DEVTLB_WINDOWS_US,
    swq_windows: tuple[float, ...] = SWQ_WINDOWS_US,
) -> Fig9Result:
    """Run both sweeps (through the supervised trial runner)."""
    return execute_plan(
        trial_plan(
            payload_bits=payload_bits,
            runs=runs,
            seed=seed,
            devtlb_windows=devtlb_windows,
            swq_windows=swq_windows,
        )
    )


def report(result: Fig9Result) -> str:
    """The figure as a table plus headline points."""
    rows = [
        [
            p.primitive,
            f"{p.bit_window_us:.1f}",
            f"{p.raw_bps / 1e3:.2f}",
            f"{p.error_rate * 100:.2f}%",
            f"{p.true_bps / 1e3:.2f}",
        ]
        for p in result.points
    ]
    table = format_table(
        ["primitive", "window (us)", "raw (kbps)", "BER", "true (kbps)"], rows
    )
    devtlb = result.best("devtlb")
    swq = result.best("swq")
    return (
        "Fig. 9 — covert-channel capacity sweep\n"
        + table
        + f"\nDevTLB peak: {devtlb.true_bps / 1e3:.2f} kbps @ "
        f"{devtlb.error_rate * 100:.2f}% (paper: 17.19 kbps @ 4.63%)"
        + f"\nSWQ peak:    {swq.true_bps / 1e3:.2f} kbps @ "
        f"{swq.error_rate * 100:.2f}% (paper: 4.02 kbps @ 13.11%)"
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
