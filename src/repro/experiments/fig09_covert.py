"""Fig. 9 — covert-channel raw capacity sweep.

For each primitive, sweeps the bit window (i.e. the raw signalling rate)
and reports raw capacity, bit error rate, and true capacity.  The paper's
headline points: the DevTLB channel peaks at 17.19 kbps true capacity
with 4.63 % error; the SWQ channel reaches 4.02 kbps at 13.11 %.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.covert.channel import (
    run_devtlb_covert_channel,
    run_swq_covert_channel,
)
from repro.covert.protocol import CovertConfig
from repro.experiments.guard import run_guarded_trials

#: Bit windows swept for the DevTLB channel (us).
DEVTLB_WINDOWS_US = (150.0, 100.0, 60.0, 42.5, 32.0, 25.0)

#: Bit windows swept for the SWQ channel (us).
SWQ_WINDOWS_US = (260.0, 180.0, 110.0, 80.0)


@dataclass(frozen=True)
class SweepPoint:
    """One (primitive, rate) measurement."""

    primitive: str
    bit_window_us: float
    raw_bps: float
    error_rate: float
    true_bps: float


@dataclass(frozen=True)
class Fig9Result:
    """Both sweeps."""

    points: tuple[SweepPoint, ...]

    def best(self, primitive: str) -> SweepPoint:
        """Highest true capacity for one primitive."""
        candidates = [p for p in self.points if p.primitive == primitive]
        if not candidates:
            raise KeyError(primitive)
        return max(candidates, key=lambda p: p.true_bps)

    @property
    def error_grows_with_rate(self) -> bool:
        """Within each primitive, the fastest window has more error than
        the slowest (the Fig. 9 trade-off)."""
        for primitive in {p.primitive for p in self.points}:
            series = sorted(
                (p for p in self.points if p.primitive == primitive),
                key=lambda p: p.raw_bps,
            )
            if series[-1].error_rate <= series[0].error_rate:
                return False
        return True


def _average_runs(run_fn, windows, runs, payload_bits, seed, **config_kwargs):
    points = []
    for window in windows:
        config = CovertConfig(bit_window_us=window, **config_kwargs)

        def trial(run_index, config=config):
            return run_fn(
                payload_bits=payload_bits, seed=seed + run_index, config=config
            )

        # Contain per-run failures (a sync loss on a noisy rung is data,
        # not a crash): a window with zero surviving runs is dropped from
        # the sweep instead of aborting the whole figure.
        guarded = run_guarded_trials(
            [lambda i=i: trial(i) for i in range(runs)],
            min_successes=0,
            label=f"{run_fn.__name__} window={window}us",
        )
        if not guarded.results:
            continue
        errors = [r.error_rate for r in guarded.results]
        trues = [r.true_bps for r in guarded.results]
        raw = guarded.results[0].raw_bps
        points.append((window, raw, float(np.mean(errors)), float(np.mean(trues))))
    return points


def run(
    payload_bits: int = 192,
    runs: int = 3,
    seed: int = 2026,
    devtlb_windows: tuple[float, ...] = DEVTLB_WINDOWS_US,
    swq_windows: tuple[float, ...] = SWQ_WINDOWS_US,
) -> Fig9Result:
    """Run both sweeps."""
    points: list[SweepPoint] = []
    for window, raw, error, true in _average_runs(
        run_devtlb_covert_channel, devtlb_windows, runs, payload_bits, seed
    ):
        points.append(
            SweepPoint(
                primitive="devtlb", bit_window_us=window, raw_bps=raw,
                error_rate=error, true_bps=true,
            )
        )
    for window, raw, error, true in _average_runs(
        run_swq_covert_channel,
        swq_windows,
        runs,
        min(payload_bits, 128),
        seed,
        sender_jitter_us=27.5,
        preamble_ones=16,
        preamble_burst_bits=4,
    ):
        points.append(
            SweepPoint(
                primitive="swq", bit_window_us=window, raw_bps=raw,
                error_rate=error, true_bps=true,
            )
        )
    return Fig9Result(points=tuple(points))


def report(result: Fig9Result) -> str:
    """The figure as a table plus headline points."""
    rows = [
        [
            p.primitive,
            f"{p.bit_window_us:.1f}",
            f"{p.raw_bps / 1e3:.2f}",
            f"{p.error_rate * 100:.2f}%",
            f"{p.true_bps / 1e3:.2f}",
        ]
        for p in result.points
    ]
    table = format_table(
        ["primitive", "window (us)", "raw (kbps)", "BER", "true (kbps)"], rows
    )
    devtlb = result.best("devtlb")
    swq = result.best("swq")
    return (
        "Fig. 9 — covert-channel capacity sweep\n"
        + table
        + f"\nDevTLB peak: {devtlb.true_bps / 1e3:.2f} kbps @ "
        f"{devtlb.error_rate * 100:.2f}% (paper: 17.19 kbps @ 4.63%)"
        + f"\nSWQ peak:    {swq.true_bps / 1e3:.2f} kbps @ "
        f"{swq.error_rate * 100:.2f}% (paper: 4.02 kbps @ 13.11%)"
    )
