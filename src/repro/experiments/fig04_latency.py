"""Fig. 4 — DevTLB hit/miss latency distributions across environments.

For each of the four environments (Local, Local+Noise, Cloud,
Cloud+Noise): prime a completion page, measure hit latencies by
re-probing, and miss latencies by evicting with a second page first.
The paper's claims to reproduce:

* hits cluster near ~500 cycles, misses exceed ~1000;
* noise shifts the distributions (≈ +89 cycles for Cloud+Noise) but a
  fixed threshold in the 600-900 band separates the classes everywhere.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.core.calibration import calibrate_threshold
from repro.core.primitives import Prober
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)
from repro.hw.noise import Environment
from repro.virt.system import AttackTopology, CloudSystem


@dataclass(frozen=True)
class EnvironmentLatencies:
    """One environment's measured distributions."""

    environment: Environment
    hit_latencies: np.ndarray
    miss_latencies: np.ndarray
    threshold: int

    @property
    def hit_mean(self) -> float:
        """Mean DevTLB-hit probe latency."""
        return float(self.hit_latencies.mean())

    @property
    def miss_mean(self) -> float:
        """Mean DevTLB-miss probe latency."""
        return float(self.miss_latencies.mean())

    @property
    def band_threshold_works(self) -> bool:
        """Does a fixed 600-900 band threshold separate the classes?"""
        for threshold in (600, 750, 900):
            hit_ok = (self.hit_latencies < threshold).mean() > 0.97
            miss_ok = (self.miss_latencies >= threshold).mean() > 0.97
            if hit_ok and miss_ok:
                return True
        return False


@dataclass(frozen=True)
class Fig4Result:
    """All four environments."""

    environments: tuple[EnvironmentLatencies, ...]

    def for_environment(self, environment: Environment) -> EnvironmentLatencies:
        """Select one environment's row."""
        for row in self.environments:
            if row.environment is environment:
                return row
        raise KeyError(environment)

    @property
    def cloud_noise_shift(self) -> float:
        """Mean hit-latency shift of Cloud+Noise relative to Local."""
        return (
            self.for_environment(Environment.CLOUD_NOISE).hit_mean
            - self.for_environment(Environment.LOCAL).hit_mean
        )


def _measure_environment(environment: Environment, samples: int, seed: int):
    system = CloudSystem(seed=seed, environment=environment)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    prober = Prober(system.vms["attacker-vm"].process("attacker"), wq_id=0)
    calibration = calibrate_threshold(prober, samples=samples)
    return EnvironmentLatencies(
        environment=environment,
        hit_latencies=calibration.hit_latencies,
        miss_latencies=calibration.miss_latencies,
        threshold=calibration.threshold,
    )


def trial_plan(samples: int = 300, seed: int = 4) -> ExperimentPlan:
    """One checkpointable trial per environment.

    The figure compares distributions *across* all four environments, so
    every trial is required: a missing environment raises rather than
    rendering a silently thinner figure.
    """
    keys = [f"env/{environment.value}" for environment in Environment]
    trials = tuple(
        TrialSpec(
            key=key,
            fn=lambda environment=environment: _measure_environment(
                environment, samples, seed
            ),
        )
        for key, environment in zip(keys, Environment)
    )

    def finalize(results: dict) -> Fig4Result:
        return Fig4Result(
            environments=tuple(require_all(results, keys, "fig04"))
        )

    return ExperimentPlan(
        name="fig04",
        seed=seed,
        config=dict(samples=samples, seed=seed),
        trials=trials,
        finalize=finalize,
        min_successes=len(trials),
    )


def run(samples: int = 300, seed: int = 4) -> Fig4Result:
    """Collect the distributions (through the supervised trial runner)."""
    return execute_plan(trial_plan(samples=samples, seed=seed))


def report(result: Fig4Result) -> str:
    """The figure as a table of distribution summaries."""
    rows = []
    for row in result.environments:
        rows.append(
            [
                row.environment.value,
                f"{row.hit_mean:.0f}",
                f"{row.miss_mean:.0f}",
                f"{row.threshold}",
                "yes" if row.band_threshold_works else "NO",
            ]
        )
    table = format_table(
        ["environment", "hit mean (cyc)", "miss mean (cyc)", "calibrated thr", "600-900 band works"],
        rows,
    )
    return (
        "Fig. 4 — DevTLB hit/miss latency by environment\n"
        + table
        + f"\nCloud+Noise shift vs Local: {result.cloud_noise_shift:+.0f} cycles "
        f"(paper: ~+89)"
    )
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
