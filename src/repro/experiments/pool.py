"""Self-healing persistent worker pool for experiment plans.

:mod:`repro.experiments.parallel` (PR-5) proved the sharded executor can
be *observation equivalent* to the serial loop — but it pays interpreter
spawn + plan rebuild on every run, which on small hosts makes it slower
than serial (``BENCH_parallel.json``).  This module keeps the
equivalence contract and fixes the economics:

* **Persistent fork-server workers** — one long-lived process per pool
  slot (``forkserver`` start method, ``spawn`` fallback), reused across
  runs.  A worker rebuilds ``plan_source(...)`` once per distinct plan
  fingerprint and caches it, so repeated runs of the same experiment pay
  near-zero startup.
* **Checksummed shared-memory results** — workers stream results over a
  per-worker :class:`ShmRing` (a single-producer single-consumer byte
  ring in ``multiprocessing.shared_memory``) as CRC32-framed pickles
  instead of pickled queue messages; a frame that fails its checksum is
  a detected failure (:class:`~repro.errors.PoolProtocolError`), never
  silently parsed.
* **Supervision** — each worker stamps a :class:`~repro.experiments.
  supervisor.HeartbeatBoard` slot between trials.  The parent turns a
  stale worker ``suspect``, SIGKILLs it past the hang deadline
  (``max(floor, factor × longest trial)`` — the PR-2 watchdog discipline
  applied to liveness), respawns crashed workers under capped
  exponential backoff, and requeues their unacknowledged trials.  A
  trial that repeatedly takes workers down is quarantined to the
  manifest's ``poisoned`` list (exit code 8) instead of wedging the run.
* **Graceful degradation** — when the measured
  :class:`~repro.experiments.supervisor.CostModel` says parallelism
  cannot pay (one effective CPU, tiny batch, overhead-dominated trials)
  or the respawn budget is exhausted, the run continues *inline* in the
  parent on the same journal/manifest — byte-identical to the serial
  loop, because it is the serial loop.

Equivalence contract: a pool run's journal, manifest, and finalized
artifact are byte-identical to a serial run's (same helpers as PR-5:
journals written in plan-index order; manifests carry the same counts),
and ``--resume`` works across worker-count changes *and* across a pool
restart (the journal is addressed by trial key).  See
``docs/parallel.md`` for the supervision state machine and
``tests/chaos/test_pool_fault_matrix.py`` for the pool chaos matrix
(:data:`~repro.faults.sites.POOL_SITES`).
"""

from __future__ import annotations

import atexit
import collections
import contextlib
import hashlib
import multiprocessing
import os
import pickle
import signal
import struct
import time
import traceback
import zlib
from pathlib import Path
from typing import Any, Callable

from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    PoolError,
    PoolProtocolError,
    ReproError,
)
from repro.experiments import parallel as _parallel_mod
from repro.experiments.checkpoint import (
    STATUS_DEADLINE,
    STATUS_INSUFFICIENT,
    STATUS_INTERRUPTED,
    STATUS_INVARIANT,
    STATUS_POISONED,
    CheckpointJournal,
    RunManifest,
)
from repro.experiments.guard import TrialFailure, run_guarded_trials
from repro.experiments.parallel import (
    SHARD_STRATEGIES,
    STOP_PARALLEL,
    WorkerContext,
    _BREAKER_SEVERITY,
    _PINNED_HASH_SEED,
    _coerce_plan_source,
    _rebuild_violation,
)
from repro.experiments.runner import (
    STOP_DEADLINE,
    BreakerConfig,
    CircuitBreaker,
    ExperimentPlan,
    RunOutcome,
    Watchdog,
    _ordered_successes,
    insufficient_error,
    monotonic_clock,
    prepare_checkpoint,
    resolve_finalize,
)
from repro.experiments.supervisor import (
    DEGRADED_SERIAL,
    CostModel,
    HeartbeatBoard,
    PoisonLedger,
    PoolConfig,
    RespawnBackoff,
    WorkerState,
    _open_shared_memory,
    _retrack,
    interrupt_shield,
    sigterm_as_interrupt,
)
from repro.faults.plan import FaultSite
from repro.faults.sites import POOL_SITES
from repro.invariants.pool import PoolStateChecker

__all__ = [
    "FrameAssembler",
    "ShmRing",
    "WorkerPool",
    "get_pool",
    "run_pool_experiment",
    "shutdown_pools",
]

#: Supervision loop cadence (parent) / command poll cadence (worker).
_POLL_S = 0.02

#: The pseudo worker id the degraded-serial inline path reports to the
#: pool-state checker (it is "the parent executing trials itself").
_INLINE_WORKER = -1

# Worker -> parent message tags (framed pickles on the result ring).
_MSG_TRIAL = "pool-trial"
_MSG_RUN_READY = "pool-run-ready"
_MSG_RUN_ERROR = "pool-run-error"
_MSG_SHARD_DONE = "pool-shard-done"
_MSG_INVARIANT = "pool-invariant"
_MSG_INTERRUPTED = "pool-interrupted"
_MSG_CRASHED = "pool-crashed"


# ----------------------------------------------------------------------
# The checksummed shared-memory result stream
# ----------------------------------------------------------------------
_FRAME_HEADER = struct.Struct("<4sII")  # magic, payload length, crc32
_FRAME_MAGIC = b"DSP7"
#: Sanity cap on a single frame so a corrupt length field cannot make
#: the parent wait forever for bytes that will never arrive.
_FRAME_LIMIT = 64 << 20

_RING_HEADER = 16  # two u64 absolute counters: head (writer), tail (reader)
_U64 = struct.Struct("<Q")


def _encode_frame(payload: bytes, corrupt: bool = False) -> bytes:
    """Frame *payload* for the ring; *corrupt* flips the checksum (the
    ``POOL_RESULT_CORRUPT`` chaos effect — detectable, never parseable)."""
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    if corrupt:
        crc ^= 0x5A5A5A5A
    return _FRAME_HEADER.pack(_FRAME_MAGIC, len(payload), crc) + payload


class FrameAssembler:
    """Reassembles framed records from a ring's raw byte chunks.

    Raises :class:`~repro.errors.PoolProtocolError` on a bad magic,
    oversized length, or checksum mismatch — the parent treats the whole
    stream (and the worker behind it) as failed; trials whose results
    were lost behind the corruption are requeued and re-executed.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Buffer *data*; return every complete, verified payload."""
        self._buffer.extend(data)
        frames: list[bytes] = []
        while len(self._buffer) >= _FRAME_HEADER.size:
            magic, length, crc = _FRAME_HEADER.unpack_from(self._buffer, 0)
            if magic != _FRAME_MAGIC:
                raise PoolProtocolError(f"bad frame magic {magic!r}")
            if length > _FRAME_LIMIT:
                raise PoolProtocolError(
                    f"frame length {length} exceeds limit {_FRAME_LIMIT}"
                )
            end = _FRAME_HEADER.size + length
            if len(self._buffer) < end:
                break
            payload = bytes(self._buffer[_FRAME_HEADER.size:end])
            if zlib.crc32(payload) & 0xFFFFFFFF != crc:
                raise PoolProtocolError(
                    f"frame checksum mismatch over {length} byte(s)"
                )
            del self._buffer[:end]
            frames.append(payload)
        return frames


class ShmRing:
    """Single-producer single-consumer byte ring in shared memory.

    Layout: a 16-byte header (absolute ``head`` and ``tail`` u64
    counters, guarded by *lock* against torn 8-byte accesses) followed
    by ``capacity`` data bytes.  The writer blocks in small sleeps when
    the ring is full — records larger than the free space (or even the
    whole capacity) stream through in chunks — and can bail out via
    *should_abort* if the reader vanishes.  The creating side owns (and
    unlinks) the segment; attachers never do (see
    :func:`~repro.experiments.supervisor._open_shared_memory`).
    """

    def __init__(
        self,
        shm: Any,
        lock: Any,
        capacity: int,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.lock = lock
        self.capacity = capacity
        self._owner = owner
        self._closed = False

    @classmethod
    def create(cls, lock: Any, capacity: int) -> "ShmRing":
        """Parent-side: allocate a fresh ring segment."""
        shm = _open_shared_memory(None, create=True, size=_RING_HEADER + capacity)
        shm.buf[:_RING_HEADER] = b"\x00" * _RING_HEADER
        return cls(shm, lock, capacity, owner=True)

    @classmethod
    def attach(cls, name: str, lock: Any, capacity: int) -> "ShmRing":
        """Worker-side: attach to the parent's segment by name."""
        return cls(
            _open_shared_memory(name, create=False), lock, capacity, owner=False
        )

    @property
    def name(self) -> str:
        """Segment name a worker attaches to."""
        return self._shm.name

    def _counters(self) -> tuple[int, int]:
        with self.lock:
            head = _U64.unpack_from(self._shm.buf, 0)[0]
            tail = _U64.unpack_from(self._shm.buf, 8)[0]
        return head, tail

    def write(
        self, data: bytes, should_abort: Callable[[], bool] | None = None
    ) -> None:
        """Append *data*, blocking (in chunks) while the ring is full."""
        if self._closed:
            raise PoolProtocolError("write on a closed ring")
        view = memoryview(data)
        offset = 0
        waits = 0
        while offset < len(view):
            head, tail = self._counters()
            free = self.capacity - (head - tail)
            if free <= 0:
                time.sleep(0.001)
                waits += 1
                if (
                    should_abort is not None
                    and waits % 100 == 0
                    and should_abort()
                ):
                    raise PoolProtocolError(
                        "ring reader vanished while the writer was blocked"
                    )
                continue
            chunk = min(free, len(view) - offset)
            pos = head % self.capacity
            first = min(chunk, self.capacity - pos)
            base = _RING_HEADER
            self._shm.buf[base + pos:base + pos + first] = view[
                offset:offset + first
            ]
            if chunk > first:
                self._shm.buf[base:base + chunk - first] = view[
                    offset + first:offset + chunk
                ]
            with self.lock:
                _U64.pack_into(self._shm.buf, 0, head + chunk)
            offset += chunk

    def read(self, max_bytes: int = 1 << 16) -> bytes:
        """Up to *max_bytes* of pending stream, ``b""`` when empty."""
        if self._closed:
            raise PoolProtocolError("read on a closed ring")
        head, tail = self._counters()
        available = head - tail
        if available > self.capacity or available < 0:
            raise PoolProtocolError(
                f"ring header corrupt: head={head} tail={tail} "
                f"capacity={self.capacity}"
            )
        if available == 0:
            return b""
        chunk = min(available, max_bytes)
        pos = tail % self.capacity
        first = min(chunk, self.capacity - pos)
        base = _RING_HEADER
        data = bytes(self._shm.buf[base + pos:base + pos + first])
        if chunk > first:
            data += bytes(self._shm.buf[base:base + chunk - first])
        with self.lock:
            _U64.pack_into(self._shm.buf, 8, tail + chunk)
        return data

    def close(self) -> None:
        """Release the mapping; the owner also unlinks the segment."""
        if self._closed:
            return
        self._closed = True
        self._shm.close()
        if self._owner:
            _retrack(self._shm)
            try:
                self._shm.unlink()
            except FileNotFoundError:
                pass

    def __enter__(self) -> "ShmRing":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class _WorkerRun:
    """Worker-local state for one accepted ``run`` command."""

    def __init__(
        self,
        run_id: int,
        plan: ExperimentPlan,
        injector: Any,
        circuit: CircuitBreaker,
        catch: tuple[type[Exception], ...],
    ) -> None:
        self.run_id = run_id
        self.plan = plan
        self.injector = injector
        self.circuit = circuit
        self.catch = catch
        # Delta markers so each shard-done reports only its own breaker
        # activity (the worker-level circuit spans shards of one run).
        self.events_sent = 0
        self.skipped_sent = 0

    def shard_summary(self, guarded: Any) -> dict[str, Any]:
        events = self.circuit.events[self.events_sent:]
        self.events_sent = len(self.circuit.events)
        skipped = self.circuit.skipped - self.skipped_sent
        self.skipped_sent = self.circuit.skipped
        return {
            "stop_reason": guarded.stop_reason if guarded is not None else "",
            "stop_skipped": guarded.skipped if guarded is not None else 0,
            "breaker_skipped": skipped,
            "breaker_events": list(events),
            "breaker_state": self.circuit.state.value,
        }


def _worker_begin_run(
    command: tuple,
    plans: dict[str, ExperimentPlan],
    worker_id: int,
    workers: int,
    send: Callable[..., None],
) -> "_WorkerRun | None":
    """Handle a ``run`` command: (re)build the plan, arm the injector."""
    _, run_id, fingerprint, source_blob, expected_hash, breaker, catch = command
    try:
        plan = plans.get(fingerprint)
        reused = plan is not None
        if plan is None:
            source = pickle.loads(source_blob)
            plan = source()
            plans[fingerprint] = plan
        if plan.hash != expected_hash:
            raise ConfigurationError(
                f"plan source is not deterministic: pool worker {worker_id} "
                f"rebuilt config hash {plan.hash[:12]}…, parent expected "
                f"{expected_hash[:12]}… — shard results cannot be merged "
                "safely"
            )
        injector = (
            plan.fault_plan.build_injector()
            if plan.fault_plan is not None
            else None
        )
        if injector is not None:
            for site in POOL_SITES:
                injector.register_site(site, f"pool-worker-{worker_id}")
        _parallel_mod._WORKER_CONTEXT = WorkerContext(
            worker_id=worker_id, workers=workers, fault_injector=injector
        )
        run = _WorkerRun(
            run_id=run_id,
            plan=plan,
            injector=injector,
            circuit=CircuitBreaker(breaker),
            catch=catch,
        )
        send((_MSG_RUN_READY, worker_id, run_id, plan.hash, reused))
        return run
    # Setup can fail in arbitrary user plan code; the parent decides
    # what the failure means for the run.
    except Exception as exc:  # repro-lint: ignore[EXC001]
        send((_MSG_RUN_ERROR, worker_id, run_id, type(exc).__name__, str(exc)))
        return None


def _worker_run_shard(
    command: tuple,
    run: "_WorkerRun | None",
    worker_id: int,
    board: HeartbeatBoard,
    stop_event: Any,
    config: PoolConfig,
    send: Callable[..., None],
) -> None:
    """Handle a ``shard`` command: execute the assigned trial indices."""
    _, run_id, shard_id, indices, suppressed_list = command
    if run is None or run.run_id != run_id:
        send(
            (
                _MSG_RUN_ERROR,
                worker_id,
                run_id,
                "PoolError",
                f"shard {shard_id} arrived before run setup",
            )
        )
        return
    plan, injector = run.plan, run.injector
    suppressed = set(suppressed_list)
    pending_corrupt: set[int] = set()

    def pool_chaos(index: int) -> None:
        """The pool fault sites, fired (and acknowledged at the fire
        point — effect application is immediate and self-evident) inside
        the trial's guard-audit window.  Trials already struck once are
        dispatched with chaos suppressed (the quarantine discipline)."""
        if injector is None or index in suppressed:
            return
        event = injector.fire(
            FaultSite.POOL_WORKER_CRASH, timestamp=index, address=index
        )
        if event is not None:
            injector.acknowledge(event, "pool-worker-killed")
            os.kill(os.getpid(), signal.SIGKILL)
        event = injector.fire(
            FaultSite.POOL_WORKER_STALL, timestamp=index, address=index
        )
        if event is not None:
            injector.acknowledge(event, "pool-worker-stalled")
            stall_s = config.stall_cap_s
            if event.magnitude_cycles:
                stall_s = min(event.magnitude_cycles / 1e6, stall_s)
            deadline = monotonic_clock() + stall_s
            while monotonic_clock() < deadline:
                # Deliberately no heartbeat: a stalled worker goes
                # silent, which is exactly what the parent detects.
                time.sleep(0.05)
        event = injector.fire(
            FaultSite.POOL_RESULT_CORRUPT, timestamp=index, address=index
        )
        if event is not None:
            injector.acknowledge(event, "pool-result-corrupted")
            pending_corrupt.add(index)

    def make_trial(index: int) -> Callable[[], Any]:
        fn = plan.trials[index].fn

        def wrapped() -> Any:
            pool_chaos(index)
            return fn()

        return wrapped

    def stop() -> str | None:
        return STOP_PARALLEL if stop_event.is_set() else None

    def skip_trial(local: int) -> str | None:
        index = indices[local]
        board.beat(worker_id, trial=index, shard=shard_id)
        return run.circuit.gate(index)

    def on_trial_end(
        local: int, result: Any, failure: TrialFailure | None, elapsed_s: float
    ) -> None:
        index = indices[local]
        key = plan.trials[index].key
        run.circuit.record(index, failure is None)
        if failure is None:
            message = (
                _MSG_TRIAL, worker_id, run_id, index, key, True,
                result, None, None, elapsed_s,
            )
        else:
            message = (
                _MSG_TRIAL, worker_id, run_id, index, key, False, None,
                type(failure.error).__name__, str(failure.error), elapsed_s,
            )
        send(message, corrupt=index in pending_corrupt)
        pending_corrupt.discard(index)
        board.beat(worker_id, trial=-1, shard=shard_id)

    try:
        guarded = run_guarded_trials(
            [make_trial(index) for index in indices],
            catch=run.catch,
            min_successes=0,  # the floor is enforced over merged results
            label=f"{plan.name}[pool shard {shard_id}]",
            skip_trial=skip_trial,
            stop=stop,
            on_trial_end=on_trial_end,
            fault_injector=injector,
        )
    except InvariantViolation as exc:
        try:
            payload: bytes | None = pickle.dumps(exc, protocol=4)
        except (pickle.PicklingError, TypeError, AttributeError, ValueError):
            payload = None
        send(
            (
                _MSG_INVARIANT, worker_id, run_id, payload, {
                    "message": str(exc),
                    "invariant": exc.invariant,
                    "seed": exc.seed,
                    "repro": exc.repro,
                },
            )
        )
        send((_MSG_SHARD_DONE, worker_id, run_id, shard_id,
              run.shard_summary(None)))
    except KeyboardInterrupt:
        send((_MSG_INTERRUPTED, worker_id, run_id))
        send((_MSG_SHARD_DONE, worker_id, run_id, shard_id,
              run.shard_summary(None)))
    else:
        send((_MSG_SHARD_DONE, worker_id, run_id, shard_id,
              run.shard_summary(guarded)))


def _pool_worker_main(
    worker_id: int,
    workers: int,
    conn: Any,
    ring_name: str,
    ring_lock: Any,
    ring_capacity: int,
    board_name: str,
    board_slots: int,
    stop_event: Any,
    config: PoolConfig,
) -> None:
    """The persistent worker: a command loop that outlives runs.

    Commands arrive on *conn* (``run`` / ``shard`` / ``exit``); every
    reply streams back over the shared-memory ring.  The worker beats
    its heartbeat slot when idle and between trials, exits when the
    parent disappears, and reports any non-contained exception as a
    crash before dying — the parent never waits on a silent worker.
    """
    parent_pid = os.getppid()

    def parent_gone() -> bool:
        return os.getppid() != parent_pid

    with contextlib.ExitStack() as stack:
        ring = stack.enter_context(
            ShmRing.attach(ring_name, ring_lock, ring_capacity)
        )
        board = stack.enter_context(
            HeartbeatBoard.attach(board_name, board_slots)
        )
        stack.callback(conn.close)

        def send(message: tuple, corrupt: bool = False) -> None:
            blob = pickle.dumps(message, protocol=4)
            ring.write(
                _encode_frame(blob, corrupt=corrupt), should_abort=parent_gone
            )

        plans: dict[str, ExperimentPlan] = {}
        run: _WorkerRun | None = None
        while True:
            try:
                board.beat(worker_id)
                if parent_gone():
                    return
                if not conn.poll(0.05):
                    continue
                try:
                    command = conn.recv()
                except (EOFError, OSError):
                    return
                verb = command[0]
                if verb == "exit":
                    return
                if verb == "run":
                    run = _worker_begin_run(
                        command, plans, worker_id, workers, send
                    )
                elif verb == "shard":
                    _worker_run_shard(
                        command, run, worker_id, board, stop_event, config,
                        send,
                    )
            except KeyboardInterrupt:
                # Terminal SIGINT reaches the whole process group; report
                # and stay alive — the pool survives an aborted run.
                try:
                    rid = run.run_id if run is not None else 0
                    send((_MSG_INTERRUPTED, worker_id, rid))
                except BaseException:  # repro-lint: ignore[EXC001]
                    return
            # Last line of defense: ANY other escape must reach the
            # parent as a crash report, or supervision would wait on a
            # silent worker until the hang deadline.
            except BaseException:  # repro-lint: ignore[EXC001]
                try:
                    send((_MSG_CRASHED, worker_id, traceback.format_exc()))
                except BaseException:  # repro-lint: ignore[EXC001]
                    pass
                return


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _Shard:
    """One unit of dispatched work and what came back from it."""

    __slots__ = ("shard_id", "indices", "received")

    def __init__(self, shard_id: int, indices: list[int]) -> None:
        self.shard_id = shard_id
        self.indices = list(indices)
        self.received: set[int] = set()

    def unfinished(self) -> list[int]:
        return [i for i in self.indices if i not in self.received]


class _Member:
    """Parent-side bookkeeping for one pool worker slot."""

    def __init__(self, worker_id: int, backoff: RespawnBackoff) -> None:
        self.worker_id = worker_id
        self.backoff = backoff
        self.process: Any = None
        self.conn: Any = None
        self.ring: ShmRing | None = None
        self.assembler: FrameAssembler | None = None
        self.state: WorkerState | None = None
        self.run_ready = False
        self.shard: _Shard | None = None
        self.spawn_started = 0.0
        self.respawn_due = 0.0
        self.last_counter = -1
        self.last_progress = 0.0

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """A supervised, persistent pool of experiment workers.

    Build one (or use the :func:`get_pool` registry) and call
    :meth:`run` repeatedly — workers, their interpreters, and their
    rebuilt plans survive across runs.  :meth:`close` (idempotent, also
    wired to ``atexit`` via :func:`shutdown_pools`) tears everything
    down; shared-memory segments are ExitStack-managed so they are
    released even on an exception mid-``__init__`` consumer.
    """

    def __init__(self, workers: int, config: PoolConfig | None = None) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.config = config or PoolConfig()
        self.cost_model = CostModel()
        # Long-lived interpreters must agree on hash() with any spawn
        # executor children and with the parent.
        os.environ.setdefault("PYTHONHASHSEED", _PINNED_HASH_SEED)
        try:
            self._ctx = multiprocessing.get_context("forkserver")
        except ValueError:  # pragma: no cover - platform without forkserver
            self._ctx = multiprocessing.get_context("spawn")
        self._stack = contextlib.ExitStack()
        self._board = self._stack.enter_context(HeartbeatBoard(workers))
        self._stop_event = self._ctx.Event()
        self._members = [
            _Member(
                worker_id,
                RespawnBackoff(
                    base_s=self.config.respawn_base_s,
                    cap_s=self.config.respawn_cap_s,
                ),
            )
            for worker_id in range(workers)
        ]
        self._run_seq = 0
        self.broken = False
        self.broken_reason = ""
        self.closed = False
        self.stats: dict[str, int] = {
            "runs": 0,
            "respawns": 0,
            "plan_reuses": 0,
            "degraded": 0,
            "poisoned": 0,
        }

    # -- lifecycle ------------------------------------------------------
    @property
    def warm(self) -> bool:
        """Whether any worker process is already alive (startup paid)."""
        return any(member.alive for member in self._members)

    def close(self) -> None:
        """Stop workers, release shared memory.  Idempotent."""
        if self.closed:
            return
        self.closed = True
        self._stop_event.set()
        for member in self._members:
            if member.conn is not None:
                try:
                    member.conn.send(("exit",))
                except (OSError, ValueError):
                    pass
        for member in self._members:
            process = member.process
            if process is not None and process.is_alive():
                process.join(timeout=1.0)
                if process.is_alive():
                    process.kill()
                    process.join(timeout=5.0)
            self._release_member(member)
            member.state = WorkerState.RETIRED
        self._stack.close()

    def _release_member(self, member: _Member) -> None:
        """Close a member's IPC handles (the process is handled by the
        caller) and reset its slots for a future spawn."""
        if member.conn is not None:
            try:
                member.conn.close()
            except OSError:  # pragma: no cover - already torn down
                pass
        if member.ring is not None:
            member.ring.close()
        member.process = None
        member.conn = None
        member.ring = None
        member.assembler = None
        member.run_ready = False
        member.shard = None

    # -- the run --------------------------------------------------------
    def run(
        self,
        plan: ExperimentPlan,
        *,
        plan_source: Callable[[], ExperimentPlan] | None = None,
        shard_strategy: str = "interleave",
        run_dir: str | Path | None = None,
        resume: bool = False,
        deadline_s: float | None = None,
        breaker: BreakerConfig | None = None,
        catch: tuple[type[Exception], ...] = (ReproError,),
        force: bool = False,
    ) -> RunOutcome:
        """Execute *plan* on the pool (or inline, when that's smarter).

        Same supervision surface and :class:`RunOutcome` contract as
        :func:`~repro.experiments.runner.run_experiment`; *force* skips
        the cost-model degradation decision (``executor="pool"``).
        """
        if self.closed:
            raise PoolError("worker pool is closed")
        if shard_strategy not in SHARD_STRATEGIES:
            raise ConfigurationError(
                f"unknown shard strategy {shard_strategy!r}; "
                f"choose from {sorted(SHARD_STRATEGIES)}"
            )
        source = _coerce_plan_source(plan, plan_source)
        started = monotonic_clock()
        journal: CheckpointJournal | None = None
        manifest: RunManifest | None = None
        resumed_results: dict[str, Any] = {}
        resumed_failed: set[str] = set()
        if run_dir is not None:
            run_dir = Path(run_dir)
            manifest, journal, resumed_results, resumed_failed = (
                prepare_checkpoint(plan, run_dir, resume)
            )

        pending = [
            index
            for index, spec in enumerate(plan.trials)
            if spec.key not in resumed_results
            and spec.key not in resumed_failed
        ]

        watchdog = Watchdog(deadline_s)
        checker = PoolStateChecker(len(plan.trials))
        ledger = PoisonLedger(self.config.poison_threshold)
        live_results: dict[str, Any] = {}
        live_failures: list[tuple[int, str, str]] = []
        failed_keys: set[str] = set()
        breaker_events: list[dict[str, Any]] = []
        breaker_state = "closed"
        breaker_skips = 0
        stop_skips = 0
        abort_status: str | None = None
        abort_error: Exception | None = None
        config_error: Exception | None = None
        longest_trial_s = 0.0
        degrade_reason: str | None = None
        pool_events: list[dict[str, Any]] = []
        respawns_this_run = 0
        reuses_before = self.stats["plan_reuses"]

        def _finish(
            status: str, result: Any = None, error: Exception | None = None
        ) -> RunOutcome:
            merged = _ordered_successes(plan, resumed_results, live_results)
            # Serial parity: abandoned-on-stop trials count as skipped
            # only for a deadline stop.
            skipped = breaker_skips + (
                stop_skips if status == STATUS_DEADLINE else 0
            )
            outcome = RunOutcome(
                plan=plan,
                status=status,
                result=result,
                error=error,
                run_dir=run_dir if run_dir is None else Path(run_dir),
                manifest=manifest,
                completed=len(merged),
                failed=len(live_failures) + len(resumed_failed),
                resumed=len(resumed_results),
                skipped=skipped,
                breaker_events=list(breaker_events),
                elapsed_s=monotonic_clock() - started,
                pool={
                    "workers": self.workers,
                    "mode": DEGRADED_SERIAL if degrade_reason else "pool",
                    "degraded": degrade_reason,
                    "respawns": respawns_this_run,
                    "plan_reuses": self.stats["plan_reuses"] - reuses_before,
                    "poisoned": list(ledger.poisoned),
                    "events": list(pool_events),
                },
            )
            if manifest is not None:
                manifest.status = status
                manifest.completed = outcome.completed
                manifest.failed = outcome.failed
                manifest.resumed = outcome.resumed
                manifest.skipped = outcome.skipped
                manifest.exit_code = outcome.exit_code
                manifest.breaker_events = list(breaker_events)
                manifest.breaker_state = breaker_state
                manifest.poisoned = list(ledger.poisoned)
                manifest.save(run_dir)
            return outcome

        def _terminal_finish() -> RunOutcome:
            merged = _ordered_successes(plan, resumed_results, live_results)
            accounted = (
                len(merged) + len(live_failures) + len(resumed_failed)
            )
            try:
                checker.final_audit(accounted, breaker_skips)
            except InvariantViolation as exc:
                return _finish(STATUS_INVARIANT, error=exc)
            if ledger.poisoned:
                reasons = "; ".join(
                    f"{key} ({ledger.reasons[key][-1]})"
                    for key in ledger.poisoned
                )
                error: Exception = PoolError(
                    f"{plan.name}: {len(ledger.poisoned)} trial(s) "
                    f"quarantined after repeatedly killing pool workers: "
                    f"{reasons}"
                )
                return _finish(STATUS_POISONED, error=error)
            if len(merged) < plan.min_successes:
                error = insufficient_error(
                    plan,
                    successes=len(merged),
                    failures=sorted(live_failures),
                    failed_total=len(live_failures) + len(resumed_failed),
                    skipped=breaker_skips,
                )
                return _finish(STATUS_INSUFFICIENT, error=error)
            status, result, error2 = resolve_finalize(plan, merged)
            return _finish(status, result=result, error=error2)

        def _run_inline(reason: str) -> RunOutcome:
            """The graceful-degradation path: the remaining trials run in
            the parent on the same journal/manifest — the serial loop,
            so the artifact is byte-identical to a serial run's."""
            nonlocal degrade_reason, stop_skips, breaker_skips, breaker_state
            degrade_reason = reason
            self.stats["degraded"] += 1
            remaining = [
                index
                for index in pending
                if plan.trials[index].key not in live_results
                and plan.trials[index].key not in failed_keys
                and not ledger.is_poisoned(plan.trials[index].key)
            ]
            checker.note_dispatch(_INLINE_WORKER, remaining)
            injector = (
                plan.fault_plan.build_injector()
                if plan.fault_plan is not None
                else None
            )
            circuit = CircuitBreaker(breaker)

            def skip_trial(local: int) -> str | None:
                return circuit.gate(remaining[local])

            def on_trial_end(
                local: int,
                result: Any,
                failure: TrialFailure | None,
                elapsed_s: float,
            ) -> None:
                index = remaining[local]
                key = plan.trials[index].key
                watchdog.note_trial(elapsed_s)
                self.cost_model.observe(plan.name, elapsed_s)
                circuit.record(index, failure is None)
                checker.note_result(index, _INLINE_WORKER)
                if failure is None:
                    live_results[key] = result
                    if journal is not None:
                        journal.record_success(
                            index, key, result, elapsed_s=elapsed_s
                        )
                else:
                    live_failures.append(
                        (index, type(failure.error).__name__,
                         str(failure.error))
                    )
                    failed_keys.add(key)
                    if journal is not None:
                        journal.record_failure(
                            index, key, failure.error, elapsed_s=elapsed_s
                        )

            token = _parallel_mod._WORKER_CONTEXT
            _parallel_mod._WORKER_CONTEXT = WorkerContext(
                worker_id=0, workers=1, fault_injector=injector
            )
            inline_status: str | None = None
            inline_error: Exception | None = None
            guarded: Any = None
            try:
                guarded = run_guarded_trials(
                    [plan.trials[index].fn for index in remaining],
                    catch=catch,
                    min_successes=0,
                    label=f"{plan.name}[{DEGRADED_SERIAL}]",
                    skip_trial=skip_trial,
                    stop=watchdog.check,
                    on_trial_end=on_trial_end,
                    fault_injector=injector,
                )
            except KeyboardInterrupt:
                inline_status = STATUS_INTERRUPTED
            except InvariantViolation as exc:
                inline_status = STATUS_INVARIANT
                inline_error = exc
            finally:
                _parallel_mod._WORKER_CONTEXT = token
            breaker_skips += circuit.skipped
            breaker_events.extend(circuit.events)
            if (
                _BREAKER_SEVERITY.get(circuit.state.value, 0)
                > _BREAKER_SEVERITY.get(breaker_state, 0)
            ):
                breaker_state = circuit.state.value
            checker.note_unassign(remaining)
            if inline_status is not None:
                return _finish(inline_status, error=inline_error)
            if guarded is not None and guarded.stop_reason == STOP_DEADLINE:
                stop_skips += guarded.skipped
                return _finish(STATUS_DEADLINE)
            return _terminal_finish()

        def _run_pooled() -> RunOutcome | None:
            """Supervised pooled execution; ``None`` means "degrade to
            inline now" (``degrade_reason`` is set)."""
            nonlocal abort_status, abort_error, config_error, degrade_reason
            nonlocal respawns_this_run, longest_trial_s
            nonlocal stop_skips, breaker_skips, breaker_state
            self._run_seq += 1
            run_id = self._run_seq
            self.stats["runs"] += 1
            if self._stop_event.is_set():
                self._stop_event.clear()
            source_blob = pickle.dumps(source, protocol=4)
            fingerprint = hashlib.sha256(source_blob + plan.hash.encode()).hexdigest()
            run_cmd = (
                "run", run_id, fingerprint, source_blob, plan.hash, breaker,
                catch,
            )
            shard_count = max(
                1,
                min(len(pending), self.workers * self.config.shards_per_worker),
            )
            queue: collections.deque[_Shard] = collections.deque(
                _Shard(shard_id, chunk)
                for shard_id, chunk in enumerate(
                    chunk
                    for chunk in SHARD_STRATEGIES[shard_strategy](
                        pending, shard_count
                    )
                    if chunk
                )
            )
            next_shard_id = len(queue)
            suppressed: set[int] = set()
            active = self._members[:max(1, min(self.workers, len(queue)))]
            drain_deadline: float | None = None
            abort_latch_count = 0

            def _send(member: _Member, command: tuple) -> bool:
                try:
                    member.conn.send(command)
                    return True
                except (OSError, ValueError, BrokenPipeError):
                    return False

            def _spawn(member: _Member) -> None:
                self._board.reset(member.worker_id)
                ring = self._stack.enter_context(
                    ShmRing.create(self._ctx.Lock(), self.config.ring_bytes)
                )
                parent_conn, child_conn = self._ctx.Pipe()
                process = self._ctx.Process(
                    target=_pool_worker_main,
                    args=(
                        member.worker_id, self.workers, child_conn,
                        ring.name, ring.lock, ring.capacity,
                        self._board.name, self.workers,
                        self._stop_event, self.config,
                    ),
                    daemon=True,
                    name=f"repro-pool-{member.worker_id}",
                )
                process.start()
                child_conn.close()
                member.process = process
                member.conn = parent_conn
                member.ring = ring
                member.assembler = FrameAssembler()
                member.run_ready = False
                member.state = WorkerState.SPAWNING
                checker.note_worker(
                    member.worker_id, WorkerState.SPAWNING.value, "spawn"
                )
                member.spawn_started = monotonic_clock()
                member.last_counter = -1
                member.last_progress = member.spawn_started
                if not _send(member, run_cmd):
                    _fail(member, "pipe closed at spawn")

            def _arm(member: _Member) -> None:
                """Reuse a warm worker for this run: discard any stale
                stream bytes from a previous aborted run, re-announce."""
                try:
                    while member.ring.read():
                        pass
                except PoolProtocolError:
                    _fail(member, "stale ring unreadable at re-arm")
                    return
                member.assembler = FrameAssembler()
                self._board.reset(member.worker_id)
                member.run_ready = False
                member.state = WorkerState.SPAWNING
                checker.note_worker(
                    member.worker_id, WorkerState.SPAWNING.value, "re-arm"
                )
                member.spawn_started = monotonic_clock()
                member.last_counter = -1
                member.last_progress = member.spawn_started
                if not _send(member, run_cmd):
                    _fail(member, "pipe closed at re-arm")

            def _fail(member: _Member, reason: str) -> None:
                """Kill and (eventually) respawn a failed worker; blame,
                strike, and requeue its unacknowledged trials."""
                nonlocal respawns_this_run, next_shard_id
                heartbeat = self._board.read(member.worker_id)
                blamed_key: str | None = None
                shard = member.shard
                if shard is not None:
                    remaining = shard.unfinished()
                    checker.note_unassign(remaining)
                    blame: int | None = None
                    if (
                        heartbeat.shard == shard.shard_id
                        and heartbeat.trial in remaining
                    ):
                        blame = heartbeat.trial
                    elif remaining:
                        blame = remaining[0]
                    if blame is not None:
                        blamed_key = plan.trials[blame].key
                        suppressed.add(blame)
                        if ledger.strike(blamed_key, reason):
                            checker.note_poison(blame)
                            self.stats["poisoned"] += 1
                            remaining = [i for i in remaining if i != blame]
                    if remaining:
                        queue.append(_Shard(next_shard_id, remaining))
                        next_shard_id += 1
                    member.shard = None
                pool_events.append(
                    {
                        "worker": member.worker_id,
                        "reason": reason,
                        "blamed": blamed_key,
                    }
                )
                process = member.process
                if process is not None and process.is_alive():
                    process.kill()
                    process.join(timeout=10.0)
                self._release_member(member)
                member.state = WorkerState.RESPAWNING
                checker.note_worker(
                    member.worker_id, WorkerState.RESPAWNING.value, reason
                )
                member.respawn_due = (
                    monotonic_clock() + member.backoff.next_delay()
                )
                respawns_this_run += 1
                self.stats["respawns"] += 1

            def _handle(member: _Member, message: tuple) -> str | None:
                """Process one worker message; returns a failure reason
                when the message itself condemns the worker."""
                nonlocal abort_status, abort_error, config_error
                nonlocal longest_trial_s, breaker_state, breaker_skips
                nonlocal stop_skips
                tag = message[0]
                if tag == _MSG_TRIAL:
                    (_, wid, rid, index, key, ok, payload,
                     error_type, error_text, elapsed_s) = message
                    if rid != run_id:
                        return None  # stale leftovers of an aborted run
                    if (
                        not 0 <= index < len(plan.trials)
                        or plan.trials[index].key != key
                    ):
                        config_error = ConfigurationError(
                            f"pool worker {wid} returned key {key!r} for "
                            f"trial index {index} — plan source drift"
                        )
                        return None
                    watchdog.note_trial(elapsed_s)
                    longest_trial_s = max(longest_trial_s, elapsed_s)
                    self.cost_model.observe(plan.name, elapsed_s)
                    if member.shard is not None:
                        member.shard.received.add(index)
                    checker.note_result(index, wid)
                    if ok:
                        live_results[key] = payload
                        if journal is not None:
                            journal.record_success(
                                index, key, payload, elapsed_s=elapsed_s
                            )
                    else:
                        live_failures.append((index, error_type, error_text))
                        failed_keys.add(key)
                        if journal is not None:
                            journal.record_failure_info(
                                index, key, error_type, error_text,
                                elapsed_s=elapsed_s,
                            )
                    return None
                if tag == _MSG_RUN_READY:
                    _, wid, rid, plan_hash, reused = message
                    if rid != run_id:
                        return None
                    if plan_hash != plan.hash:
                        config_error = ConfigurationError(
                            f"pool worker {wid} rebuilt config hash "
                            f"{plan_hash[:12]}…, parent expected "
                            f"{plan.hash[:12]}… — plan source drift"
                        )
                        return None
                    member.run_ready = True
                    if member.state in (
                        WorkerState.SPAWNING, WorkerState.SUSPECT
                    ):
                        member.state = WorkerState.HEALTHY
                        checker.note_worker(
                            member.worker_id, WorkerState.HEALTHY.value,
                            "run-ready",
                        )
                    if reused:
                        self.stats["plan_reuses"] += 1
                    return None
                if tag == _MSG_RUN_ERROR:
                    _, wid, rid, error_type, error_text = message
                    if rid != run_id:
                        return None
                    config_error = ConfigurationError(
                        f"pool worker {wid} failed run setup: "
                        f"{error_type}: {error_text}"
                    )
                    return None
                if tag == _MSG_SHARD_DONE:
                    _, wid, rid, shard_id, summary = message
                    if rid != run_id:
                        return None
                    shard = member.shard
                    if shard is None or shard.shard_id != shard_id:
                        return None
                    stop_skips += summary["stop_skipped"]
                    breaker_skips += summary["breaker_skipped"]
                    breaker_events.extend(summary["breaker_events"])
                    if (
                        _BREAKER_SEVERITY.get(summary["breaker_state"], 0)
                        > _BREAKER_SEVERITY.get(breaker_state, 0)
                    ):
                        breaker_state = summary["breaker_state"]
                    checker.note_unassign(shard.unfinished())
                    member.shard = None
                    member.backoff.reset()
                    return None
                if tag == _MSG_INVARIANT:
                    _, wid, rid, payload, summary = message
                    if rid != run_id:
                        return None
                    if abort_status != STATUS_INVARIANT:
                        abort_status = STATUS_INVARIANT
                        abort_error = _rebuild_violation(payload, summary)
                    self._stop_event.set()
                    return None
                if tag == _MSG_INTERRUPTED:
                    _, wid, rid = message
                    if rid != run_id:
                        return None
                    if abort_status is None:
                        abort_status = STATUS_INTERRUPTED
                    self._stop_event.set()
                    return None
                if tag == _MSG_CRASHED:
                    return f"worker crashed:\n{message[-1]}"
                raise PoolProtocolError(
                    f"unknown message tag {tag!r} from worker "
                    f"{member.worker_id}"
                )

            def _service(member: _Member) -> None:
                """One supervision pass over one member: drain its ring,
                then judge liveness, heartbeat freshness, and deadlines."""
                now = monotonic_clock()
                if member.state is WorkerState.RESPAWNING:
                    if (
                        abort_status is None
                        and degrade_reason is None
                        and now >= member.respawn_due
                    ):
                        _spawn(member)
                    return
                if member.process is None:
                    return
                fail_reason: str | None = None
                try:
                    while True:
                        data = member.ring.read()
                        if not data:
                            break
                        for payload in member.assembler.feed(data):
                            try:
                                message = pickle.loads(payload)
                            # Framed bytes verified the CRC but may still
                            # be hostile garbage; unpicklable == corrupt.
                            except Exception as exc:  # repro-lint: ignore[EXC001]
                                raise PoolProtocolError(
                                    f"unpicklable frame: {exc}"
                                ) from exc
                            fail_reason = _handle(member, message)
                            if fail_reason or config_error is not None:
                                break
                        if fail_reason or config_error is not None:
                            break
                except PoolProtocolError as exc:
                    fail_reason = f"corrupt result stream: {exc}"
                if config_error is not None:
                    return
                if fail_reason:
                    _fail(member, fail_reason)
                    return
                if not member.process.is_alive():
                    _fail(
                        member,
                        "worker process died "
                        f"(exitcode {member.process.exitcode})",
                    )
                    return
                heartbeat = self._board.read(member.worker_id)
                if heartbeat.counter != member.last_counter:
                    member.last_counter = heartbeat.counter
                    member.last_progress = now
                    if member.state is WorkerState.SUSPECT:
                        member.state = WorkerState.HEALTHY
                        checker.note_worker(
                            member.worker_id, WorkerState.HEALTHY.value,
                            "heartbeat resumed",
                        )
                if member.state is WorkerState.SPAWNING:
                    if now - member.spawn_started > self.config.spawn_timeout_s:
                        _fail(
                            member,
                            f"spawn timeout after "
                            f"{self.config.spawn_timeout_s:g}s",
                        )
                    return
                if member.shard is not None:
                    stale_s = now - member.last_progress
                    if (
                        stale_s > self.config.hang_suspect_s
                        and member.state is WorkerState.HEALTHY
                    ):
                        member.state = WorkerState.SUSPECT
                        checker.note_worker(
                            member.worker_id, WorkerState.SUSPECT.value,
                            f"heartbeat stale {stale_s:.1f}s",
                        )
                    if stale_s > self.config.hang_deadline_s(longest_trial_s):
                        _fail(
                            member,
                            f"hung: heartbeat stale {stale_s:.1f}s past "
                            "the hang deadline",
                        )

            def _teardown(kill_busy_only: bool) -> None:
                """End-of-run cleanup.  With *kill_busy_only* the warm
                idle workers survive for the next run; members still
                holding a shard are killed (their late messages must
                never reach a future run's journal)."""
                for member in active:
                    if member.shard is not None:
                        checker.note_unassign(member.shard.unfinished())
                        member.shard = None
                        kill = True
                    else:
                        kill = not kill_busy_only
                    if kill and member.process is not None:
                        if member.process.is_alive():
                            member.process.kill()
                            member.process.join(timeout=10.0)
                        self._release_member(member)
                        member.state = None

            with interrupt_shield() as latch:
                try:
                    for member in active:
                        if member.alive:
                            _arm(member)
                        else:
                            _spawn(member)
                except InvariantViolation as exc:
                    abort_status = STATUS_INVARIANT
                    abort_error = exc
                    self._stop_event.set()
                while True:
                    try:
                        for member in active:
                            _service(member)
                            if config_error is not None:
                                break
                    except InvariantViolation as exc:
                        # The pool-state checker itself tripped: the
                        # bookkeeping is untrusted, stop everything.
                        if abort_status != STATUS_INVARIANT:
                            abort_status = STATUS_INVARIANT
                            abort_error = exc
                        self._stop_event.set()
                    if config_error is not None:
                        break
                    if abort_status is None:
                        if latch.interrupted:
                            abort_status = STATUS_INTERRUPTED
                            self._stop_event.set()
                        elif watchdog.check() == STOP_DEADLINE:
                            abort_status = STATUS_DEADLINE
                            self._stop_event.set()
                    if (
                        abort_status is None
                        and degrade_reason is None
                        and respawns_this_run > self.config.respawn_budget
                    ):
                        degrade_reason = (
                            f"respawn budget exhausted ({respawns_this_run} "
                            f"respawns > {self.config.respawn_budget}); "
                            "degrading to the inline serial loop"
                        )
                        self.broken = True
                        self.broken_reason = degrade_reason
                        break
                    if abort_status is None:
                        try:
                            for member in active:
                                if (
                                    member.state is WorkerState.HEALTHY
                                    and member.run_ready
                                    and member.shard is None
                                    and queue
                                ):
                                    shard = queue.popleft()
                                    if _send(
                                        member,
                                        (
                                            "shard", run_id, shard.shard_id,
                                            list(shard.indices),
                                            sorted(suppressed),
                                        ),
                                    ):
                                        member.shard = shard
                                        checker.note_dispatch(
                                            member.worker_id, shard.indices
                                        )
                                    else:
                                        queue.appendleft(shard)
                                        _fail(
                                            member, "pipe closed at dispatch"
                                        )
                        except InvariantViolation as exc:
                            abort_status = STATUS_INVARIANT
                            abort_error = exc
                            self._stop_event.set()
                            continue
                        if not queue and all(
                            member.shard is None for member in active
                        ):
                            break
                    else:
                        if drain_deadline is None:
                            drain_deadline = (
                                monotonic_clock() + self.config.drain_s
                            )
                            abort_latch_count = latch.count
                        busy = [m for m in active if m.shard is not None]
                        if not busy:
                            break
                        if (
                            monotonic_clock() > drain_deadline
                            or latch.count > abort_latch_count
                        ):
                            break
                    time.sleep(_POLL_S)

                if config_error is not None:
                    _teardown(kill_busy_only=False)
                    raise config_error
                if degrade_reason is not None:
                    _teardown(kill_busy_only=False)
                    return None
                if abort_status == STATUS_DEADLINE:
                    # Serial parity: everything the stop event kept from
                    # running counts as deadline-skipped, including
                    # shards never dispatched and shards cut off by the
                    # drain deadline.
                    leftover = sum(
                        len(shard.unfinished()) for shard in queue
                    )
                    leftover += sum(
                        len(member.shard.unfinished())
                        for member in active
                        if member.shard is not None
                    )
                    stop_skips += leftover
                _teardown(kill_busy_only=abort_status is None)
                if abort_status == STATUS_INVARIANT:
                    return _finish(STATUS_INVARIANT, error=abort_error)
                if abort_status == STATUS_INTERRUPTED:
                    return _finish(STATUS_INTERRUPTED)
                if abort_status == STATUS_DEADLINE:
                    return _finish(STATUS_DEADLINE)
                return _terminal_finish()

        with sigterm_as_interrupt():
            if not pending:
                return _terminal_finish()
            if not force:
                if self.broken:
                    return _run_inline(
                        f"pool marked broken: {self.broken_reason}"
                    )
                pays, reason = self.cost_model.parallel_pays(
                    plan.name,
                    len(pending),
                    self.workers,
                    os.cpu_count() or 1,
                    self.warm,
                )
                if not pays:
                    return _run_inline(reason)
            outcome = _run_pooled()
            if outcome is not None:
                return outcome
            return _run_inline(degrade_reason or "pool failure")


# ----------------------------------------------------------------------
# The process-wide pool registry
# ----------------------------------------------------------------------
_POOLS: dict[int, WorkerPool] = {}


def get_pool(workers: int, config: PoolConfig | None = None) -> WorkerPool:
    """The process-wide persistent pool for *workers* slots.

    Reuses a live pool when the requested configuration matches (or is
    unspecified); a mismatched configuration closes and replaces it.
    """
    pool = _POOLS.get(workers)
    if pool is not None and not pool.closed:
        if config is None or config == pool.config:
            return pool
        pool.close()
    pool = WorkerPool(workers, config=config)
    _POOLS[workers] = pool
    return pool


def shutdown_pools() -> None:
    """Close every registry pool (wired to ``atexit``; also what a test
    calls to simulate a pool restart between runs)."""
    for pool in list(_POOLS.values()):
        pool.close()
    _POOLS.clear()


atexit.register(shutdown_pools)


def run_pool_experiment(
    plan: ExperimentPlan | None = None,
    *,
    plan_source: Callable[[], ExperimentPlan] | None = None,
    workers: int = 2,
    shard_strategy: str = "interleave",
    run_dir: str | Path | None = None,
    resume: bool = False,
    deadline_s: float | None = None,
    breaker: BreakerConfig | None = None,
    catch: tuple[type[Exception], ...] = (ReproError,),
    executor: str = "auto",
    config: PoolConfig | None = None,
) -> RunOutcome:
    """Execute *plan* on the process-wide persistent pool.

    The pool-executor twin of
    :func:`~repro.experiments.parallel.run_parallel_experiment`; prefer
    ``run_experiment(..., workers=N, executor="auto"|"pool")``, which
    delegates here.  ``executor="pool"`` forces pooled execution even
    when the cost model would degrade to the inline serial loop.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if plan is None:
        if plan_source is None:
            raise ValueError(
                "run_pool_experiment needs a plan or a plan_source"
            )
        plan = plan_source()
    pool = get_pool(workers, config=config)
    return pool.run(
        plan,
        plan_source=plan_source,
        shard_strategy=shard_strategy,
        run_dir=run_dir,
        resume=resume,
        deadline_s=deadline_s,
        breaker=breaker,
        catch=catch,
        force=(executor == "pool"),
    )
