"""Supervised, crash-safe, resumable experiment execution.

Every experiment module exposes a ``trial_plan(**kwargs)`` hook that
enumerates its work as independent, deterministic trials plus a
``finalize`` step that assembles the module's result object.  This
module executes such a plan under supervision:

* **Checkpointing** — with a run directory, every finished trial is
  journaled (pickled payload + JSONL record, all atomic) before the next
  trial starts; :func:`run_experiment` with ``resume=True`` replays the
  journal, validates the manifest's config hash, skips completed trials,
  and continues.  Because each trial derives its randomness only from
  the run seed and its own key (never from execution order), a resumed
  run produces results identical to an uninterrupted one.
* **Watchdog** — a soft wall-clock deadline: when the remaining budget
  drops below the longest trial seen so far, the run checkpoints and
  stops cleanly with :data:`EXIT_DEADLINE` instead of being killed
  mid-trial by an external timeout.
* **Circuit breaker** — after ``failure_threshold`` *consecutive*
  contained failures the breaker opens and trials are skipped for
  ``cooldown_trials``; then one half-open probe trial runs.  Success
  closes the breaker, failure re-opens it.  A persistently broken
  environment thus burns a bounded number of trials and the run degrades
  to a partial-but-valid artifact (still subject to the plan's success
  floor).  Every transition is recorded in the run manifest.

Exit codes (also used by ``python -m repro.experiments``):

====================  =====================================================
:data:`EXIT_OK` (0)            artifact produced
``1``                          unexpected error (programming bug)
``2``                          command-line usage error (argparse)
:data:`EXIT_INSUFFICIENT` (3)  fewer successes than the plan's floor
:data:`EXIT_REPRO` (4)         a :class:`~repro.errors.ReproError` outside
                               trial containment (e.g. during finalize)
:data:`EXIT_CONFIG_MISMATCH` (5)  ``--resume`` config hash mismatch
:data:`EXIT_INVARIANT` (6)     a runtime invariant tripped: model state
                               (or pool bookkeeping) untrusted
:data:`EXIT_POISONED` (8)      the worker pool quarantined poison trials
                               (they repeatedly killed their workers);
                               the rest of the artifact is journaled
:data:`EXIT_OVERLOAD` (9)      the always-on service (``repro.service``)
                               finished degraded: the overload controller
                               opened the admission circuit and the
                               completion floor was missed — offered load
                               exceeded what the fleet could serve
:data:`EXIT_DEADLINE` (75)     soft deadline hit after checkpointing
                               (EX_TEMPFAIL: re-run with ``--resume``)
:data:`EXIT_INTERRUPTED` (130) SIGINT/SIGTERM after checkpointing
                               (re-run with ``--resume``)
====================  =====================================================
"""

from __future__ import annotations

import contextlib
import enum
import hashlib
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Iterator, Sequence

from repro.errors import (
    CheckpointError,
    InsufficientTrialsError,
    InvariantViolation,
    ReproError,
    ResumeMismatchError,
)
from repro.experiments.checkpoint import (
    STATUS_COMPLETED,
    STATUS_DEADLINE,
    STATUS_FAILED,
    STATUS_INSUFFICIENT,
    STATUS_INTERRUPTED,
    STATUS_INVARIANT,
    STATUS_POISONED,
    STATUS_RUNNING,
    CheckpointJournal,
    RunManifest,
    config_hash,
    fault_plan_id,
    git_describe,
)
from repro.experiments.guard import TrialFailure, run_guarded_trials

EXIT_OK = 0
EXIT_INSUFFICIENT = 3
EXIT_REPRO = 4
EXIT_CONFIG_MISMATCH = 5
EXIT_INVARIANT = 6  # a runtime invariant tripped: model state untrusted
EXIT_POISONED = 8  # pool quarantined worker-killing trials; rest journaled
EXIT_OVERLOAD = 9  # service finished overloaded: circuit open, floor missed
EXIT_DEADLINE = 75  # EX_TEMPFAIL: partial, resumable
EXIT_INTERRUPTED = 130  # 128 + SIGINT, conventionally

_STATUS_EXIT = {
    STATUS_COMPLETED: EXIT_OK,
    STATUS_INSUFFICIENT: EXIT_INSUFFICIENT,
    STATUS_FAILED: EXIT_REPRO,
    STATUS_INVARIANT: EXIT_INVARIANT,
    STATUS_POISONED: EXIT_POISONED,
    STATUS_DEADLINE: EXIT_DEADLINE,
    STATUS_INTERRUPTED: EXIT_INTERRUPTED,
}

#: ``GuardedRun.stop_reason`` / bypass reasons used by the supervisor.
STOP_DEADLINE = "deadline"
SKIP_RESUMED = "resumed"
SKIP_BREAKER = "breaker-open"


# ----------------------------------------------------------------------
# The sanctioned host clock
# ----------------------------------------------------------------------
# This module is the single place in ``repro`` allowed to read the host
# clock (enforced by the DET002 lint rule): manifests, watchdogs, and
# CLI timing all route through these two helpers, so tests can stamp
# deterministic timestamps by overriding them.
_wall_clock: Callable[[], float] = time.time
_monotonic_clock: Callable[[], float] = time.monotonic


def wall_clock() -> float:
    """Seconds since the epoch, via the injectable host clock."""
    return _wall_clock()


def monotonic_clock() -> float:
    """Monotonic seconds, via the injectable host clock."""
    return _monotonic_clock()


@contextlib.contextmanager
def override_clocks(
    wall: Callable[[], float] | None = None,
    monotonic: Callable[[], float] | None = None,
) -> Iterator[None]:
    """Temporarily replace the host clocks (tests only).

    Everything that stamps wall time (manifest segments, CLI timing) or
    measures elapsed time (watchdog, trial durations) observes the
    override, so a test can produce byte-identical manifests::

        with override_clocks(wall=lambda: 0.0):
            manifest.add_segment("start")   # {"time": 0.0, ...}
    """
    global _wall_clock, _monotonic_clock
    previous = (_wall_clock, _monotonic_clock)
    if wall is not None:
        _wall_clock = wall
    if monotonic is not None:
        _monotonic_clock = monotonic
    try:
        yield
    finally:
        _wall_clock, _monotonic_clock = previous


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TrialSpec:
    """One independent unit of experiment work.

    *key* must be stable across processes (it addresses the checkpoint),
    and *fn* must be deterministic given the plan configuration — its
    randomness may depend on the run seed and the key, never on how many
    trials ran before it.
    """

    key: str
    fn: Callable[[], Any]


@dataclass(frozen=True)
class ExperimentPlan:
    """An experiment decomposed into checkpointable trials.

    *finalize* receives an ordered ``{key: result}`` of the successful
    trials (plan order, failures absent) and builds the module's result
    object; it should raise :class:`InsufficientTrialsError` when the
    surviving trials cannot support a valid artifact.
    """

    name: str
    seed: int
    config: dict[str, Any]
    trials: tuple[TrialSpec, ...]
    finalize: Callable[[dict[str, Any]], Any]
    min_successes: int = 1
    fault_plan: Any = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "trials", tuple(self.trials))
        keys = [t.key for t in self.trials]
        if len(set(keys)) != len(keys):
            dupes = sorted({k for k in keys if keys.count(k) > 1})
            raise ValueError(f"duplicate trial keys in plan {self.name}: {dupes}")

    @property
    def hash(self) -> str:
        """Hash of the configuration (what ``--resume`` validates)."""
        return config_hash(self.config)


def spawn_trial_seed(run_seed: int, key: str) -> int:
    """A per-trial 63-bit seed derived from the run seed and trial key.

    Order-independent by construction: trial RNG streams are identical
    whether the sweep runs uninterrupted or resumes after a crash.
    """
    digest = hashlib.sha256(f"{run_seed}:{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# ----------------------------------------------------------------------
# Supervision: watchdog + circuit breaker
# ----------------------------------------------------------------------
class Watchdog:
    """Soft wall-clock deadline for a trial batch.

    Rather than letting an external timeout SIGKILL the process mid-trial
    (losing the in-flight trial and risking whatever the journal was
    about to write), the watchdog stops the batch while there is still
    time: once the remaining budget is smaller than the longest completed
    trial, the next trial is assumed not to fit.
    """

    def __init__(self, budget_s: float | None) -> None:
        if budget_s is not None and budget_s <= 0:
            raise ValueError(f"deadline must be positive or None, got {budget_s}")
        self.budget_s = budget_s
        self._start = monotonic_clock()
        self._longest_trial_s = 0.0

    def note_trial(self, elapsed_s: float) -> None:
        """Record one trial's duration (sets the stop margin)."""
        self._longest_trial_s = max(self._longest_trial_s, elapsed_s)

    def check(self) -> str | None:
        """A stop reason when the budget nears exhaustion, else ``None``."""
        if self.budget_s is None:
            return None
        remaining = self.budget_s - (monotonic_clock() - self._start)
        if remaining <= self._longest_trial_s:
            return STOP_DEADLINE
        return None


class BreakerState(str, enum.Enum):
    """Circuit-breaker states (classic closed/open/half-open)."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass
class BreakerConfig:
    """Circuit-breaker tuning."""

    failure_threshold: int = 3
    cooldown_trials: int = 2

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_trials < 1:
            raise ValueError(
                f"cooldown_trials must be >= 1, got {self.cooldown_trials}"
            )


class CircuitBreaker:
    """Consecutive-failure circuit breaker over a trial sequence.

    ``CLOSED`` runs everything.  *failure_threshold* consecutive
    contained failures open the breaker; while ``OPEN`` the next
    *cooldown_trials* trials are skipped (they would almost certainly
    burn budget on the same broken environment), then the breaker goes
    ``HALF_OPEN`` and lets one probe trial through.  A successful probe
    closes the breaker; a failed probe re-opens it for another cooldown.
    """

    def __init__(self, config: BreakerConfig | None = None) -> None:
        self.config = config or BreakerConfig()
        self.state = BreakerState.CLOSED
        self.consecutive_failures = 0
        self.skipped = 0
        self.events: list[dict[str, Any]] = []
        self._cooldown_left = 0

    def _transition(self, index: int, state: BreakerState, reason: str) -> None:
        self.events.append(
            {
                "trial": index,
                "from": self.state.value,
                "to": state.value,
                "reason": reason,
            }
        )
        self.state = state

    def gate(self, index: int) -> str | None:
        """Skip reason for trial *index*, or ``None`` to run it."""
        if self.state is BreakerState.OPEN:
            if self._cooldown_left > 0:
                self._cooldown_left -= 1
                self.skipped += 1
                return SKIP_BREAKER
            self._transition(
                index, BreakerState.HALF_OPEN, "cooldown elapsed; probing"
            )
        return None

    def record(self, index: int, success: bool) -> None:
        """Feed one executed trial's outcome into the breaker."""
        if success:
            if self.state is BreakerState.HALF_OPEN:
                self._transition(index, BreakerState.CLOSED, "probe succeeded")
            self.consecutive_failures = 0
            return
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN:
            self._transition(index, BreakerState.OPEN, "probe failed")
            self._cooldown_left = self.config.cooldown_trials
        elif (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.config.failure_threshold
        ):
            self._transition(
                index,
                BreakerState.OPEN,
                f"{self.consecutive_failures} consecutive failures",
            )
            self._cooldown_left = self.config.cooldown_trials


# ----------------------------------------------------------------------
# The supervised run
# ----------------------------------------------------------------------
@dataclass
class RunOutcome:
    """Everything a caller (CLI or test) needs about one supervised run."""

    plan: ExperimentPlan
    status: str
    result: Any = None
    error: Exception | None = None
    run_dir: Path | None = None
    manifest: RunManifest | None = None
    completed: int = 0
    failed: int = 0
    resumed: int = 0
    skipped: int = 0
    breaker_events: list[dict[str, Any]] = field(default_factory=list)
    elapsed_s: float = 0.0
    #: Pool-executor telemetry (respawns, plan reuses, degradation,
    #: poisoned trial keys) — in-memory only, ``None`` off the pool path.
    pool: dict[str, Any] | None = None

    @property
    def exit_code(self) -> int:
        """The documented process exit code for this outcome."""
        return _STATUS_EXIT.get(self.status, 1)

    @property
    def resumable(self) -> bool:
        """Whether ``--resume`` on the run directory would make progress."""
        return self.run_dir is not None and self.status in (
            STATUS_DEADLINE,
            STATUS_INTERRUPTED,
        )

    def require_result(self) -> Any:
        """The finalized result, re-raising the captured failure mode.

        This is what the modules' plain ``run()`` entry points call: an
        in-memory run behaves exactly like pre-runner code — errors
        raise, interrupts propagate.
        """
        if self.status == STATUS_COMPLETED:
            return self.result
        if self.status == STATUS_INTERRUPTED:
            raise KeyboardInterrupt
        if self.error is not None:
            raise self.error
        raise ReproError(
            f"{self.plan.name}: run ended with status {self.status!r} "
            "and no result"
        )


def prepare_checkpoint(
    plan: ExperimentPlan,
    run_dir: Path,
    resume: bool,
) -> tuple[RunManifest, CheckpointJournal, dict[str, Any], set[str]]:
    """Open (or resume) the checkpointed state of *run_dir* for *plan*.

    Returns ``(manifest, journal, resumed_results, resumed_failed)`` with
    the manifest already stamped ``running`` and saved.  Shared by the
    serial loop below and the sharded executor in
    :mod:`repro.experiments.parallel`, so both produce (and validate)
    identical on-disk state.
    """
    resumed_results: dict[str, Any] = {}
    resumed_failed: set[str] = set()
    if resume:
        manifest = RunManifest.load(run_dir)
        if manifest.experiment != plan.name:
            raise ResumeMismatchError(
                f"run dir {run_dir} holds experiment "
                f"{manifest.experiment!r}, not {plan.name!r}"
            )
        if manifest.config_hash != plan.hash:
            raise ResumeMismatchError(
                f"config hash mismatch resuming {run_dir}: manifest "
                f"{manifest.config_hash[:12]}…, plan {plan.hash[:12]}… — "
                "rerun with the original parameters or start a new run dir",
                expected=manifest.config_hash,
                actual=plan.hash,
            )
        journal = CheckpointJournal.load(run_dir)
        for entry in journal.entries():
            if entry.ok:
                resumed_results[entry.key] = journal.load_payload(entry.key)
            else:
                # A journaled failure is not retried: trials are
                # deterministic, so it would fail identically and a
                # resumed run must mirror the uninterrupted one.
                resumed_failed.add(entry.key)
        manifest.add_segment("resume")
    else:
        if (run_dir / "manifest.json").exists():
            raise CheckpointError(
                f"{run_dir} already holds a run; pass resume=True "
                "(--resume) to continue it or choose a fresh directory"
            )
        manifest = RunManifest(
            experiment=plan.name,
            seed=plan.seed,
            config=plan.config,
            config_hash=plan.hash,
            fault_plan=fault_plan_id(plan.fault_plan),
            git_describe=git_describe(),
            trials_total=len(plan.trials),
        )
        manifest.add_segment("start")
        journal = CheckpointJournal(run_dir)
    manifest.status = STATUS_RUNNING
    manifest.trials_total = len(plan.trials)
    manifest.save(run_dir)
    return manifest, journal, resumed_results, resumed_failed


def resolve_finalize(
    plan: ExperimentPlan, merged: dict[str, Any]
) -> tuple[str, Any, Exception | None]:
    """Run *plan.finalize* over *merged* and map the outcome to a run
    status: ``(status, result, error)``."""
    try:
        result = plan.finalize(merged)
    except InsufficientTrialsError as exc:
        return STATUS_INSUFFICIENT, None, exc
    except InvariantViolation as exc:
        return STATUS_INVARIANT, None, exc
    except ReproError as exc:
        return STATUS_FAILED, None, exc
    return STATUS_COMPLETED, result, None


def insufficient_error(
    plan: ExperimentPlan,
    successes: int,
    failures: Sequence[tuple[int, str, str]],
    failed_total: int,
    skipped: int,
) -> InsufficientTrialsError:
    """The standard below-floor error, with the first failures inlined.

    *failures* entries are ``(index, error_type_name, message)`` — plain
    values rather than exception objects so the sharded executor can
    report failures that happened in another process.
    """
    detail = "; ".join(
        f"trial {index}: {name}: {message}"
        for index, name, message in list(failures)[:3]
    )
    return InsufficientTrialsError(
        f"{plan.name}: {successes}/{len(plan.trials)} trials succeeded "
        f"(needed {plan.min_successes}; {failed_total} failed, "
        f"{skipped} breaker-skipped)"
        f"{': ' + detail if detail else ''}"
    )


def run_experiment(
    plan: ExperimentPlan,
    run_dir: str | Path | None = None,
    resume: bool = False,
    deadline_s: float | None = None,
    breaker: BreakerConfig | None = None,
    catch: tuple[type[Exception], ...] = (ReproError,),
    fault_injector: Any = None,
    workers: int = 1,
    shard_strategy: str = "interleave",
    plan_source: Callable[[], "ExperimentPlan"] | None = None,
    executor: str = "auto",
) -> RunOutcome:
    """Execute *plan* under supervision; never raises for expected
    failure modes (they land in the returned :class:`RunOutcome`).

    With *run_dir*, the run is checkpointed and (with ``resume=True``)
    continued from a previous segment.  Without it, the run is in-memory
    only — same loop, no persistence.

    With ``workers > 1`` the plan's trials are partitioned across worker
    processes by *shard_strategy*; *plan_source* must then be a
    picklable zero-argument plan factory (e.g. a
    :class:`~repro.experiments.parallel.PlanHandle`) unless the plan
    itself pickles.  A parallel run is observation-equivalent to this
    serial loop: same journal, same manifest, same finalized artifact
    (see ``docs/parallel.md``).

    *executor* picks the multi-process engine:

    ``"auto"``
        The supervised persistent pool (:mod:`repro.experiments.pool`),
        which degrades to the serial loop in-process when its cost model
        says parallelism doesn't pay on this host.
    ``"pool"``
        The persistent pool, unconditionally (no cost-model degrade).
    ``"spawn"``
        The one-shot spawn-per-run executor
        (:mod:`repro.experiments.parallel`).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if executor not in ("auto", "pool", "spawn"):
        raise ValueError(
            f"executor must be 'auto', 'pool' or 'spawn', got {executor!r}"
        )
    if workers > 1:
        if fault_injector is not None:
            raise ValueError(
                "parallel runs build one FaultInjector per worker from "
                "plan.fault_plan; passing a shared fault_injector across "
                "processes is not supported"
            )
        if executor == "spawn":
            from repro.experiments.parallel import run_parallel_experiment

            return run_parallel_experiment(
                plan,
                plan_source=plan_source,
                workers=workers,
                shard_strategy=shard_strategy,
                run_dir=run_dir,
                resume=resume,
                deadline_s=deadline_s,
                breaker=breaker,
                catch=catch,
            )
        from repro.experiments.pool import run_pool_experiment

        return run_pool_experiment(
            plan,
            plan_source=plan_source,
            workers=workers,
            shard_strategy=shard_strategy,
            run_dir=run_dir,
            resume=resume,
            deadline_s=deadline_s,
            breaker=breaker,
            catch=catch,
            executor=executor,
        )

    started = monotonic_clock()
    journal: CheckpointJournal | None = None
    manifest: RunManifest | None = None
    resumed_results: dict[str, Any] = {}
    resumed_failed: set[str] = set()

    if run_dir is not None:
        run_dir = Path(run_dir)
        manifest, journal, resumed_results, resumed_failed = prepare_checkpoint(
            plan, run_dir, resume
        )

    watchdog = Watchdog(deadline_s)
    circuit = CircuitBreaker(breaker)
    live_results: dict[str, Any] = {}
    live_failures: list[TrialFailure] = []

    def skip_trial(index: int) -> str | None:
        key = plan.trials[index].key
        if key in resumed_results or key in resumed_failed:
            return SKIP_RESUMED
        return circuit.gate(index)

    def on_trial_end(
        index: int, result: Any, failure: TrialFailure | None, elapsed_s: float
    ) -> None:
        key = plan.trials[index].key
        watchdog.note_trial(elapsed_s)
        if failure is None:
            live_results[key] = result
            circuit.record(index, True)
            if journal is not None:
                journal.record_success(index, key, result, elapsed_s=elapsed_s)
        else:
            live_failures.append(failure)
            circuit.record(index, False)
            if journal is not None:
                journal.record_failure(
                    index, key, failure.error, elapsed_s=elapsed_s
                )

    def _finish(status: str, result: Any = None, error: Exception | None = None):
        merged = _ordered_successes(plan, resumed_results, live_results)
        outcome = RunOutcome(
            plan=plan,
            status=status,
            result=result,
            error=error,
            run_dir=run_dir if run_dir is None else Path(run_dir),
            manifest=manifest,
            completed=len(merged),
            failed=len(live_failures) + len(resumed_failed),
            resumed=len(resumed_results),
            skipped=circuit.skipped + _deadline_skips,
            breaker_events=list(circuit.events),
            elapsed_s=monotonic_clock() - started,
        )
        if manifest is not None:
            manifest.status = status
            manifest.completed = outcome.completed
            manifest.failed = outcome.failed
            manifest.resumed = outcome.resumed
            manifest.skipped = outcome.skipped
            manifest.exit_code = outcome.exit_code
            manifest.breaker_events = list(circuit.events)
            manifest.breaker_state = circuit.state.value
            manifest.save(run_dir)
        return outcome

    _deadline_skips = 0
    try:
        guarded = run_guarded_trials(
            [spec.fn for spec in plan.trials],
            catch=catch,
            min_successes=0,  # the floor is enforced over merged results
            label=plan.name,
            skip_trial=skip_trial,
            stop=watchdog.check,
            on_trial_end=on_trial_end,
            fault_injector=fault_injector,
        )
    except KeyboardInterrupt:
        # Everything up to the interrupted trial is already journaled.
        return _finish(STATUS_INTERRUPTED)
    except InvariantViolation as exc:
        # A tripped invariant is never a per-trial failure: the model
        # state (and any further trials) can no longer be trusted.
        return _finish(STATUS_INVARIANT, error=exc)

    if guarded.stop_reason == STOP_DEADLINE:
        _deadline_skips = guarded.skipped
        return _finish(STATUS_DEADLINE)

    merged = _ordered_successes(plan, resumed_results, live_results)
    if len(merged) < plan.min_successes:
        error = insufficient_error(
            plan,
            successes=len(merged),
            failures=[
                (f.index, type(f.error).__name__, str(f.error))
                for f in live_failures
            ],
            failed_total=len(live_failures) + len(resumed_failed),
            skipped=circuit.skipped,
        )
        return _finish(STATUS_INSUFFICIENT, error=error)

    status, result, error = resolve_finalize(plan, merged)
    return _finish(status, result=result, error=error)


def execute_plan(plan: ExperimentPlan, **supervision: Any) -> Any:
    """Run *plan* in memory and return the finalized result.

    The modules' ``run()`` entry points delegate here, so *every*
    experiment — CLI or direct call — flows through the same guarded
    loop.  Failure modes raise exactly as they would have before the
    runner existed (see :meth:`RunOutcome.require_result`).
    """
    return run_experiment(plan, **supervision).require_result()


def _ordered_successes(
    plan: ExperimentPlan,
    resumed: dict[str, Any],
    live: dict[str, Any],
) -> dict[str, Any]:
    """Successful results keyed by trial key, in plan order."""
    merged: dict[str, Any] = {}
    for spec in plan.trials:
        if spec.key in live:
            merged[spec.key] = live[spec.key]
        elif spec.key in resumed:
            merged[spec.key] = resumed[spec.key]
    return merged


def require_all(
    results: dict[str, Any], keys: Sequence[str], label: str
) -> list[Any]:
    """Finalize helper for strict plans: every key must have succeeded.

    Returns the results in *keys* order, or raises
    :class:`InsufficientTrialsError` naming the missing trials — the
    strict-module equivalent of "never a silently thinner figure".
    """
    missing = [key for key in keys if key not in results]
    if missing:
        raise InsufficientTrialsError(
            f"{label}: {len(missing)} required trial(s) failed or were "
            f"skipped: {', '.join(missing[:5])}"
            f"{'…' if len(missing) > 5 else ''}"
        )
    return [results[key] for key in keys]
