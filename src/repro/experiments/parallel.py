"""Sharded multi-process experiment execution.

Every DSAssassin artifact is a sweep of independent, deterministic
trials (the PR-2 contract: a trial's randomness derives from the run
seed and its own key, never from execution order).  This module exploits
that contract to run an :class:`~repro.experiments.runner.ExperimentPlan`
across ``multiprocessing`` workers while staying **observation
equivalent** to the serial loop in
:func:`~repro.experiments.runner.run_experiment`:

* the checkpoint journal holds the same entries (journals are written in
  plan-index order regardless of completion order),
* the run manifest records the same counts, status, and exit code,
* the finalized artifact — and any dataset built from the run directory
  — is byte-identical to a serial run's,
* ``--resume`` works across a worker-count change in either direction
  (the journal is addressed by trial key, not by shard).

Execution model
---------------
The parent process prepares the checkpoint, partitions the *pending*
trial indices across workers with a :data:`SHARD_STRATEGIES` function,
and spawns one process per non-empty shard (``spawn`` start method —
no inherited state; ``PYTHONHASHSEED`` is pinned for the children).
Workers cannot receive the plan object itself (trial closures generally
do not pickle), so each worker rebuilds the plan from a picklable
zero-argument *plan source* — typically a :class:`PlanHandle` naming a
module whose ``trial_plan(**overrides)`` hook reconstructs it — and
verifies the rebuilt plan's config hash against the parent's before
running anything.

Each worker owns private supervision state: its own
:class:`~repro.experiments.runner.CircuitBreaker`, its own
:class:`~repro.faults.injector.FaultInjector` built from
``plan.fault_plan`` (reachable from trial code via
:func:`current_fault_injector`), and whatever per-system
:class:`~repro.invariants.monitor.InvariantMonitor` instances its trials
construct.  Results stream back over a queue; the parent journals them
as they arrive and merges shard outcomes:

* **watchdog** — the parent tracks the longest trial seen across all
  shards and trips the shared stop event once the remaining budget can
  no longer fit it (same soft-deadline semantics as serial; exit 75),
* **circuit breaker** — per-worker breakers gate their own shard;
  the manifest aggregates every worker's transition events and the
  worst observed state,
* **invariants** — an :class:`~repro.errors.InvariantViolation` in any
  worker aborts the whole run with
  :data:`~repro.experiments.runner.EXIT_INVARIANT` (6), exactly like a
  serial trip,
* **interrupts** — SIGINT/SIGTERM in the parent (or a
  ``KeyboardInterrupt`` escaping a worker trial) stops every shard,
  drains in-flight results into the journal, and exits 130, resumable.

See ``docs/parallel.md`` for the equivalence argument and worker-count
guidance, and ``tests/experiments/test_parallel_equivalence.py`` for the
differential serial≡parallel suite.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
import pickle
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from queue import Empty
from typing import Any, Callable, Mapping, Sequence

from repro.errors import (
    ConfigurationError,
    InvariantViolation,
    ReproError,
)
from repro.experiments.checkpoint import (
    STATUS_DEADLINE,
    STATUS_INSUFFICIENT,
    STATUS_INTERRUPTED,
    STATUS_INVARIANT,
    CheckpointJournal,
    RunManifest,
)
from repro.experiments.guard import TrialFailure, run_guarded_trials
from repro.experiments.runner import (
    STOP_DEADLINE,
    BreakerConfig,
    CircuitBreaker,
    ExperimentPlan,
    RunOutcome,
    Watchdog,
    _ordered_successes,
    insufficient_error,
    monotonic_clock,
    prepare_checkpoint,
    resolve_finalize,
)
from repro.experiments.supervisor import interrupt_shield, sigterm_as_interrupt

__all__ = [
    "PlanHandle",
    "SHARD_STRATEGIES",
    "STOP_PARALLEL",
    "WorkerContext",
    "current_fault_injector",
    "current_worker_context",
    "run_parallel_experiment",
    "shard_contiguous",
    "shard_interleave",
]

#: Hash seed pinned into spawned workers (when the parent has none), so
#: shard processes never diverge on ``hash()``-dependent iteration that a
#: DET003 gap might let slip through.
_PINNED_HASH_SEED = "0"

#: How long the parent waits on the result queue between supervision
#: checks (watchdog, worker liveness).  Purely a poll interval — it does
#: not rate-limit result consumption.
_POLL_S = 0.1

#: How long a parent interrupt keeps draining already-finished results
#: before giving up on slow shards.
_DRAIN_S = 30.0


# ----------------------------------------------------------------------
# Plan sources
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class PlanHandle:
    """A picklable recipe for rebuilding an experiment plan in a worker.

    ``PlanHandle("repro.experiments.fig09_covert", {"runs": 1})`` imports
    the module and calls its ``trial_plan(**overrides)`` hook.  Every
    experiment module exposes a ``plan_source(**overrides)`` convenience
    returning exactly this.
    """

    module: str
    overrides: Mapping[str, Any] = field(default_factory=dict)

    def __call__(self) -> ExperimentPlan:
        mod = importlib.import_module(self.module)
        return mod.trial_plan(**dict(self.overrides))


@dataclass(frozen=True)
class _PickledPlan:
    """Fallback plan source: the plan itself, serialized.

    Only viable for plans whose trial callables pickle (module-level
    functions, ``functools.partial`` of them); plans built from lambdas
    need a :class:`PlanHandle` / factory instead.
    """

    payload: bytes

    def __call__(self) -> ExperimentPlan:
        return pickle.loads(self.payload)


def _coerce_plan_source(
    plan: ExperimentPlan, plan_source: Callable[[], ExperimentPlan] | None
) -> Callable[[], ExperimentPlan]:
    if plan_source is not None:
        return plan_source
    try:
        return _PickledPlan(pickle.dumps(plan, protocol=4))
    except (pickle.PicklingError, TypeError, AttributeError, ValueError) as exc:
        raise ConfigurationError(
            f"plan {plan.name!r} does not pickle ({type(exc).__name__}: "
            f"{exc}); pass plan_source= — e.g. the experiment module's "
            "plan_source(**overrides) hook or any picklable zero-argument "
            "factory — so workers can rebuild it"
        ) from exc


# ----------------------------------------------------------------------
# Shard strategies
# ----------------------------------------------------------------------
def shard_interleave(indices: Sequence[int], workers: int) -> list[list[int]]:
    """Round-robin partition: worker *w* gets ``indices[w::workers]``.

    The default — heterogeneous trial costs (e.g. fig09's window sweep,
    where small bit windows run longer) spread evenly across shards.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return [list(indices[w::workers]) for w in range(workers)]


def shard_contiguous(indices: Sequence[int], workers: int) -> list[list[int]]:
    """Balanced consecutive blocks (earlier shards take the remainder).

    Useful when neighboring trials share warm state outside the plan
    (e.g. page-cache locality of a dataset directory).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    base, extra = divmod(len(indices), workers)
    shards: list[list[int]] = []
    start = 0
    for w in range(workers):
        size = base + (1 if w < extra else 0)
        shards.append(list(indices[start:start + size]))
        start += size
    return shards


#: name -> partition function, the ``--shard`` registry.
SHARD_STRATEGIES: dict[str, Callable[[Sequence[int], int], list[list[int]]]] = {
    "interleave": shard_interleave,
    "contiguous": shard_contiguous,
}


# ----------------------------------------------------------------------
# Worker-side context
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WorkerContext:
    """What a trial can learn about the shard process executing it."""

    worker_id: int
    workers: int
    fault_injector: Any = None


_WORKER_CONTEXT: WorkerContext | None = None


def current_worker_context() -> WorkerContext | None:
    """The executing shard's context, or ``None`` outside a worker."""
    return _WORKER_CONTEXT


def current_fault_injector() -> Any:
    """The executing worker's per-process
    :class:`~repro.faults.injector.FaultInjector` (built from
    ``plan.fault_plan``), or ``None`` outside a worker / without a plan.

    Trial code that fires chaos faults under the sharded executor uses
    this instead of a closed-over injector, so the fired-versus-
    acknowledged audit stays inside the worker that fired the fault.
    """
    return _WORKER_CONTEXT.fault_injector if _WORKER_CONTEXT else None


# Message tags on the worker -> parent result queue.
_MSG_TRIAL = "trial"
_MSG_INVARIANT = "invariant"
_MSG_INTERRUPTED = "interrupted"
_MSG_CRASHED = "crashed"
_MSG_DONE = "done"

#: Guard ``stop`` reason inside workers when the parent trips the shared
#: stop event (deadline, invariant elsewhere, interrupt).
STOP_PARALLEL = "parallel-stop"


def _worker_main(
    worker_id: int,
    workers: int,
    plan_source: Callable[[], ExperimentPlan],
    indices: list[int],
    expected_hash: str,
    result_q: Any,
    stop_event: Any,
    breaker: BreakerConfig | None,
    catch: tuple[type[Exception], ...],
) -> None:
    """Execute one shard: rebuild the plan, run the assigned trials,
    stream results back.  Runs in a spawned child process."""
    global _WORKER_CONTEXT
    circuit = CircuitBreaker(breaker)
    try:
        plan = plan_source()
        if plan.hash != expected_hash:
            raise ConfigurationError(
                f"plan source is not deterministic: worker {worker_id} "
                f"rebuilt config hash {plan.hash[:12]}…, parent expected "
                f"{expected_hash[:12]}… — shard results cannot be merged "
                "safely"
            )
        injector = (
            plan.fault_plan.build_injector()
            if plan.fault_plan is not None
            else None
        )
        # Intentional per-process singleton: written exactly once at
        # worker startup (before any trial runs) and only ever read by
        # the accessors above — divergence across workers is the point,
        # each worker must see its *own* injector.
        _WORKER_CONTEXT = WorkerContext(  # repro-lint: ignore[PAR101]
            worker_id=worker_id, workers=workers, fault_injector=injector
        )

        def stop() -> str | None:
            return STOP_PARALLEL if stop_event.is_set() else None

        def skip_trial(local: int) -> str | None:
            return circuit.gate(indices[local])

        def on_trial_end(
            local: int,
            result: Any,
            failure: TrialFailure | None,
            elapsed_s: float,
        ) -> None:
            index = indices[local]
            key = plan.trials[index].key
            circuit.record(index, failure is None)
            if failure is None:
                result_q.put(
                    (_MSG_TRIAL, worker_id, index, key, True,
                     result, None, None, elapsed_s)
                )
            else:
                result_q.put(
                    (_MSG_TRIAL, worker_id, index, key, False, None,
                     type(failure.error).__name__, str(failure.error),
                     elapsed_s)
                )

        guarded = run_guarded_trials(
            [plan.trials[index].fn for index in indices],
            catch=catch,
            min_successes=0,  # the floor is enforced over merged results
            label=f"{plan.name}[shard {worker_id}]",
            skip_trial=skip_trial,
            stop=stop,
            on_trial_end=on_trial_end,
            fault_injector=injector,
        )
        result_q.put((_MSG_DONE, worker_id, _shard_summary(circuit, guarded)))
    except InvariantViolation as exc:
        try:
            payload = pickle.dumps(exc, protocol=4)
        except (pickle.PicklingError, TypeError, AttributeError, ValueError):
            payload = None
        result_q.put(
            (_MSG_INVARIANT, worker_id, payload, {
                "message": str(exc),
                "invariant": exc.invariant,
                "seed": exc.seed,
                "repro": exc.repro,
            })
        )
        result_q.put((_MSG_DONE, worker_id, _shard_summary(circuit, None)))
    except KeyboardInterrupt:
        result_q.put((_MSG_INTERRUPTED, worker_id))
        result_q.put((_MSG_DONE, worker_id, _shard_summary(circuit, None)))
    # The worker's last line of defense: ANY other escape (programming
    # error, SystemExit from library code) must reach the parent as a
    # crash report, or the merge loop would wait on a silent shard.
    except BaseException:  # repro-lint: ignore[EXC001]
        result_q.put((_MSG_CRASHED, worker_id, traceback.format_exc()))
        result_q.put((_MSG_DONE, worker_id, _shard_summary(circuit, None)))


def _shard_summary(circuit: CircuitBreaker, guarded: Any) -> dict[str, Any]:
    """The per-shard accounting attached to its ``done`` message."""
    return {
        "stop_reason": guarded.stop_reason if guarded is not None else "",
        "stop_skipped": guarded.skipped if guarded is not None else 0,
        "breaker_skipped": circuit.skipped,
        "breaker_events": list(circuit.events),
        "breaker_state": circuit.state.value,
    }


def _rebuild_violation(
    payload: bytes | None, summary: dict[str, Any]
) -> InvariantViolation:
    """The worker's violation, unpickled — or reconstructed from its
    summary fields when the full object cannot cross the process
    boundary (e.g. an unpicklable snapshot value)."""
    if payload is not None:
        try:
            exc = pickle.loads(payload)
            if isinstance(exc, InvariantViolation):
                return exc
        except (pickle.UnpicklingError, TypeError, AttributeError,
                EOFError, ImportError):
            pass
    return InvariantViolation(
        message=summary.get("message", ""),
        invariant=summary.get("invariant", ""),
        seed=summary.get("seed"),
        repro=summary.get("repro", ""),
    )


_BREAKER_SEVERITY = {"closed": 0, "half-open": 1, "open": 2}


# ----------------------------------------------------------------------
# The parent-side merge loop
# ----------------------------------------------------------------------
def run_parallel_experiment(
    plan: ExperimentPlan | None = None,
    *,
    plan_source: Callable[[], ExperimentPlan] | None = None,
    workers: int = 2,
    shard_strategy: str = "interleave",
    run_dir: str | Path | None = None,
    resume: bool = False,
    deadline_s: float | None = None,
    breaker: BreakerConfig | None = None,
    catch: tuple[type[Exception], ...] = (ReproError,),
) -> RunOutcome:
    """Execute *plan* across *workers* spawned shard processes.

    Accepts the same supervision surface as
    :func:`~repro.experiments.runner.run_experiment` (checkpointing,
    resume, soft deadline, circuit breaker) and returns the same
    :class:`~repro.experiments.runner.RunOutcome`; prefer calling
    ``run_experiment(..., workers=N)``, which delegates here.

    At least one of *plan* / *plan_source* is required: with only a
    *plan* it must pickle; with only a *plan_source* the parent builds
    its own copy by calling it once.  A shard that dies without
    reporting (or hits a non-contained exception) raises
    ``RuntimeError`` with the worker traceback, mirroring the serial
    loop where programming errors propagate; the manifest then stays
    ``running`` and the run directory remains resumable.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if shard_strategy not in SHARD_STRATEGIES:
        raise ConfigurationError(
            f"unknown shard strategy {shard_strategy!r}; "
            f"choose from {sorted(SHARD_STRATEGIES)}"
        )
    if plan is None:
        if plan_source is None:
            raise ValueError(
                "run_parallel_experiment needs a plan or a plan_source"
            )
        plan = plan_source()
    source = _coerce_plan_source(plan, plan_source)

    started = monotonic_clock()
    journal: CheckpointJournal | None = None
    manifest: RunManifest | None = None
    resumed_results: dict[str, Any] = {}
    resumed_failed: set[str] = set()
    if run_dir is not None:
        run_dir = Path(run_dir)
        manifest, journal, resumed_results, resumed_failed = prepare_checkpoint(
            plan, run_dir, resume
        )

    pending = [
        index
        for index, spec in enumerate(plan.trials)
        if spec.key not in resumed_results and spec.key not in resumed_failed
    ]
    shards = [
        shard
        for shard in SHARD_STRATEGIES[shard_strategy](pending, workers)
        if shard
    ]

    watchdog = Watchdog(deadline_s)
    live_results: dict[str, Any] = {}
    live_failures: list[tuple[int, str, str]] = []
    breaker_events: list[dict[str, Any]] = []
    breaker_state = "closed"
    breaker_skips = 0
    stop_skips = 0  # trials shards abandoned after the stop event tripped
    abort_status: str | None = None
    abort_error: Exception | None = None
    crash_trace: str | None = None

    def _finish(status: str, result: Any = None, error: Exception | None = None):
        merged = _ordered_successes(plan, resumed_results, live_results)
        # Parity with the serial loop: abandoned-on-stop trials count as
        # skipped only for a deadline stop (an interrupt or invariant
        # abort reports just the breaker skips, as serial does).
        skipped = breaker_skips + (
            stop_skips if status == STATUS_DEADLINE else 0
        )
        outcome = RunOutcome(
            plan=plan,
            status=status,
            result=result,
            error=error,
            run_dir=run_dir if run_dir is None else Path(run_dir),
            manifest=manifest,
            completed=len(merged),
            failed=len(live_failures) + len(resumed_failed),
            resumed=len(resumed_results),
            skipped=skipped,
            breaker_events=list(breaker_events),
            elapsed_s=monotonic_clock() - started,
        )
        if manifest is not None:
            manifest.status = status
            manifest.completed = outcome.completed
            manifest.failed = outcome.failed
            manifest.resumed = outcome.resumed
            manifest.skipped = outcome.skipped
            manifest.exit_code = outcome.exit_code
            manifest.breaker_events = list(breaker_events)
            manifest.breaker_state = breaker_state
            manifest.save(run_dir)
        return outcome

    if shards:
        # Spawned interpreters must agree on hash() before any of the
        # plan's own code runs in them.
        os.environ.setdefault("PYTHONHASHSEED", _PINNED_HASH_SEED)
        ctx = multiprocessing.get_context("spawn")
        result_q = ctx.Queue()
        stop_event = ctx.Event()
        processes = [
            ctx.Process(
                target=_worker_main,
                args=(worker_id, len(shards), source, shard, plan.hash,
                      result_q, stop_event, breaker, catch),
                daemon=True,
                name=f"{plan.name}-shard{worker_id}",
            )
            for worker_id, shard in enumerate(shards)
        ]
        for process in processes:
            process.start()

        done = 0

        def handle(message: tuple) -> None:
            nonlocal done, abort_status, abort_error, crash_trace
            nonlocal stop_skips, breaker_skips, breaker_state
            tag = message[0]
            if tag == _MSG_TRIAL:
                (_, _worker, index, key, ok, payload,
                 error_type, error_text, elapsed_s) = message
                if plan.trials[index].key != key:
                    raise ConfigurationError(
                        f"shard returned key {key!r} for trial index "
                        f"{index}, parent plan says "
                        f"{plan.trials[index].key!r} — plan source drift"
                    )
                watchdog.note_trial(elapsed_s)
                if ok:
                    live_results[key] = payload
                    if journal is not None:
                        journal.record_success(
                            index, key, payload, elapsed_s=elapsed_s
                        )
                else:
                    live_failures.append((index, error_type, error_text))
                    if journal is not None:
                        journal.record_failure_info(
                            index, key, error_type, error_text,
                            elapsed_s=elapsed_s,
                        )
            elif tag == _MSG_INVARIANT:
                if abort_status != STATUS_INVARIANT:
                    abort_status = STATUS_INVARIANT
                    abort_error = _rebuild_violation(message[2], message[3])
                stop_event.set()
            elif tag == _MSG_INTERRUPTED:
                if abort_status is None:
                    abort_status = STATUS_INTERRUPTED
                stop_event.set()
            elif tag == _MSG_CRASHED:
                if crash_trace is None:
                    crash_trace = message[2]
                stop_event.set()
            elif tag == _MSG_DONE:
                done += 1
                summary = message[2]
                stop_skips += summary["stop_skipped"]
                breaker_skips += summary["breaker_skipped"]
                breaker_events.extend(summary["breaker_events"])
                if (
                    _BREAKER_SEVERITY.get(summary["breaker_state"], 0)
                    > _BREAKER_SEVERITY.get(breaker_state, 0)
                ):
                    breaker_state = summary["breaker_state"]

        def check_deadline() -> None:
            nonlocal abort_status
            if abort_status is None and watchdog.check() == STOP_DEADLINE:
                abort_status = STATUS_DEADLINE
                stop_event.set()

        try:
            # SIGTERM (scheduler kill) behaves like ctrl-C: one
            # KeyboardInterrupt, then the shielded drain below.
            with sigterm_as_interrupt():
                while done < len(processes):
                    try:
                        message = result_q.get(timeout=_POLL_S)
                    except Empty:
                        check_deadline()
                        dead = [
                            p for p in processes
                            if not p.is_alive() and p.exitcode not in (0, None)
                        ]
                        if dead and crash_trace is None:
                            # A shard died without reporting (OOM-killed,
                            # or the interpreter itself failed): nothing
                            # more will arrive from it, so account it as
                            # crashed and stop the rest.
                            crash_trace = (
                                f"shard process(es) "
                                f"{[p.name for p in dead]} exited without "
                                "a result (killed?)"
                            )
                            stop_event.set()
                            done += len(dead)
                        continue
                    handle(message)
                    check_deadline()
        except KeyboardInterrupt:
            abort_status = STATUS_INTERRUPTED
            stop_event.set()
        # From here to the manifest flush nothing may be skipped by a
        # late ctrl-C / SIGTERM: drain, teardown, and the _finish calls
        # below run under an interrupt shield (a further interrupt only
        # cuts the drain short — it can no longer race worker teardown
        # out of the checkpoint writes that make exit 130 resumable).
        with interrupt_shield() as latch:
            try:
                if abort_status == STATUS_INTERRUPTED and done < len(processes):
                    # Drain what the workers already finished so the
                    # journal is as complete as a serial interrupt's,
                    # then let them exit.
                    drain_deadline = monotonic_clock() + _DRAIN_S
                    while (
                        done < len(processes)
                        and monotonic_clock() < drain_deadline
                        and not latch.interrupted
                    ):
                        try:
                            handle(result_q.get(timeout=_POLL_S))
                        except Empty:
                            if all(not p.is_alive() for p in processes):
                                break
            finally:
                for process in processes:
                    process.join(timeout=10.0)
                for process in processes:
                    if process.is_alive():
                        process.terminate()
                        process.join(timeout=5.0)
                result_q.close()

            if crash_trace is not None and abort_status is None:
                # Parity with the serial loop, where a non-contained
                # exception propagates to the caller as a programming
                # error (the manifest stays ``running``; the run dir
                # remains resumable).
                raise RuntimeError(f"parallel shard crashed:\n{crash_trace}")

            if abort_status is None and latch.interrupted:
                abort_status = STATUS_INTERRUPTED
            if abort_status is not None:
                if abort_status == STATUS_INVARIANT:
                    return _finish(STATUS_INVARIANT, error=abort_error)
                if abort_status == STATUS_INTERRUPTED:
                    return _finish(STATUS_INTERRUPTED)
                return _finish(STATUS_DEADLINE)

    merged = _ordered_successes(plan, resumed_results, live_results)
    if len(merged) < plan.min_successes:
        error = insufficient_error(
            plan,
            successes=len(merged),
            failures=sorted(live_failures),
            failed_total=len(live_failures) + len(resumed_failed),
            skipped=breaker_skips,
        )
        return _finish(STATUS_INSUFFICIENT, error=error)

    status, result, error = resolve_finalize(plan, merged)
    return _finish(status, result=result, error=error)
