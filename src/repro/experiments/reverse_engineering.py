"""Section IV reverse-engineering experiments.

Re-runs, against the model, every microbenchmark the paper used to
reverse-engineer the DSA — each returns the observation the paper
reports, so the suite doubles as a regression test of the
reverse-engineered microarchitecture:

* **Listing 2** — single-slot, page-granular DevTLB sub-entries.
* **Listing 3** — ``dst`` indexed independently of ``src``.
* **Listing 4** — ``src2`` and ``dst`` share encoding bits but not
  sub-entries.
* huge-page conflict — no dedicated entries per page size.
* cross-page — ``EV_ATC_ALLOC`` rises per page, only the final page
  stays cached.
* batch fetcher — bypasses the DevTLB entirely.
* **Fig. 5 / E0, E1, E2** — PASID/engine indexing of the DevTLB.
* **Listing 5** — the arbiter prioritizes work descriptors over batches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.ats.devtlb import FieldType
from repro.core.primitives import Prober
from repro.dsa.batch import write_batch_list
from repro.dsa.descriptor import BatchDescriptor, make_memcpy, make_noop
from repro.dsa.perfmon import Perfmon
from repro.experiments.runner import (
    ExperimentPlan,
    TrialSpec,
    execute_plan,
    require_all,
)
from repro.hw.units import HUGE_PAGE_SIZE, PAGE_SIZE
from repro.virt.system import AttackTopology, CloudSystem


@dataclass
class ReverseEngineeringResults:
    """One boolean (did the model reproduce the paper's observation?) and
    one description per experiment."""

    observations: dict[str, bool] = field(default_factory=dict)
    details: dict[str, str] = field(default_factory=dict)

    def record(self, name: str, observed: bool, detail: str) -> None:
        """Store one experiment's outcome."""
        self.observations[name] = observed
        self.details[name] = detail

    @property
    def all_reproduced(self) -> bool:
        """True when every observation matches the paper."""
        return all(self.observations.values())


def _fresh_system(seed: int = 11) -> tuple[CloudSystem, Prober, Perfmon]:
    system = CloudSystem(seed=seed)
    system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
    attacker = system.vms["attacker-vm"].process("attacker")
    prober = Prober(attacker, wq_id=0)
    perfmon = Perfmon(system.device, privileged=True)
    return system, prober, perfmon


def listing2_single_slot(results: ReverseEngineeringResults) -> None:
    """Listing 2: base / base+OFFSET / base — hit only within the page."""
    system, prober, perfmon = _fresh_system()
    base = prober.fresh_comp()

    # OFFSET < 4 KiB: two hits on re-probes of the same page.
    before = perfmon.snapshot()
    prober.probe_noop(base)
    prober.probe_noop(base + 0x40)
    prober.probe_noop(base)
    hits_same_page = perfmon.snapshot()["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]

    # OFFSET >= 4 KiB: the second access evicts, the third misses.
    # (Counting starts after the prime, as in the paper's listing.)
    base2 = prober.fresh_comp()
    evictor = prober.fresh_comp()
    prober.probe_noop(base2)
    before = perfmon.snapshot()
    prober.probe_noop(evictor)
    prober.probe_noop(base2)
    hits_cross_page = perfmon.snapshot()["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]

    observed = hits_same_page == 2 and hits_cross_page == 0
    results.record(
        "listing2_single_slot",
        observed,
        f"same-page hits={hits_same_page} (paper: 2), "
        f"cross-page hits={hits_cross_page} (paper: 0) -> direct-mapped, "
        f"single slot, page granularity",
    )


def listing3_independent_fields(results: ReverseEngineeringResults) -> None:
    """Listing 3: changing src does not evict the dst sub-entry."""
    system, prober, perfmon = _fresh_system()
    src0, src1, dst0 = prober.fresh_page(), prober.fresh_page(), prober.fresh_page()
    comp = prober.fresh_comp()
    prober.probe_memcpy(src0, dst0, comp)  # prime
    before = perfmon.snapshot()
    prober.probe_memcpy(src1, dst0, comp)  # new src page, same dst
    delta = perfmon.snapshot()["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]
    # dst hits, comp hits; src misses.
    observed = delta == 2
    results.record(
        "listing3_independent_fields",
        observed,
        f"hits on re-probe with changed src = {delta} (dst+comp; src misses) "
        f"-> dst has its own sub-entry",
    )


def listing4_src2_dst_no_interference(results: ReverseEngineeringResults) -> None:
    """Listing 4: src2 and dst share encoding bits, not sub-entries."""
    system, prober, perfmon = _fresh_system()
    src = prober.fresh_page()
    shared_page = prober.fresh_page()  # used as src2 then as dst
    comp = prober.fresh_comp()
    prober.probe_memcmp(src, shared_page, comp)
    before = perfmon.snapshot()
    prober.probe_memcpy(src, shared_page, comp)
    delta = perfmon.snapshot()["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]
    # Expected hits: src and comp only — the dst access misses although the
    # same page sits in the src2 sub-entry.
    observed = delta == 2
    results.record(
        "listing4_no_interference",
        observed,
        f"hits={delta} (src+comp; dst missed despite page cached as src2) "
        f"-> no cross-field interference",
    )


def huge_page_conflict(results: ReverseEngineeringResults) -> None:
    """A 2 MiB-page access evicts a 4 KiB entry in the same sub-entry."""
    system, prober, perfmon = _fresh_system()
    base = prober.fresh_comp()
    attacker = system.vms["attacker-vm"].process("attacker")
    huge = attacker.space.mmap(HUGE_PAGE_SIZE, huge=True)
    prober.probe_noop(base)
    prober.probe_noop(huge)  # huge-page completion record
    before = perfmon.snapshot()
    prober.probe_noop(base)
    delta = perfmon.snapshot()["EV_ATC_HIT_PREV"] - before["EV_ATC_HIT_PREV"]
    results.record(
        "huge_page_conflict",
        delta == 0,
        f"hits after huge-page conflict = {delta} (paper: eviction) "
        f"-> no dedicated entries per page size",
    )


def cross_page_behavior(results: ReverseEngineeringResults) -> None:
    """Cross-page transfers: one translation request per page; only the
    final page remains cached."""
    system, prober, perfmon = _fresh_system()
    attacker = system.vms["attacker-vm"].process("attacker")
    src = attacker.buffer(4 * PAGE_SIZE)
    dst = attacker.buffer(4 * PAGE_SIZE)
    comp = prober.fresh_comp()
    portal = attacker.portal(0)

    before = perfmon.snapshot()
    portal.submit_wait(make_memcpy(attacker.pasid, src, dst, 3 * PAGE_SIZE, comp))
    delta_alloc = perfmon.snapshot()["EV_ATC_ALLOC"] - before["EV_ATC_ALLOC"]
    # 3 pages src + 3 pages dst + 1 comp = 7 requests.
    requests_ok = delta_alloc == 7

    # Final-page caching: a follow-up descriptor reading the last src page
    # hits; reading the first src page misses.
    last_page_hit = system.device.devtlb.peek(
        0, FieldType.SRC, (src + 2 * PAGE_SIZE) >> 12, attacker.pasid
    )
    first_page_cached = system.device.devtlb.peek(
        0, FieldType.SRC, src >> 12, attacker.pasid
    )
    observed = requests_ok and last_page_hit and not first_page_cached
    results.record(
        "cross_page_behavior",
        observed,
        f"EV_ATC_ALLOC +{delta_alloc} for a 3-page memcpy (paper: per-page "
        f"requests); final page cached={last_page_hit}, first page "
        f"cached={first_page_cached}",
    )


def batch_fetcher_bypass(results: ReverseEngineeringResults) -> None:
    """Batch fetcher reads and its completion write bypass the DevTLB."""
    system, prober, perfmon = _fresh_system()
    attacker = system.vms["attacker-vm"].process("attacker")
    portal = attacker.portal(0)
    list_addr = attacker.buffer(PAGE_SIZE)
    batch_comp = attacker.comp_record()
    children = [make_noop(attacker.pasid, attacker.comp_record())]
    write_batch_list(attacker.space, list_addr, children)
    batch = BatchDescriptor(
        pasid=attacker.pasid, desc_list_addr=list_addr, count=1,
        completion_addr=batch_comp,
    )
    ticket = portal.submit(batch)
    portal.wait(ticket)
    devtlb = system.device.devtlb
    cached = set()
    for ftype in FieldType:
        cached.update(devtlb.cached_pages(0, ftype))
    observed = (list_addr >> 12) not in cached and (batch_comp >> 12) not in cached
    results.record(
        "batch_fetcher_bypass",
        observed,
        "neither the descriptor-list page nor the batch completion page "
        "was cached -> batch fetcher bypasses the DevTLB",
    )


def fig5_indexing(results: ReverseEngineeringResults) -> None:
    """E0/E1/E2: the DevTLB is engine-indexed and not PASID-isolated."""
    outcomes = {}
    for topology, expect_eviction in (
        (AttackTopology.E0_SHARED_WQ_SHARED_ENGINE, True),
        (AttackTopology.E1_SEPARATE_WQ_SHARED_ENGINE, True),
        (AttackTopology.E2_SEPARATE_WQ_SEPARATE_ENGINE, False),
    ):
        system = CloudSystem(seed=13)
        handles = system.setup_topology(topology)
        attacker, victim = handles.attacker, handles.victim
        a_portal = attacker.portal(handles.attacker_wq)
        v_portal = victim.portal(handles.victim_wq)
        a_comp = attacker.comp_record()
        v_comp = victim.comp_record()
        a_portal.submit_wait(make_noop(attacker.pasid, a_comp))  # prime
        v_portal.submit_wait(make_noop(victim.pasid, v_comp))  # victim acts
        probe = a_portal.submit_wait(make_noop(attacker.pasid, a_comp))
        evicted = probe.latency_cycles >= 750
        outcomes[topology.value] = evicted == expect_eviction
    results.record(
        "fig5_indexing",
        all(outcomes.values()),
        f"E0 eviction, E1 eviction, E2 no eviction reproduced: {outcomes} "
        f"-> indexed by engine, not isolated by PASID or WQ",
    )


def listing5_arbiter(results: ReverseEngineeringResults) -> None:
    """Listing 5: work-descriptor latency is order-independent w.r.t. a
    concurrently submitted batch descriptor."""
    def work_latency(batch_first: bool) -> float:
        system = CloudSystem(seed=17)
        system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attacker = system.vms["attacker-vm"].process("attacker")
        portal = attacker.portal(0)
        list_addr = attacker.buffer(PAGE_SIZE)
        children = [make_noop(attacker.pasid, attacker.comp_record()) for _ in range(4)]
        write_batch_list(attacker.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=attacker.pasid, desc_list_addr=list_addr, count=4,
            completion_addr=attacker.comp_record(),
        )
        work = make_noop(attacker.pasid, attacker.comp_record())
        latencies = []
        for _ in range(20):
            if batch_first:
                portal.enqcmd(batch)
                work_ticket = portal.submit(work)
            else:
                work_ticket = portal.submit(work)
                portal.enqcmd(batch)
            portal.wait(work_ticket)
            latencies.append(work_ticket.completion_time - work_ticket.enqueue_time)
            system.clock.advance(200_000)
            system.device.advance_to(system.clock.now)
        return float(sum(latencies) / len(latencies))

    batch_first = work_latency(batch_first=True)
    work_first = work_latency(batch_first=False)
    ratio = batch_first / work_first if work_first else float("inf")
    observed = 0.5 <= ratio <= 2.0  # "nearly identical across permutations"
    results.record(
        "listing5_arbiter",
        observed,
        f"work-descriptor latency with batch first {batch_first:.0f} vs "
        f"work first {work_first:.0f} cycles (ratio {ratio:.2f}) -> the "
        f"arbiter prioritizes work descriptors regardless of arrival order",
    )


def listing6_swq_arithmetic(results: ReverseEngineeringResults) -> None:
    """Listing 6 / Takeaway 3: wq_size-1 descriptors leave exactly one
    free slot; the victim's single submission makes the probe's ZF fire;
    submission latency stays flat either way."""
    from repro.core.swq_attack import DsaSwqAttack
    from repro.dsa.descriptor import Descriptor
    from repro.dsa.opcodes import DescriptorFlags, Opcode
    from repro.hw.units import us_to_cycles

    def run_round(victim_submits: bool) -> tuple[bool, float]:
        system = CloudSystem(seed=19)
        handles = system.setup_topology(AttackTopology.E0_SHARED_WQ_SHARED_ENGINE)
        attack = DsaSwqAttack(handles.attacker, wq_id=0, anchor_bytes=1 << 21)
        victim = handles.victim
        portal = victim.portal(0)
        noop = Descriptor(
            opcode=Opcode.NOOP, pasid=victim.pasid, flags=DescriptorFlags.NONE
        )
        submission_cycles = float("nan")
        if victim_submits:
            def submit():
                nonlocal submission_cycles
                before = system.clock.now
                portal.enqcmd(noop)
                submission_cycles = system.clock.now - before

            system.timeline.schedule_after_us(20, submit)
        result = attack.run_round(
            idle_cycles=us_to_cycles(40), timeline=system.timeline
        )
        return result.victim_detected, submission_cycles

    detected_active, latency_active = run_round(victim_submits=True)
    detected_quiet, _ = run_round(victim_submits=False)
    observed = detected_active and not detected_quiet and 500 < latency_active < 900
    results.record(
        "listing6_swq_arithmetic",
        observed,
        f"victim submission detected={detected_active}, quiet round "
        f"detected={detected_quiet}, victim submission latency "
        f"{latency_active:.0f} cycles (flat ~700 even into a congested "
        f"queue) -> ZF is the only observable",
    )


#: The Section IV microbenchmarks, in paper order.
MICROBENCHMARKS = (
    listing2_single_slot,
    listing3_independent_fields,
    listing4_src2_dst_no_interference,
    huge_page_conflict,
    cross_page_behavior,
    batch_fetcher_bypass,
    fig5_indexing,
    listing5_arbiter,
    listing6_swq_arithmetic,
)


def _run_microbenchmark(bench) -> ReverseEngineeringResults:
    results = ReverseEngineeringResults()
    bench(results)
    return results


def trial_plan() -> ExperimentPlan:
    """One checkpointable trial per microbenchmark (each builds its own
    fresh system); all are required — the suite is a regression test."""
    keys = [f"bench/{bench.__name__}" for bench in MICROBENCHMARKS]
    trials = tuple(
        TrialSpec(
            key=key,
            fn=lambda bench=bench: _run_microbenchmark(bench),
        )
        for key, bench in zip(keys, MICROBENCHMARKS)
    )

    def finalize(results: dict) -> ReverseEngineeringResults:
        merged = ReverseEngineeringResults()
        for partial in require_all(results, keys, "re"):
            merged.observations.update(partial.observations)
            merged.details.update(partial.details)
        return merged

    return ExperimentPlan(
        name="re",
        seed=11,
        config=dict(),
        trials=trials,
        finalize=finalize,
        min_successes=len(trials),
    )


def run() -> ReverseEngineeringResults:
    """Run the whole Section IV suite."""
    return execute_plan(trial_plan())


def report(results: ReverseEngineeringResults) -> str:
    """Text report of the suite."""
    lines = ["Section IV reverse-engineering observations:"]
    for name, observed in results.observations.items():
        status = "reproduced" if observed else "NOT REPRODUCED"
        lines.append(f"  [{status}] {name}: {results.details[name]}")
    return "\n".join(lines)
def plan_source(**overrides) -> "PlanHandle":
    """Picklable factory for sharded runs: workers rebuild this module's
    plan via ``trial_plan(**overrides)`` (see
    :mod:`repro.experiments.parallel`)."""
    from repro.experiments.parallel import PlanHandle

    return PlanHandle(__name__, overrides)
