"""Physical constants and unit conversions used throughout the model.

All latencies in the reproduction are expressed in *TSC cycles* of a
2.0 GHz reference clock (the paper measures everything with ``rdtsc`` on a
Xeon Platinum 8468V whose base clock is 2.1 GHz; 2.0 GHz keeps the
µs↔cycle conversions round without changing any qualitative behavior).
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT

HUGE_PAGE_SHIFT = 21
HUGE_PAGE_SIZE = 1 << HUGE_PAGE_SHIFT

#: Reference TSC frequency for cycle <-> wall-clock conversions.
DEFAULT_TSC_HZ = 2_000_000_000


def page_number(address: int) -> int:
    """Return the 4 KiB page number containing *address*."""
    return address >> PAGE_SHIFT


def page_offset(address: int) -> int:
    """Return the offset of *address* within its 4 KiB page."""
    return address & (PAGE_SIZE - 1)


def huge_page_number(address: int) -> int:
    """Return the 2 MiB huge-page number containing *address*."""
    return address >> HUGE_PAGE_SHIFT


def cycles_to_seconds(cycles: float, freq_hz: int = DEFAULT_TSC_HZ) -> float:
    """Convert TSC *cycles* to seconds at *freq_hz*."""
    return cycles / freq_hz


def seconds_to_cycles(seconds: float, freq_hz: int = DEFAULT_TSC_HZ) -> int:
    """Convert *seconds* to an integer number of TSC cycles at *freq_hz*."""
    return int(round(seconds * freq_hz))


def us_to_cycles(microseconds: float, freq_hz: int = DEFAULT_TSC_HZ) -> int:
    """Convert *microseconds* to TSC cycles at *freq_hz*."""
    return int(round(microseconds * freq_hz / 1_000_000))


def cycles_to_us(cycles: float, freq_hz: int = DEFAULT_TSC_HZ) -> float:
    """Convert TSC *cycles* to microseconds at *freq_hz*."""
    return cycles * 1_000_000 / freq_hz


def align_up(value: int, alignment: int) -> int:
    """Round *value* up to the next multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return (value + alignment - 1) // alignment * alignment


def align_down(value: int, alignment: int) -> int:
    """Round *value* down to the previous multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value // alignment * alignment


def is_aligned(value: int, alignment: int) -> bool:
    """Return ``True`` when *value* is a multiple of *alignment*."""
    if alignment <= 0:
        raise ValueError(f"alignment must be positive, got {alignment}")
    return value % alignment == 0
