"""Simulated hardware base layer.

This package models the pieces of a Sapphire-Rapids-class host that the
DSAssassin reproduction depends on:

* :mod:`repro.hw.units` — physical constants and unit conversions.
* :mod:`repro.hw.clock` — the time-stamp counter (``rdtsc``) model.
* :mod:`repro.hw.memory` — physical memory and the frame allocator.
* :mod:`repro.hw.pagetable` — per-process virtual address spaces.
* :mod:`repro.hw.noise` — environment noise models (Fig. 4 environments).
* :mod:`repro.hw.pcie` — the PCIe link with posted / non-posted / DMWr
  transactions.
"""

from repro.hw.clock import TscClock
from repro.hw.memory import PhysicalMemory
from repro.hw.noise import Environment, NoiseModel
from repro.hw.pagetable import AddressSpace
from repro.hw.pcie import PcieLink, TransactionKind
from repro.hw.units import (
    DEFAULT_TSC_HZ,
    GIB,
    HUGE_PAGE_SIZE,
    KIB,
    MIB,
    PAGE_SHIFT,
    PAGE_SIZE,
    cycles_to_seconds,
    cycles_to_us,
    page_number,
    page_offset,
    seconds_to_cycles,
    us_to_cycles,
)

__all__ = [
    "AddressSpace",
    "DEFAULT_TSC_HZ",
    "Environment",
    "GIB",
    "HUGE_PAGE_SIZE",
    "KIB",
    "MIB",
    "NoiseModel",
    "PAGE_SHIFT",
    "PAGE_SIZE",
    "PcieLink",
    "PhysicalMemory",
    "TransactionKind",
    "TscClock",
    "cycles_to_seconds",
    "cycles_to_us",
    "page_number",
    "page_offset",
    "seconds_to_cycles",
    "us_to_cycles",
]
