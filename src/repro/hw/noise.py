"""Environment noise models.

Figure 4 of the paper characterizes DevTLB hit/miss latency in four
environments: a quiet local server (**Local**), the same server with 2 GB/s
NVMe PCIe traffic plus 10 GB/s memory-bandwidth pressure (**Local+Noise**),
an Alibaba-cloud instance (**Cloud**), and the cloud instance under the same
pressure (**Cloud+Noise**).  The paper reports that noise *shifts* the
latency distribution (an average of 89 cycles in the cloud case) and widens
it, but never closes the hit/miss gap: a fixed threshold between 600 and
900 cycles separates the classes in every environment.

Each :class:`NoiseModel` adds an environment-dependent offset to every
PCIe round trip: a Gaussian baseline shift plus occasional heavy-tailed
spikes from competing bus traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np


class Environment(enum.Enum):
    """The four measurement environments of Fig. 4."""

    LOCAL = "local"
    LOCAL_NOISE = "local+noise"
    CLOUD = "cloud"
    CLOUD_NOISE = "cloud+noise"

    @property
    def noisy(self) -> bool:
        """Whether deliberate PCIe/memory pressure is applied."""
        return self in (Environment.LOCAL_NOISE, Environment.CLOUD_NOISE)


@dataclass(frozen=True)
class NoiseModel:
    """Stochastic latency offset added to device round trips.

    Attributes
    ----------
    mean_shift:
        Average additional cycles relative to the quiet local baseline.
    jitter_std:
        Standard deviation of the Gaussian component.
    spike_probability:
        Per-sample probability of a contention spike.
    spike_scale:
        Mean of the exponential spike magnitude, in cycles.
    """

    environment: Environment
    mean_shift: float
    jitter_std: float
    spike_probability: float
    spike_scale: float

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one noise offset in cycles (may be slightly negative)."""
        offset = rng.normal(self.mean_shift, self.jitter_std)
        if self.spike_probability > 0 and rng.random() < self.spike_probability:
            offset += rng.exponential(self.spike_scale)
        return int(round(offset))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Vectorized :meth:`sample` returning *count* offsets."""
        offsets = rng.normal(self.mean_shift, self.jitter_std, size=count)
        if self.spike_probability > 0:
            spikes = rng.random(count) < self.spike_probability
            offsets[spikes] += rng.exponential(self.spike_scale, size=int(spikes.sum()))
        return np.rint(offsets).astype(np.int64)


#: Calibrated per-environment models.  The quiet local server is the zero
#: reference; the cloud's virtualization stack adds ~40 cycles; deliberate
#: pressure adds the rest (the paper reports an 89-cycle average shift for
#: Cloud+Noise relative to Local).
_NOISE_TABLE: dict[Environment, NoiseModel] = {
    Environment.LOCAL: NoiseModel(
        environment=Environment.LOCAL,
        mean_shift=0.0,
        jitter_std=18.0,
        spike_probability=0.002,
        spike_scale=120.0,
    ),
    Environment.LOCAL_NOISE: NoiseModel(
        environment=Environment.LOCAL_NOISE,
        mean_shift=55.0,
        jitter_std=34.0,
        spike_probability=0.02,
        spike_scale=180.0,
    ),
    Environment.CLOUD: NoiseModel(
        environment=Environment.CLOUD,
        mean_shift=38.0,
        jitter_std=26.0,
        spike_probability=0.008,
        spike_scale=150.0,
    ),
    Environment.CLOUD_NOISE: NoiseModel(
        environment=Environment.CLOUD_NOISE,
        mean_shift=89.0,
        jitter_std=42.0,
        spike_probability=0.025,
        spike_scale=200.0,
    ),
}


def noise_model_for(environment: Environment) -> NoiseModel:
    """Return the calibrated :class:`NoiseModel` for *environment*."""
    return _NOISE_TABLE[environment]
