"""The PCIe link between the CPU cores and the DSA.

The DSA is an on-die device but still communicates over the processor's
internal PCIe fabric (Fig. 1 of the paper).  Three transaction kinds matter
to the reproduction:

* **posted writes** — fire-and-forget MMIO writes (``movdir64b`` to a
  dedicated-queue portal);
* **non-posted reads** — MMIO reads and device DMA reads, which wait for a
  completion;
* **Deferrable Memory Writes (DMWr)** — the non-posted write used by
  ``enqcmd``; the device's accept/retry answer travels back in the
  completion and lands in ``EFLAGS.ZF``.

The link charges a per-transaction round-trip latency drawn from the
environment noise model, and counts transactions per kind so tests and
benchmarks can assert on traffic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.hw.noise import Environment, NoiseModel, noise_model_for

#: Quiet-environment base round-trip cost of one PCIe transaction between a
#: core and the on-die DSA, in cycles.  Calibrated so that a DevTLB *hit*
#: probe lands near the paper's ~500-cycle figure once descriptor decode and
#: completion-record write are added.
BASE_ROUND_TRIP_CYCLES = 130

#: Extra cycles for a non-posted transaction (waiting on the completion).
NON_POSTED_EXTRA_CYCLES = 60


class TransactionKind(enum.Enum):
    """PCIe transaction kinds the model distinguishes."""

    POSTED_WRITE = "posted-write"
    NON_POSTED_READ = "non-posted-read"
    DMWR = "dmwr"


@dataclass
class PcieStats:
    """Counters of link traffic, by transaction kind."""

    posted_writes: int = 0
    non_posted_reads: int = 0
    dmwr: int = 0
    total_cycles: int = 0

    def count(self, kind: TransactionKind) -> int:
        """Return the number of transactions of *kind* seen so far."""
        if kind is TransactionKind.POSTED_WRITE:
            return self.posted_writes
        if kind is TransactionKind.NON_POSTED_READ:
            return self.non_posted_reads
        return self.dmwr


@dataclass
class PcieLink:
    """A point-to-point PCIe link with environment-dependent latency.

    Parameters
    ----------
    rng:
        Generator used for latency noise.
    environment:
        Which of the paper's four environments the host is in.
    base_cycles:
        Quiet-environment round-trip base cost.
    """

    rng: np.random.Generator
    environment: Environment = Environment.LOCAL
    base_cycles: int = BASE_ROUND_TRIP_CYCLES
    stats: PcieStats = field(default_factory=PcieStats)

    def __post_init__(self) -> None:
        self._noise: NoiseModel = noise_model_for(self.environment)

    @property
    def noise(self) -> NoiseModel:
        """The active noise model."""
        return self._noise

    def set_environment(self, environment: Environment) -> None:
        """Switch the link's environment (used by noise-sweep experiments)."""
        self.environment = environment
        self._noise = noise_model_for(environment)

    def transaction_cycles(self, kind: TransactionKind) -> int:
        """Charge one transaction of *kind* and return its latency."""
        cycles = self.base_cycles + self._noise.sample(self.rng)
        if kind is not TransactionKind.POSTED_WRITE:
            cycles += NON_POSTED_EXTRA_CYCLES
        cycles = max(cycles, self.base_cycles // 2)
        if kind is TransactionKind.POSTED_WRITE:
            self.stats.posted_writes += 1
        elif kind is TransactionKind.NON_POSTED_READ:
            self.stats.non_posted_reads += 1
        else:
            self.stats.dmwr += 1
        self.stats.total_cycles += cycles
        return cycles
