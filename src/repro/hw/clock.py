"""Time-stamp counter model.

The attacks only ever *read* the TSC (``rdtsc``) and compare two readings,
so the model is a monotonic integer cycle counter that software advances
explicitly.  All actors in one simulation share a single :class:`TscClock`,
which is what makes the attacker's latency measurements observe the
victim's activity: both sides' device operations are stamped on the same
timeline.
"""

from __future__ import annotations

from repro.hw.units import DEFAULT_TSC_HZ, cycles_to_us, us_to_cycles

#: Cost of executing ``rdtsc`` itself, charged on every read so that
#: back-to-back reads never report a zero interval (matching real hardware,
#: where a serialized rdtsc pair costs a few tens of cycles).
RDTSC_OVERHEAD_CYCLES = 24


class TscClock:
    """A shared, monotonic cycle counter.

    Parameters
    ----------
    freq_hz:
        Nominal frequency used for cycle <-> wall-clock conversions.
    rdtsc_overhead:
        Cycles charged each time :meth:`rdtsc` is executed.
    """

    def __init__(
        self,
        freq_hz: int = DEFAULT_TSC_HZ,
        rdtsc_overhead: int = RDTSC_OVERHEAD_CYCLES,
    ) -> None:
        if freq_hz <= 0:
            raise ValueError(f"freq_hz must be positive, got {freq_hz}")
        if rdtsc_overhead < 0:
            raise ValueError("rdtsc_overhead must be non-negative")
        self.freq_hz = freq_hz
        self.rdtsc_overhead = rdtsc_overhead
        self._now = 0
        self.invariant_monitor = None

    @property
    def now(self) -> int:
        """Current simulated time in cycles (free to read; no overhead)."""
        return self._now

    @property
    def now_us(self) -> float:
        """Current simulated time in microseconds."""
        return cycles_to_us(self._now, self.freq_hz)

    def rdtsc(self) -> int:
        """Execute ``rdtsc``: charge its overhead and return the counter."""
        self._now += self.rdtsc_overhead
        return self._now

    def advance(self, cycles: int) -> int:
        """Advance time by *cycles* and return the new time.

        Negative advances are rejected: the TSC is monotonic by
        construction and a negative step always indicates a bug in the
        calling simulation code.
        """
        if cycles < 0:
            raise ValueError(f"cannot advance the TSC by {cycles} cycles")
        self._now += int(cycles)
        if self.invariant_monitor is not None:
            self.invariant_monitor.observe_clock(self._now)
        return self._now

    def advance_us(self, microseconds: float) -> int:
        """Advance time by *microseconds* and return the new time."""
        return self.advance(us_to_cycles(microseconds, self.freq_hz))

    def advance_to(self, timestamp: int) -> int:
        """Advance time to *timestamp* if it lies in the future.

        Advancing to a past timestamp is a no-op rather than an error:
        actors frequently wait on completions that already happened.
        """
        if timestamp > self._now:
            self._now = int(timestamp)
            if self.invariant_monitor is not None:
                self.invariant_monitor.observe_clock(self._now)
        return self._now

    def __repr__(self) -> str:
        return f"TscClock(now={self._now}, freq_hz={self.freq_hz})"
