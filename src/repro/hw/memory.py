"""Physical memory and the frame allocator.

The model stores real bytes (sparsely, one ``bytearray`` per touched 4 KiB
frame) so that DSA operations — memcpy, memcmp, dualcast, CRC, delta — have
genuine data semantics and can be checked for correctness, not just timing.

Frames are handed out by a bump allocator with an explicit free list.
Huge (2 MiB) allocations are satisfied from 2 MiB-aligned runs of the same
physical space, mirroring how a host would back transparent huge pages.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import OutOfMemoryError
from repro.hw.units import HUGE_PAGE_SIZE, PAGE_SIZE, align_up


@dataclass(frozen=True)
class FrameRange:
    """A contiguous physical allocation.

    Attributes
    ----------
    base:
        Physical address of the first byte.
    size:
        Length in bytes (always a multiple of the backing page size).
    huge:
        Whether the range is backed by 2 MiB pages.
    """

    base: int
    size: int
    huge: bool = False

    @property
    def end(self) -> int:
        """One past the last physical address of the range."""
        return self.base + self.size

    def __contains__(self, pa: int) -> bool:
        return self.base <= pa < self.end


class PhysicalMemory:
    """Byte-addressable physical memory with a frame allocator.

    Parameters
    ----------
    total_bytes:
        Size of the physical address space.  Allocations beyond this raise
        :class:`~repro.errors.OutOfMemoryError`.
    """

    def __init__(self, total_bytes: int = 4 * 1024 * 1024 * 1024) -> None:
        if total_bytes < PAGE_SIZE:
            raise ValueError("physical memory must hold at least one page")
        self.total_bytes = total_bytes
        self._frames: dict[int, bytearray] = {}
        self._next_free = 0
        self._free_small: list[int] = []
        self._allocated: dict[int, FrameRange] = {}

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------
    def allocate(self, size: int, huge: bool = False) -> FrameRange:
        """Allocate a physically contiguous range of at least *size* bytes.

        The returned range is page-aligned (2 MiB-aligned when *huge*).
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        granule = HUGE_PAGE_SIZE if huge else PAGE_SIZE
        size = align_up(size, granule)
        if not huge and size == PAGE_SIZE and self._free_small:
            base = self._free_small.pop()
        else:
            base = align_up(self._next_free, granule)
            if base + size > self.total_bytes:
                raise OutOfMemoryError(
                    f"cannot allocate {size} bytes: "
                    f"{self.total_bytes - self._next_free} bytes remain"
                )
            self._next_free = base + size
        rng = FrameRange(base=base, size=size, huge=huge)
        self._allocated[base] = rng
        return rng

    def free(self, rng: FrameRange) -> None:
        """Return *rng* to the allocator and drop its backing bytes."""
        if self._allocated.pop(rng.base, None) is None:
            raise ValueError(f"range at {rng.base:#x} was not allocated")
        for frame in range(rng.base >> 12, rng.end >> 12):
            self._frames.pop(frame, None)
        if not rng.huge and rng.size == PAGE_SIZE:
            self._free_small.append(rng.base)

    @property
    def allocated_bytes(self) -> int:
        """Total bytes currently allocated."""
        return sum(r.size for r in self._allocated.values())

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    def _frame(self, frame_number: int) -> bytearray:
        frame = self._frames.get(frame_number)
        if frame is None:
            frame = bytearray(PAGE_SIZE)
            self._frames[frame_number] = frame
        return frame

    def write(self, pa: int, data: bytes) -> None:
        """Write *data* starting at physical address *pa*."""
        self._check_bounds(pa, len(data))
        offset = 0
        while offset < len(data):
            frame_number, in_frame = divmod(pa + offset, PAGE_SIZE)
            chunk = min(PAGE_SIZE - in_frame, len(data) - offset)
            frame = self._frame(frame_number)
            frame[in_frame : in_frame + chunk] = data[offset : offset + chunk]
            offset += chunk

    def read(self, pa: int, size: int) -> bytes:
        """Read *size* bytes starting at physical address *pa*."""
        self._check_bounds(pa, size)
        parts: list[bytes] = []
        offset = 0
        while offset < size:
            frame_number, in_frame = divmod(pa + offset, PAGE_SIZE)
            chunk = min(PAGE_SIZE - in_frame, size - offset)
            frame = self._frames.get(frame_number)
            if frame is None:
                parts.append(bytes(chunk))
            else:
                parts.append(bytes(frame[in_frame : in_frame + chunk]))
            offset += chunk
        return b"".join(parts)

    def fill(self, pa: int, size: int, value: int) -> None:
        """Set *size* bytes at *pa* to *value* (memset semantics)."""
        if not 0 <= value <= 0xFF:
            raise ValueError(f"fill value must be a byte, got {value}")
        self.write(pa, bytes([value]) * size)

    def _check_bounds(self, pa: int, size: int) -> None:
        if pa < 0 or size < 0 or pa + size > self.total_bytes:
            raise ValueError(
                f"physical access [{pa:#x}, {pa + size:#x}) is out of bounds "
                f"for {self.total_bytes:#x}-byte memory"
            )
