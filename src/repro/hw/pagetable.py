"""Per-process virtual address spaces.

Each guest process owns an :class:`AddressSpace` that maps 4 KiB (or 2 MiB)
virtual pages to physical frames.  The IOMMU's translation agent walks
these same tables when the DSA requests a translation (Section II-B of the
paper: with Shared Virtual Memory the device uses the *process's* page
table, selected by PASID).

The model is a flat page-number map rather than a literal 4-level radix
tree; the radix depth only matters for the *cost* of a walk, which is
captured by :attr:`AddressSpace.walk_cycles`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import TranslationFault
from repro.hw.memory import FrameRange, PhysicalMemory
from repro.hw.units import (
    HUGE_PAGE_SIZE,
    PAGE_SHIFT,
    PAGE_SIZE,
    align_up,
    is_aligned,
)

#: Cycles for a full 4-level page walk by the translation agent.  The paper
#: observes DevTLB misses costing ~500+ extra cycles end-to-end; the walk is
#: the dominant part of that.
DEFAULT_WALK_CYCLES = 420


@dataclass(frozen=True)
class Mapping:
    """One virtual-to-physical mapping at page granularity."""

    virtual_page: int
    physical_frame: int
    huge: bool
    writable: bool = True


class AddressSpace:
    """A process's virtual address space.

    Parameters
    ----------
    memory:
        Backing physical memory; mapped ranges are allocated from it.
    base_va:
        Start of the bump region used by :meth:`mmap`.  Distinct processes
        should use distinct bases only for readability — address spaces are
        fully independent.
    walk_cycles:
        Cost in cycles of one page-table walk (used by the IOMMU model).
    """

    def __init__(
        self,
        memory: PhysicalMemory,
        base_va: int = 0x10_0000_0000,
        walk_cycles: int = DEFAULT_WALK_CYCLES,
    ) -> None:
        self.memory = memory
        self.walk_cycles = walk_cycles
        self._next_va = base_va
        self._pages: dict[int, Mapping] = {}
        self._ranges: list[tuple[int, FrameRange]] = []

    # ------------------------------------------------------------------
    # Mapping
    # ------------------------------------------------------------------
    def map_range(self, va: int, size: int, huge: bool = False, writable: bool = True) -> None:
        """Map ``[va, va+size)`` to freshly allocated physical frames.

        *va* must be aligned to the backing page size and not collide with
        an existing mapping.
        """
        granule = HUGE_PAGE_SIZE if huge else PAGE_SIZE
        if not is_aligned(va, granule):
            raise ValueError(f"va {va:#x} is not aligned to {granule:#x}")
        size = align_up(size, granule)
        frames = self.memory.allocate(size, huge=huge)
        self._ranges.append((va, frames))
        for offset in range(0, size, PAGE_SIZE):
            vpn = (va + offset) >> PAGE_SHIFT
            if vpn in self._pages:
                raise ValueError(f"virtual page {vpn:#x} is already mapped")
            self._pages[vpn] = Mapping(
                virtual_page=vpn,
                physical_frame=(frames.base + offset) >> PAGE_SHIFT,
                huge=huge,
                writable=writable,
            )

    def mmap(self, size: int, huge: bool = False, writable: bool = True) -> int:
        """Allocate and map *size* bytes at a fresh virtual address."""
        granule = HUGE_PAGE_SIZE if huge else PAGE_SIZE
        va = align_up(self._next_va, granule)
        self.map_range(va, size, huge=huge, writable=writable)
        self._next_va = va + align_up(size, granule)
        return va

    def unmap(self, va: int) -> None:
        """Unmap the range previously mapped at *va* and free its frames."""
        for index, (range_va, frames) in enumerate(self._ranges):
            if range_va == va:
                for offset in range(0, frames.size, PAGE_SIZE):
                    self._pages.pop((va + offset) >> PAGE_SHIFT, None)
                self.memory.free(frames)
                del self._ranges[index]
                return
        raise ValueError(f"no mapping starts at {va:#x}")

    # ------------------------------------------------------------------
    # Translation
    # ------------------------------------------------------------------
    def translate(self, va: int, write: bool = False) -> int:
        """Translate virtual address *va* to a physical address.

        Raises :class:`~repro.errors.TranslationFault` for unmapped pages
        and for write access to read-only pages.
        """
        mapping = self._pages.get(va >> PAGE_SHIFT)
        if mapping is None:
            raise TranslationFault(va)
        if write and not mapping.writable:
            raise TranslationFault(va, f"write to read-only page at {va:#x}")
        return (mapping.physical_frame << PAGE_SHIFT) | (va & (PAGE_SIZE - 1))

    def is_mapped(self, va: int) -> bool:
        """Return ``True`` when the page containing *va* is mapped."""
        return (va >> PAGE_SHIFT) in self._pages

    def page_is_huge(self, va: int) -> bool:
        """Return ``True`` when *va* lies in a 2 MiB mapping."""
        mapping = self._pages.get(va >> PAGE_SHIFT)
        if mapping is None:
            raise TranslationFault(va)
        return mapping.huge

    # ------------------------------------------------------------------
    # Data access through the mapping
    # ------------------------------------------------------------------
    def write(self, va: int, data: bytes) -> None:
        """Write *data* at virtual address *va* (may span pages)."""
        offset = 0
        while offset < len(data):
            in_page = (va + offset) & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - in_page, len(data) - offset)
            pa = self.translate(va + offset, write=True)
            self.memory.write(pa, data[offset : offset + chunk])
            offset += chunk

    def read(self, va: int, size: int) -> bytes:
        """Read *size* bytes from virtual address *va* (may span pages)."""
        parts: list[bytes] = []
        offset = 0
        while offset < size:
            in_page = (va + offset) & (PAGE_SIZE - 1)
            chunk = min(PAGE_SIZE - in_page, size - offset)
            pa = self.translate(va + offset)
            parts.append(self.memory.read(pa, chunk))
            offset += chunk
        return b"".join(parts)

    @property
    def mapped_pages(self) -> int:
        """Number of mapped 4 KiB virtual pages."""
        return len(self._pages)
