"""A ``dsa-perf-micros`` equivalent for the device model.

Intel ships `dsa-perf-micros` to characterize DSA throughput/latency per
opcode, transfer size, batch size, and queue depth; the paper uses it as
the baseline harness of its mitigation study.  This module provides the
same sweeps against the model, returning structured results that the
mitigation and ablation benchmarks can consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.reporting import format_table
from repro.dsa.batch import write_batch_list
from repro.dsa.descriptor import BatchDescriptor, Descriptor, make_memcpy
from repro.dsa.opcodes import Opcode
from repro.virt.process import GuestProcess


@dataclass(frozen=True)
class MicroResult:
    """One sweep cell."""

    opcode: Opcode
    size_bytes: int
    batch_size: int
    queue_depth: int
    mean_latency_cycles: float
    throughput_gbps: float
    ops_per_second: float


class PerfMicros:
    """Microbenchmark driver bound to one process/queue."""

    def __init__(self, process: GuestProcess, wq_id: int = 0) -> None:
        self.process = process
        self.portal = process.portal(wq_id)
        self.wq_id = wq_id
        self._comp = process.comp_record()

    # ------------------------------------------------------------------
    # Descriptor factories
    # ------------------------------------------------------------------
    def _descriptor(self, opcode: Opcode, src: int, dst: int, size: int) -> Descriptor:
        if opcode is Opcode.MEMMOVE:
            return make_memcpy(self.process.pasid, src, dst, size, self._comp)
        if opcode is Opcode.FILL:
            return Descriptor(
                opcode=Opcode.FILL, pasid=self.process.pasid, src=0xA5, dst=dst,
                size=size, completion_addr=self._comp,
            )
        if opcode in (Opcode.COMPARE, Opcode.COMPVAL):
            return Descriptor(
                opcode=opcode, pasid=self.process.pasid, src=src, dst=dst,
                size=size, completion_addr=self._comp,
            )
        if opcode is Opcode.CRCGEN:
            return Descriptor(
                opcode=Opcode.CRCGEN, pasid=self.process.pasid, src=src,
                size=size, completion_addr=self._comp,
            )
        if opcode is Opcode.DUALCAST:
            return Descriptor(
                opcode=Opcode.DUALCAST, pasid=self.process.pasid, src=src, dst=dst,
                dst2=dst + size, size=size, completion_addr=self._comp,
            )
        raise ValueError(f"unsupported microbenchmark opcode {opcode}")

    # ------------------------------------------------------------------
    # Sweeps
    # ------------------------------------------------------------------
    def latency(
        self, opcode: Opcode, size: int, iterations: int = 50
    ) -> MicroResult:
        """Synchronous submit/poll latency for one (opcode, size)."""
        src = self.process.buffer(max(2 * size, 4096))
        dst = self.process.buffer(max(2 * size, 4096))
        descriptor = self._descriptor(opcode, src, dst, size)
        clock = self.portal.clock
        self.portal.submit_wait(descriptor)  # warm-up
        latencies = np.empty(iterations)
        started = clock.now
        for i in range(iterations):
            latencies[i] = self.portal.submit_wait(descriptor).latency_cycles
        elapsed = clock.now - started
        seconds = elapsed / clock.freq_hz
        return MicroResult(
            opcode=opcode,
            size_bytes=size,
            batch_size=1,
            queue_depth=1,
            mean_latency_cycles=float(latencies.mean()),
            throughput_gbps=size * iterations / seconds / 1e9,
            ops_per_second=iterations / seconds,
        )

    def queue_depth_throughput(
        self, size: int, depth: int, iterations: int = 50
    ) -> MicroResult:
        """Async memcpy throughput with *depth* outstanding submissions."""
        if depth < 1:
            raise ValueError("queue depth must be at least 1")
        src = self.process.buffer(max(2 * size, 4096))
        dst = self.process.buffer(max(2 * size, 4096))
        descriptor = make_memcpy(self.process.pasid, src, dst, size, self._comp)
        clock = self.portal.clock
        started = clock.now
        inflight: list = []
        completed = 0
        for _ in range(iterations):
            while len(inflight) >= depth:
                self.portal.wait(inflight.pop(0))
                completed += 1
            if self.portal.enqcmd(descriptor):
                # Full queue: drain one and retry once.
                if inflight:
                    self.portal.wait(inflight.pop(0))
                    completed += 1
                if self.portal.enqcmd(descriptor):
                    continue
            inflight.append(self.portal.last_ticket)
        while inflight:
            self.portal.wait(inflight.pop(0))
            completed += 1
        seconds = (clock.now - started) / clock.freq_hz
        return MicroResult(
            opcode=Opcode.MEMMOVE,
            size_bytes=size,
            batch_size=1,
            queue_depth=depth,
            mean_latency_cycles=float("nan"),
            throughput_gbps=size * completed / seconds / 1e9,
            ops_per_second=completed / seconds,
        )

    def batch_throughput(
        self, size: int, batch_size: int, batches: int = 10
    ) -> MicroResult:
        """Batched memcpy throughput (one BATCH per *batch_size* copies)."""
        if batch_size < 1:
            raise ValueError("batch size must be at least 1")
        src = self.process.buffer(max(2 * size, 4096))
        dst = self.process.buffer(max(2 * size, 4096))
        list_addr = self.process.buffer(max(64 * batch_size, 4096))
        children = [
            make_memcpy(self.process.pasid, src, dst, size, self.process.comp_record())
            for _ in range(batch_size)
        ]
        write_batch_list(self.process.space, list_addr, children)
        batch = BatchDescriptor(
            pasid=self.process.pasid, desc_list_addr=list_addr, count=batch_size,
            completion_addr=self._comp,
        )
        clock = self.portal.clock
        started = clock.now
        for _ in range(batches):
            ticket = self.portal.submit(batch)
            self.portal.wait(ticket)
        seconds = (clock.now - started) / clock.freq_hz
        total_ops = batches * batch_size
        return MicroResult(
            opcode=Opcode.BATCH,
            size_bytes=size,
            batch_size=batch_size,
            queue_depth=1,
            mean_latency_cycles=float("nan"),
            throughput_gbps=size * total_ops / seconds / 1e9,
            ops_per_second=total_ops / seconds,
        )

    def sweep(
        self,
        opcodes: tuple[Opcode, ...] = (Opcode.MEMMOVE, Opcode.FILL, Opcode.COMPARE, Opcode.CRCGEN),
        sizes: tuple[int, ...] = (256, 4096, 65536),
        iterations: int = 30,
    ) -> list[MicroResult]:
        """The default characterization sweep."""
        return [
            self.latency(opcode, size, iterations=iterations)
            for opcode in opcodes
            for size in sizes
        ]


def format_results(results: list[MicroResult]) -> str:
    """Text table of sweep results."""
    rows = [
        [
            r.opcode.name,
            r.size_bytes,
            r.batch_size,
            r.queue_depth,
            "-" if np.isnan(r.mean_latency_cycles) else f"{r.mean_latency_cycles:.0f}",
            f"{r.throughput_gbps:.3f}",
            f"{r.ops_per_second:,.0f}",
        ]
        for r in results
    ]
    return format_table(
        ["opcode", "size (B)", "batch", "depth", "latency (cyc)", "GB/s", "ops/s"],
        rows,
    )
