"""Operator tooling: performance microbenchmarks and configuration.

* :mod:`repro.tools.perf_micros` — the ``dsa-perf-micros``-style
  throughput/latency microbenchmark suite the paper uses for the Fig. 14
  methodology.
* :mod:`repro.tools.config_loader` — accel-config-style JSON topology
  loading for :class:`~repro.dsa.device.DsaDevice`.
"""

from repro.tools.config_loader import apply_topology, load_topology
from repro.tools.perf_micros import (
    MicroResult,
    PerfMicros,
    format_results,
)

__all__ = [
    "MicroResult",
    "PerfMicros",
    "apply_topology",
    "format_results",
    "load_topology",
]
