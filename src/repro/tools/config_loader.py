"""accel-config-style topology files.

``accel-config save-config`` dumps a device's group/engine/queue topology
as JSON; operators apply such files at boot.  This module implements the
same workflow for the model: a JSON document describes groups, engines,
and work queues, and :func:`apply_topology` configures a
:class:`~repro.dsa.device.DsaDevice` accordingly (validating against the
hardware limits the model enforces).

Schema::

    {
      "groups": [
        {"id": 0, "engines": [0, 1]},
        {"id": 1, "engines": [2]}
      ],
      "work_queues": [
        {"id": 0, "size": 64, "mode": "shared", "priority": 4, "group": 0},
        {"id": 1, "size": 32, "mode": "dedicated", "group": 1}
      ]
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from repro.dsa.device import DsaDevice
from repro.dsa.wq import WorkQueueConfig, WqMode
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Topology:
    """A validated topology document."""

    groups: tuple[tuple[int, tuple[int, ...]], ...]
    work_queues: tuple[WorkQueueConfig, ...]


def _parse_mode(value: str) -> WqMode:
    try:
        return WqMode(value)
    except ValueError as exc:
        raise ConfigurationError(
            f"unknown work-queue mode {value!r}; expected "
            f"{[m.value for m in WqMode]}"
        ) from exc


def load_topology(source: str | Path | dict) -> Topology:
    """Parse a topology from a JSON file path, JSON string, or dict."""
    if isinstance(source, dict):
        document = source
    else:
        path = Path(source)
        if path.exists():
            document = json.loads(path.read_text())
        else:
            try:
                document = json.loads(str(source))
            except json.JSONDecodeError as exc:
                raise ConfigurationError(
                    f"topology source is neither a file nor JSON: {source!r}"
                ) from exc
    if not isinstance(document, dict):
        raise ConfigurationError("topology document must be a JSON object")

    groups = []
    for entry in document.get("groups", []):
        if "id" not in entry or "engines" not in entry:
            raise ConfigurationError(f"group entry missing id/engines: {entry}")
        engines = tuple(int(e) for e in entry["engines"])
        groups.append((int(entry["id"]), engines))
    if not groups:
        raise ConfigurationError("topology declares no groups")

    group_ids = {group_id for group_id, _ in groups}
    queues = []
    for entry in document.get("work_queues", []):
        for key in ("id", "size", "group"):
            if key not in entry:
                raise ConfigurationError(f"work-queue entry missing {key!r}: {entry}")
        if int(entry["group"]) not in group_ids:
            raise ConfigurationError(
                f"work queue {entry['id']} references undeclared group "
                f"{entry['group']}"
            )
        queues.append(
            WorkQueueConfig(
                wq_id=int(entry["id"]),
                size=int(entry["size"]),
                mode=_parse_mode(entry.get("mode", "shared")),
                priority=int(entry.get("priority", 0)),
                group_id=int(entry["group"]),
            )
        )
    if not queues:
        raise ConfigurationError("topology declares no work queues")
    return Topology(groups=tuple(groups), work_queues=tuple(queues))


def apply_topology(device: DsaDevice, source: str | Path | dict) -> Topology:
    """Load and apply a topology to *device*; returns the parsed form.

    Application is transactional in spirit: the topology is fully parsed
    and validated before the first device mutation, so a malformed
    document never half-configures the device.  (Hardware-limit
    violations — engine double-binding, queue storage exhaustion — still
    surface from the device itself.)
    """
    topology = load_topology(source)
    for group_id, engines in topology.groups:
        device.configure_group(group_id, engines)
    for config in topology.work_queues:
        device.configure_wq(config)
    return topology


def dump_topology(device: DsaDevice) -> dict:
    """The inverse: serialize a device's live topology to the schema."""
    groups = [
        {"id": group.group_id, "engines": list(group.engine_ids)}
        for group in device.groups()
    ]
    queues = [
        {
            "id": queue.wq_id,
            "size": queue.config.size,
            "mode": queue.config.mode.value,
            "priority": queue.config.priority,
            "group": queue.config.group_id,
        }
        for queue in device.queue_space.queues()
    ]
    return {"groups": groups, "work_queues": queues}
