"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed editable (``pip install -e . --no-use-pep517``) on
hosts that lack the ``wheel`` package and network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "DSAssassin reproduction: cross-VM side-channel attacks on a "
        "behavioral model of the Intel Data Streaming Accelerator"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24", "scipy>=1.10"],
)
